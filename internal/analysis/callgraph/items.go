package callgraph

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"

	"tempest/internal/analysis"
)

// ItemKind discriminates Item.
type ItemKind uint8

const (
	// ItemGroup is a plain container (every body's root).
	ItemGroup ItemKind = iota
	// ItemWork is straight-line computation: Cost units at Depth.
	ItemWork
	// ItemCall is one call site.
	ItemCall
	// ItemRegion is an instrumentation span opened by a sink Enter call:
	// Children run under the region named by Name.
	ItemRegion
)

// ArgKind discriminates StrArg resolution.
type ArgKind uint8

const (
	// ArgUnknown is an argument the builder could not resolve.
	ArgUnknown ArgKind = iota
	// ArgConst is a compile-time string constant.
	ArgConst
	// ArgParam refers to the enclosing function's Param-th parameter;
	// resolved per call site by the cost model.
	ArgParam
	// ArgList is a range variable over a constant string list: the site
	// stands for one occurrence of each element.
	ArgList
)

// StrArg is a resolved string-typed argument (region names).
type StrArg struct {
	Kind  ArgKind
	Value string
	Param int
	List  []string
}

// FuncArg is a function-typed argument at a call site: either a known
// node (literal, declared function, bound method) or a forwarding of the
// enclosing function's own parameter.
type FuncArg struct {
	Node  *Node
	Param int // -1 unless forwarding an own parameter
}

// Item is one element of a function body's cost tree.
type Item struct {
	Kind  ItemKind
	Depth int
	Pos   token.Pos
	// Cost is the work unit count (ItemWork): 1 per statement plus 1 per
	// arithmetic/comparison operator, so dense numeric kernels weigh more
	// than bookkeeping of the same line count.
	Cost float64
	// Call fields.
	Callee      *Node
	ParamCallee int // index of the caller's own invoked parameter, -1 otherwise
	// Captured marks a ParamCallee that refers to a parameter of the
	// enclosing *declared* function, invoked from inside a literal that
	// captured it (the index is in the encloser's parameter space).
	Captured bool
	Targets  []*Node
	StrArgs  map[int]StrArg
	FuncArgs map[int]FuncArg
	// Bound marks call items synthesized from func-typed arguments
	// (EdgeBound). Context-free cost/frequency propagation uses them;
	// the context-sensitive region walk resolves bindings itself and
	// skips them to avoid double counting.
	Bound bool
	// Region fields.
	Name     StrArg
	Children []*Item
}

// visit applies fn to the item and every descendant.
func (it *Item) visit(fn func(*Item)) {
	if it == nil {
		return
	}
	fn(it)
	for _, c := range it.Children {
		c.visit(fn)
	}
}

// bodyBuilder compiles one function body into an item tree, creating
// closure nodes on the way.
type bodyBuilder struct {
	g    *Graph
	pkg  *analysis.Package
	node *Node
	// locals maps single-assignment local variables to their closure
	// node; killed records reassigned variables that can no longer be
	// tracked.
	locals map[types.Object]*Node
	killed map[types.Object]bool
	// funcParamIdx / strParamIdx map parameters to their indices, by
	// object. Literal builders inherit the enclosing function's entries
	// (captures) and add their own; ownParams tells them apart.
	funcParamIdx map[types.Object]int
	strParamIdx  map[types.Object]int
	ownParams    map[types.Object]bool
	// rangeLists maps range variables iterating constant string lists to
	// the element values.
	rangeLists map[types.Object][]string
	litCount   int
}

// bindParams indexes the function's own parameters, layered over any
// inherited (captured) entries.
func (b *bodyBuilder) bindParams(ft *ast.FuncType) {
	if b.funcParamIdx == nil {
		b.funcParamIdx = map[types.Object]int{}
	}
	if b.strParamIdx == nil {
		b.strParamIdx = map[types.Object]int{}
	}
	b.ownParams = map[types.Object]bool{}
	if b.rangeLists == nil {
		b.rangeLists = map[types.Object][]string{}
	}
	if ft.Params == nil {
		return
	}
	idx := 0
	for _, field := range ft.Params.List {
		names := field.Names
		if len(names) == 0 {
			idx++ // unnamed parameter still occupies an index
			continue
		}
		for _, name := range names {
			obj := b.pkg.TypesInfo.Defs[name]
			if obj != nil {
				b.ownParams[obj] = true
				switch ut := obj.Type().Underlying().(type) {
				case *types.Signature:
					b.funcParamIdx[obj] = idx
				case *types.Basic:
					if ut.Info()&types.IsString != 0 {
						b.strParamIdx[obj] = idx
					}
				}
			}
			idx++
		}
	}
}

// buildBlock compiles a block into a group item.
func (b *bodyBuilder) buildBlock(blk *ast.BlockStmt, depth int) *Item {
	root := &Item{Kind: ItemGroup, Depth: depth, ParamCallee: -1}
	if blk != nil {
		root.Children = b.buildStmts(blk.List, depth)
	}
	return root
}

// buildStmts compiles a statement list, folding sink Enter/Exit spans
// into region items.
func (b *bodyBuilder) buildStmts(stmts []ast.Stmt, depth int) []*Item {
	var out []*Item
	for i := 0; i < len(stmts); i++ {
		s := stmts[i]
		if name, pos, ok := b.sinkEnterStmt(s); ok {
			region := &Item{Kind: ItemRegion, Depth: depth, Pos: pos, Name: name, ParamCallee: -1}
			j := i + 1
			for ; j < len(stmts); j++ {
				if b.closesRegion(stmts[j]) {
					break
				}
				region.Children = append(region.Children, b.buildStmt(stmts[j], depth)...)
			}
			out = append(out, region)
			i = j // skip the closing statement (it is bookkeeping, not work)
			continue
		}
		out = append(out, b.buildStmt(s, depth)...)
	}
	return out
}

// sinkEnterStmt reports whether the statement is a bare call to a
// configured region sink, resolving the region name argument.
func (b *bodyBuilder) sinkEnterStmt(s ast.Stmt) (StrArg, token.Pos, bool) {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return StrArg{}, token.NoPos, false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return StrArg{}, token.NoPos, false
	}
	callee := b.calleeOf(call)
	if callee == nil {
		return StrArg{}, token.NoPos, false
	}
	argIdx, ok := b.g.sinkEnter[callee.ID]
	if !ok || argIdx >= len(call.Args) {
		return StrArg{}, token.NoPos, false
	}
	return b.resolveStrArg(call.Args[argIdx]), call.Pos(), true
}

// closesRegion reports whether the statement ends an open region: an
// Exit call at the statement's own level (expression statement, return
// value, assignment source, or if/for initializer) — Exit calls nested
// inside the statement's sub-blocks are error paths and do not close.
func (b *bodyBuilder) closesRegion(s ast.Stmt) bool {
	switch st := s.(type) {
	case *ast.ExprStmt:
		return b.exprHasExit(st.X)
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			if b.exprHasExit(rhs) {
				return true
			}
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			if b.exprHasExit(r) {
				return true
			}
		}
	case *ast.IfStmt:
		if st.Init != nil {
			return b.closesRegion(st.Init)
		}
	}
	return false
}

// exprHasExit reports whether the expression contains a sink Exit call
// outside any nested function literal.
func (b *bodyBuilder) exprHasExit(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if callee := b.calleeOf(call); callee != nil && b.g.sinkExit[callee.ID] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// calleeOf resolves a call expression to a static callee node (declared
// function, method, or external stub), nil when dynamic.
func (b *bodyBuilder) calleeOf(call *ast.CallExpr) *Node {
	fun := ast.Unparen(call.Fun)
	for {
		switch f := fun.(type) {
		case *ast.IndexExpr:
			fun = ast.Unparen(f.X)
			continue
		case *ast.IndexListExpr:
			fun = ast.Unparen(f.X)
			continue
		}
		break
	}
	switch f := fun.(type) {
	case *ast.Ident:
		if fn, ok := b.pkg.TypesInfo.Uses[f].(*types.Func); ok {
			return b.g.nodeForObj(fn)
		}
	case *ast.SelectorExpr:
		if sel, ok := b.pkg.TypesInfo.Selections[f]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				if _, isIface := sel.Recv().Underlying().(*types.Interface); !isIface {
					return b.g.nodeForObj(fn)
				}
				return nil // interface call: devirtualized separately
			}
			return nil
		}
		if fn, ok := b.pkg.TypesInfo.Uses[f.Sel].(*types.Func); ok {
			return b.g.nodeForObj(fn)
		}
	}
	return nil
}

// buildStmt compiles one statement into items.
func (b *bodyBuilder) buildStmt(s ast.Stmt, depth int) []*Item {
	if depth > b.node.LoopDepth {
		b.node.LoopDepth = depth
	}
	switch st := s.(type) {
	case *ast.BlockStmt:
		return b.buildStmts(st.List, depth)
	case *ast.LabeledStmt:
		return b.buildStmt(st.Stmt, depth)
	case *ast.ForStmt:
		var out []*Item
		if st.Init != nil {
			out = append(out, b.buildStmt(st.Init, depth)...)
		}
		if st.Cond != nil {
			out = append(out, b.exprItems(st.Cond, depth+1)...)
		}
		if st.Post != nil {
			out = append(out, b.buildStmt(st.Post, depth+1)...)
		}
		out = append(out, b.buildStmts(st.Body.List, depth+1)...)
		return out
	case *ast.RangeStmt:
		b.noteRangeList(st)
		out := b.exprItems(st.X, depth)
		out = append(out, b.buildStmts(st.Body.List, depth+1)...)
		return out
	case *ast.IfStmt:
		var out []*Item
		if st.Init != nil {
			out = append(out, b.buildStmt(st.Init, depth)...)
		}
		out = append(out, b.exprItems(st.Cond, depth)...)
		out = append(out, b.buildStmts(st.Body.List, depth)...)
		if st.Else != nil {
			out = append(out, b.buildStmt(st.Else, depth)...)
		}
		return out
	case *ast.SwitchStmt:
		var out []*Item
		if st.Init != nil {
			out = append(out, b.buildStmt(st.Init, depth)...)
		}
		if st.Tag != nil {
			out = append(out, b.exprItems(st.Tag, depth)...)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, b.buildStmts(cc.Body, depth)...)
			}
		}
		return out
	case *ast.TypeSwitchStmt:
		var out []*Item
		if st.Init != nil {
			out = append(out, b.buildStmt(st.Init, depth)...)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, b.buildStmts(cc.Body, depth)...)
			}
		}
		return out
	case *ast.SelectStmt:
		var out []*Item
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					out = append(out, b.buildStmt(cc.Comm, depth)...)
				}
				out = append(out, b.buildStmts(cc.Body, depth)...)
			}
		}
		return out
	case *ast.GoStmt:
		return b.exprItems(st.Call, depth)
	case *ast.DeferStmt:
		return b.exprItems(st.Call, depth)
	case *ast.AssignStmt:
		b.noteAssignments(st)
		return b.leafItems(s, depth)
	case *ast.DeclStmt:
		b.noteDecl(st)
		return b.leafItems(s, depth)
	case nil:
		return nil
	default:
		return b.leafItems(s, depth)
	}
}

// noteRangeList records a range variable iterating a constant string
// composite literal, so it can later resolve a region-name argument to
// the element list.
func (b *bodyBuilder) noteRangeList(st *ast.RangeStmt) {
	id, ok := st.Value.(*ast.Ident)
	if !ok {
		if id, ok = st.Key.(*ast.Ident); !ok {
			return
		}
	}
	lit, ok := ast.Unparen(st.X).(*ast.CompositeLit)
	if !ok {
		return
	}
	var vals []string
	for _, el := range lit.Elts {
		tv, ok := b.pkg.TypesInfo.Types[el]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return
		}
		vals = append(vals, constant.StringVal(tv.Value))
	}
	if len(vals) == 0 {
		return
	}
	if obj := b.pkg.TypesInfo.Defs[id]; obj != nil {
		b.rangeLists[obj] = vals
	}
}

// noteAssignments tracks single assignments of function values —
// literals (`v := func(...) {...}`), method values (`v := c.Inc`) and
// function references (`v := pkg.Fn`) — and kills variables that are
// reassigned.
func (b *bodyBuilder) noteAssignments(st *ast.AssignStmt) {
	for i, lhs := range st.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := b.pkg.TypesInfo.Defs[id]
		if obj == nil {
			obj = b.pkg.TypesInfo.Uses[id]
		}
		if obj == nil {
			continue
		}
		if _, tracked := b.locals[obj]; tracked {
			b.killed[obj] = true // reassigned: no longer single-assignment
			continue
		}
		if st.Tok == token.DEFINE && i < len(st.Rhs) {
			rhs := ast.Unparen(st.Rhs[i])
			if lit, ok := rhs.(*ast.FuncLit); ok {
				b.locals[obj] = b.litNode(lit)
			} else if fa, ok := b.resolveFuncArg(rhs); ok && fa.Node != nil {
				b.locals[obj] = fa.Node
			}
		}
	}
}

// noteDecl tracks `var v = func(...) {...}` declarations.
func (b *bodyBuilder) noteDecl(st *ast.DeclStmt) {
	gd, ok := st.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			if i >= len(vs.Values) {
				continue
			}
			lit, ok := ast.Unparen(vs.Values[i]).(*ast.FuncLit)
			if !ok {
				continue
			}
			if obj := b.pkg.TypesInfo.Defs[name]; obj != nil {
				b.locals[obj] = b.litNode(lit)
			}
		}
	}
}

// leafItems compiles a straight-line statement: one work item (cost 1
// plus one per operator) and a call item per call expression.
func (b *bodyBuilder) leafItems(s ast.Stmt, depth int) []*Item {
	items := []*Item{{Kind: ItemWork, Depth: depth, Pos: s.Pos(), Cost: 1, ParamCallee: -1}}
	work := items[0]
	ast.Inspect(s, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.BlockStmt:
			return false // sub-blocks are handled by buildStmt callers
		case *ast.FuncLit:
			b.litNode(v) // definition only; calls resolve via locals/args
			return false
		case *ast.BinaryExpr:
			work.Cost++
		case *ast.CallExpr:
			if it := b.callItem(v, depth); it != nil {
				items = append(items, it)
			}
		}
		return true
	})
	return items
}

// exprItems compiles an expression appearing in control-flow position.
func (b *bodyBuilder) exprItems(e ast.Expr, depth int) []*Item {
	items := []*Item{}
	work := &Item{Kind: ItemWork, Depth: depth, Pos: e.Pos(), Cost: 0, ParamCallee: -1}
	ast.Inspect(e, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			b.litNode(v)
			return false
		case *ast.BinaryExpr:
			work.Cost++
		case *ast.CallExpr:
			if it := b.callItem(v, depth); it != nil {
				items = append(items, it)
			}
		}
		return true
	})
	if work.Cost > 0 {
		items = append(items, work)
	}
	return items
}

// litNode returns (creating on first sight) the node for a function
// literal, compiling its body with a fresh builder that shares the
// enclosing local-closure table.
func (b *bodyBuilder) litNode(lit *ast.FuncLit) *Node {
	key := litKey{b.node, lit}
	if n, ok := b.g.litNodes[key]; ok {
		return n
	}
	b.litCount++
	id := litName(b.node.ID, b.litCount)
	n := &Node{
		ID:            id,
		Sym:           litName(b.node.Sym, b.litCount),
		PkgPath:       b.node.PkgPath,
		Pos:           lit.Pos(),
		owner:         b.node,
		paramCalls:    map[int]int{},
		capturedCalls: map[int]int{},
		funcParams:    map[int]bool{},
	}
	if sig, ok := b.pkg.TypesInfo.Types[lit].Type.(*types.Signature); ok {
		for i := 0; i < sig.Params().Len(); i++ {
			if _, ok := sig.Params().At(i).Type().Underlying().(*types.Signature); ok {
				n.funcParams[i] = true
			}
		}
	}
	b.g.Nodes[id] = n
	b.g.litNodes[key] = n
	lb := &bodyBuilder{
		g: b.g, pkg: b.pkg, node: n,
		locals: b.locals, killed: b.killed,
		rangeLists: b.rangeLists,
		// Captures: the literal sees the enclosing builder's parameter
		// index spaces; bindParams layers its own parameters on a copy.
		funcParamIdx: copyIdx(b.funcParamIdx),
		strParamIdx:  copyIdx(b.strParamIdx),
	}
	lb.bindParams(lit.Type)
	n.Items = lb.buildBlock(lit.Body, 0)
	return n
}

// callItem resolves one call expression into an item, nil for
// conversions and unresolvable-and-argless dynamic calls.
func (b *bodyBuilder) callItem(call *ast.CallExpr, depth int) *Item {
	if tv, ok := b.pkg.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return nil // conversion, not a call
	}
	it := &Item{Kind: ItemCall, Depth: depth, Pos: call.Pos(), ParamCallee: -1}

	fun := ast.Unparen(call.Fun)
	for {
		switch f := fun.(type) {
		case *ast.IndexExpr:
			// Only unwrap generic instantiation, not fn-table indexing.
			if tv, ok := b.pkg.TypesInfo.Types[f.X]; ok && tv.Type != nil {
				if _, isSig := tv.Type.Underlying().(*types.Signature); isSig {
					fun = ast.Unparen(f.X)
					continue
				}
			}
		case *ast.IndexListExpr:
			fun = ast.Unparen(f.X)
			continue
		}
		break
	}

	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := b.pkg.TypesInfo.Uses[f].(type) {
		case *types.Func:
			it.Callee = b.g.nodeForObj(obj)
		case *types.Var:
			if idx, ok := b.funcParamIdx[obj]; ok {
				it.ParamCallee = idx
				it.Captured = !b.ownParams[obj]
			} else if n, ok := b.locals[obj]; ok && !b.killed[obj] {
				it.Callee = n
			}
		case *types.Builtin:
			return nil // len/cap/append…: counted as work, not calls
		}
	case *ast.SelectorExpr:
		if sel, ok := b.pkg.TypesInfo.Selections[f]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				if iface, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
					it.Targets = b.g.devirtualize(iface, fn.Name())
				} else {
					it.Callee = b.g.nodeForObj(fn)
				}
			}
		} else if fn, ok := b.pkg.TypesInfo.Uses[f.Sel].(*types.Func); ok {
			it.Callee = b.g.nodeForObj(fn) // qualified pkg.Fn
		}
	case *ast.FuncLit:
		it.Callee = b.litNode(f) // immediately-invoked literal
	}

	// Resolve string- and function-typed arguments.
	for i, arg := range call.Args {
		if tv, ok := b.pkg.TypesInfo.Types[arg]; ok {
			switch tv.Type.Underlying().(type) {
			case *types.Basic:
				sa := b.resolveStrArg(arg)
				if sa.Kind != ArgUnknown {
					if it.StrArgs == nil {
						it.StrArgs = map[int]StrArg{}
					}
					it.StrArgs[i] = sa
				}
			case *types.Signature:
				if fa, ok := b.resolveFuncArg(arg); ok {
					if it.FuncArgs == nil {
						it.FuncArgs = map[int]FuncArg{}
					}
					it.FuncArgs[i] = fa
				}
			}
		}
	}

	if it.Callee == nil && it.ParamCallee < 0 && len(it.Targets) == 0 && len(it.FuncArgs) == 0 {
		// Fully dynamic call: count it as a unit of work instead.
		return &Item{Kind: ItemWork, Depth: depth, Pos: call.Pos(), Cost: 1, ParamCallee: -1}
	}
	return it
}

// resolveStrArg classifies a string argument: constant, own parameter,
// or a range variable over a constant string list.
func (b *bodyBuilder) resolveStrArg(arg ast.Expr) StrArg {
	arg = ast.Unparen(arg)
	if tv, ok := b.pkg.TypesInfo.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return StrArg{Kind: ArgConst, Value: constant.StringVal(tv.Value)}
	}
	if id, ok := arg.(*ast.Ident); ok {
		if obj := b.pkg.TypesInfo.Uses[id]; obj != nil {
			if idx, ok := b.strParamIdx[obj]; ok {
				return StrArg{Kind: ArgParam, Param: idx}
			}
			if vals, ok := b.rangeLists[obj]; ok {
				return StrArg{Kind: ArgList, List: vals}
			}
		}
	}
	return StrArg{Kind: ArgUnknown}
}

// resolveFuncArg classifies a function-typed argument.
func (b *bodyBuilder) resolveFuncArg(arg ast.Expr) (FuncArg, bool) {
	arg = ast.Unparen(arg)
	switch v := arg.(type) {
	case *ast.FuncLit:
		return FuncArg{Node: b.litNode(v), Param: -1}, true
	case *ast.Ident:
		switch obj := b.pkg.TypesInfo.Uses[v].(type) {
		case *types.Func:
			return FuncArg{Node: b.g.nodeForObj(obj), Param: -1}, true
		case *types.Var:
			if idx, ok := b.funcParamIdx[obj]; ok {
				return FuncArg{Node: nil, Param: idx}, true
			}
			if n, ok := b.locals[obj]; ok && !b.killed[obj] {
				return FuncArg{Node: n, Param: -1}, true
			}
		}
	case *ast.SelectorExpr:
		// Method value (x.M) or qualified function (pkg.Fn).
		if sel, ok := b.pkg.TypesInfo.Selections[v]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return FuncArg{Node: b.g.nodeForObj(fn), Param: -1}, true
			}
		} else if fn, ok := b.pkg.TypesInfo.Uses[v.Sel].(*types.Func); ok {
			return FuncArg{Node: b.g.nodeForObj(fn), Param: -1}, true
		}
	}
	return FuncArg{}, false
}

// devirtualize finds the concrete methods implementing an interface
// call, bounded by Options.MaxDevirt. nil means the site stays dynamic.
func (g *Graph) devirtualize(iface *types.Interface, method string) []*Node {
	if iface.Empty() {
		return nil
	}
	var targets []*Node
	seen := map[*Node]bool{}
	for _, t := range g.concreteTypes {
		if named, ok := t.(*types.Named); ok && named.TypeParams().Len() > 0 {
			continue // uninstantiated generic: not a devirtualization target
		}
		var impl types.Type
		switch {
		case types.Implements(t, iface):
			impl = t
		case types.Implements(types.NewPointer(t), iface):
			impl = types.NewPointer(t)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, nil, method)
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		n := g.nodeForObj(fn)
		if n == nil || seen[n] {
			continue
		}
		seen[n] = true
		targets = append(targets, n)
		if len(targets) > g.Opts.MaxDevirt {
			return nil // too hot to expand: keep the site dynamic
		}
	}
	return targets
}

// litKey identifies one literal within its enclosing node.
type litKey struct {
	owner *Node
	lit   *ast.FuncLit
}

// copyIdx clones a parameter index map.
func copyIdx(m map[types.Object]int) map[types.Object]int {
	out := make(map[types.Object]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// litName renders the runtime-style literal name parent.funcN.
func litName(parent string, n int) string {
	return parent + ".func" + strconv.Itoa(n)
}
