// Package edge exercises the call-graph corners: method values,
// generic instantiations, mutual recursion and interface dispatch with
// zero, one and many implementers.
package edge

// --- mutual recursion: ping and pong must land in one SCC and the
// cost propagation must converge rather than chase the cycle.

func Ping(n int) int {
	if n <= 0 {
		return 0
	}
	return Pong(n - 1)
}

func Pong(n int) int {
	if n <= 0 {
		return 1
	}
	return Ping(n - 1)
}

// --- method values: the call through f must resolve to (*Counter).Inc.

type Counter struct{ n int }

func (c *Counter) Inc() { c.n++ }

func UseMethodValue(c *Counter) {
	f := c.Inc
	for i := 0; i < 8; i++ {
		f()
	}
}

// --- generic instantiation: Apply[int] and Apply[string] share one
// declared node; the call edge must exist regardless of type args.

func Apply[T any](v T, f func(T) T) T {
	return f(f(v))
}

func double(x int) int      { return x * 2 }
func shout(s string) string { return s + "!" }

func UseGenerics() (int, string) {
	return Apply(21, double), Apply("hey", shout)
}

// --- interface dispatch.

// Lonely has exactly one implementer: the call site devirtualizes to it.
type Lonely interface{ Solo() int }

type onlyImpl struct{}

func (onlyImpl) Solo() int { return 1 }

func CallLonely(l Lonely) int { return l.Solo() }

// Crowded has three implementers: the site fans out to all of them.
type Crowded interface{ Pick() int }

type implA struct{}
type implB struct{}
type implC struct{}

func (implA) Pick() int { return 1 }
func (implB) Pick() int { return 2 }
func (implC) Pick() int { return 3 }

func CallCrowded(c Crowded) int { return c.Pick() }

// Orphan has no implementer anywhere in the load set: the site stays
// dynamic (no devirtualized targets, charged as external work).
type Orphan interface{ Nobody() }

func CallOrphan(o Orphan) { o.Nobody() }

// keep the implementers reachable so they aren't dead roots
var (
	_ = onlyImpl{}.Solo
	_ = implA{}.Pick
	_ = implB{}.Pick
	_ = implC{}.Pick
)
