// Package callgraph constructs a static, repo-wide call graph over the
// packages loaded by internal/analysis — the interprocedural substrate
// under Tempest's cost model, instrumentation planner and program-wide
// vet passes.
//
// The graph is deliberately richer than a flat who-calls-whom relation:
//
//   - every call site carries its loop-nest depth, so downstream cost
//     models can weight a call inside a triple loop above a call made
//     once at function entry;
//   - function literals become first-class nodes (named parent.funcN,
//     matching the runtime's symbol scheme), and closures passed as
//     arguments are connected to the point where the receiving function
//     actually invokes the parameter — including through forwarding
//     chains (f passes its callback to g, g to h, h calls it);
//   - interface call sites are devirtualized when the loaded program
//     contains a bounded number of implementing types (Options.MaxDevirt),
//     producing one edge per concrete method with the fan-out recorded so
//     cost models can split frequency between targets;
//   - calls to configured instrumentation sinks (Options.Sinks, e.g.
//     cluster.Rank.Enter) open named region spans in the per-function
//     item tree, which is how the cost model maps static structure onto
//     the function names a measured Tempest profile reports.
//
// Everything is stdlib-only and offline, riding the same go/types
// information the analysis loader already produces.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"tempest/internal/analysis"
)

// Options tunes graph construction.
type Options struct {
	// MaxDevirt bounds interface-call devirtualization: a call through an
	// interface with at most this many implementing types in the loaded
	// program gets one edge per concrete method; busier interfaces stay
	// unresolved (default 4).
	MaxDevirt int
	// Sinks are the instrumentation entry points that open named regions
	// (see RegionSink). Optional.
	Sinks []RegionSink
	// ExternalParamDepth is the loop depth assumed when a func-typed
	// argument is handed to a function outside the loaded set (sort.Slice
	// and friends usually invoke their callbacks in a loop; default 1).
	ExternalParamDepth int
}

func (o Options) withDefaults() Options {
	if o.MaxDevirt <= 0 {
		o.MaxDevirt = 4
	}
	if o.ExternalParamDepth < 0 {
		o.ExternalParamDepth = 0
	} else if o.ExternalParamDepth == 0 {
		o.ExternalParamDepth = 1
	}
	return o
}

// RegionSink identifies an instrumentation entry call: invoking Enter
// opens a region named by the call's Arg-th argument, closed again by a
// block-level call to Exit. Both are path-qualified symbols in the
// Node.ID scheme, e.g. "tempest/internal/cluster.(*Rank).Enter".
type RegionSink struct {
	Enter string
	Exit  string
	// Arg is the index of the region-name argument of Enter.
	Arg int
}

// EdgeKind classifies how a call edge was resolved.
type EdgeKind uint8

const (
	// EdgeStatic is a direct call to a declared function or method.
	EdgeStatic EdgeKind = iota
	// EdgeClosure is a call to a function literal (immediate or through a
	// single-assignment local variable).
	EdgeClosure
	// EdgeDevirt is an interface call expanded to a concrete method; the
	// site's Fanout says how many targets share it.
	EdgeDevirt
	// EdgeBound connects a caller to a func-typed argument at the point
	// where the receiving function (transitively) invokes that parameter.
	EdgeBound
)

// String renders the kind for diagnostics.
func (k EdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "static"
	case EdgeClosure:
		return "closure"
	case EdgeDevirt:
		return "devirt"
	case EdgeBound:
		return "bound"
	}
	return "invalid"
}

// Edge is one resolved call site.
type Edge struct {
	Caller *Node
	Callee *Node
	Pos    token.Pos
	// Depth is the loop-nest depth of the call site within the caller.
	Depth int
	// Fanout is 1 for direct calls and the number of devirtualization
	// targets for interface sites (frequency is split between them).
	Fanout int
	Kind   EdgeKind
}

// Node is one function in the graph: a declared function or method, a
// function literal, or an external function referenced but not loaded.
type Node struct {
	// ID is the unique, package-path-qualified name:
	// "tempest/internal/nas.btSolveAxis",
	// "tempest/internal/collect.(*Shipper).run",
	// "tempest/internal/nas.RunBTParams.func2" for literals.
	ID string
	// Sym is the package-name-qualified symbol in the instrumenter's
	// scheme ("nas.btSolveAxis", "collect.(*Shipper).run") — the form
	// tempest-instrument registers and FuncName reports.
	Sym     string
	PkgPath string
	Pos     token.Pos
	// External marks functions referenced but without a loaded body
	// (stdlib, packages outside the Load set). They have no Items.
	External bool
	// LoopDepth is the deepest loop nesting anywhere in the body.
	LoopDepth int
	// Items is the body's item tree (nil for external nodes).
	Items *Item
	// Out and In are the resolved call edges.
	Out []*Edge
	In  []*Edge
	// SCC is the index of the node's strongly connected component in
	// Graph.SCCs after Build.
	SCC int

	obj *types.Func
	// owner is the node a function literal is defined inside (nil for
	// declared functions): the lexical scope its captures resolve in.
	owner *Node
	// funcParams maps a parameter index to true when the parameter has
	// function type (candidates for invocation/forwarding analysis).
	funcParams map[int]bool
	// paramCalls maps a function-typed parameter index to the minimum
	// loop depth at which the function (transitively) invokes it; filled
	// by the forwarding fixpoint.
	paramCalls map[int]int
	// capturedCalls is the literal-node analogue for captured parameters:
	// indices in the enclosing declared function's parameter space that
	// this literal (transitively) invokes, with the depth inside the
	// literal. The fixpoint lifts them into the encloser's paramCalls at
	// the point the encloser hands the literal out.
	capturedCalls map[int]int
	visiting      bool
	onStack       bool
	index, low    int
}

// Graph is the built call graph.
type Graph struct {
	// Nodes maps Node.ID to the node, externals included.
	Nodes map[string]*Node
	// SCCs lists the strongly connected components in dependency order:
	// callees appear before their callers, so a bottom-up cost
	// propagation is a single forward sweep.
	SCCs [][]*Node
	Opts Options

	byObj map[*types.Func]*Node
	// litNodes memoizes function-literal nodes so the argument resolver
	// and the expression walker agree on one node per literal.
	litNodes map[litKey]*Node
	// concreteTypes are the named non-interface types of the loaded
	// program, the devirtualization candidate set.
	concreteTypes []types.Type
	sinkEnter     map[string]int // Enter ID → arg index
	sinkExit      map[string]bool
}

// Build constructs the call graph for the loaded packages.
func Build(pkgs []*analysis.Package, opts Options) (*Graph, error) {
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("callgraph: no packages")
	}
	g := &Graph{
		Nodes:     map[string]*Node{},
		Opts:      opts.withDefaults(),
		byObj:     map[*types.Func]*Node{},
		litNodes:  map[litKey]*Node{},
		sinkEnter: map[string]int{},
		sinkExit:  map[string]bool{},
	}
	for _, s := range g.Opts.Sinks {
		g.sinkEnter[s.Enter] = s.Arg
		g.sinkExit[s.Exit] = true
	}

	// Pass 1: declared functions become nodes; named concrete types are
	// collected for devirtualization.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					obj, _ := pkg.TypesInfo.Defs[d.Name].(*types.Func)
					if obj == nil {
						continue
					}
					n := g.newDeclNode(pkg, d, obj)
					g.Nodes[n.ID] = n
					g.byObj[obj] = n
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						tn, _ := pkg.TypesInfo.Defs[ts.Name].(*types.TypeName)
						if tn == nil || tn.IsAlias() {
							continue
						}
						if _, isIface := tn.Type().Underlying().(*types.Interface); !isIface {
							g.concreteTypes = append(g.concreteTypes, tn.Type())
						}
					}
				}
			}
		}
	}

	// Pass 2: build each body's item tree (creating closure nodes as
	// they are encountered) and flatten call items into edges.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				d, ok := decl.(*ast.FuncDecl)
				if !ok || d.Body == nil {
					continue
				}
				obj := pkg.TypesInfo.Defs[d.Name].(*types.Func)
				n := g.byObj[obj]
				b := &bodyBuilder{g: g, pkg: pkg, node: n, locals: map[types.Object]*Node{}, killed: map[types.Object]bool{}}
				b.bindParams(d.Type)
				n.Items = b.buildBlock(d.Body, 0)
			}
		}
	}

	// The forwarding fixpoint needs every node's direct items in place
	// before bound edges can be synthesized.
	g.solveParamCalls()
	g.elaborateBindings()
	g.connectEdges()
	g.condense()
	return g, nil
}

// newDeclNode creates the node for a declared function or method.
func (g *Graph) newDeclNode(pkg *analysis.Package, d *ast.FuncDecl, obj *types.Func) *Node {
	recv := ""
	if d.Recv != nil && len(d.Recv.List) > 0 {
		t := d.Recv.List[0].Type
		ptr := false
		if star, ok := t.(*ast.StarExpr); ok {
			ptr = true
			t = star.X
		}
		base := "?"
		if id, ok := stripIndex(t).(*ast.Ident); ok {
			base = id.Name
		}
		if ptr {
			recv = "(*" + base + ")."
		} else {
			recv = base + "."
		}
	}
	return &Node{
		ID:            pkg.PkgPath + "." + recv + d.Name.Name,
		Sym:           pkg.Types.Name() + "." + recv + d.Name.Name,
		PkgPath:       pkg.PkgPath,
		Pos:           d.Pos(),
		obj:           obj,
		funcParams:    funcParamSet(obj),
		paramCalls:    map[int]int{},
		capturedCalls: map[int]int{},
	}
}

// nodeForObj resolves a *types.Func (generic instantiations through
// Origin, wrapper-free) to its node, creating an external stub for
// functions outside the loaded set.
func (g *Graph) nodeForObj(obj *types.Func) *Node {
	if obj == nil {
		return nil
	}
	if o := obj.Origin(); o != nil {
		obj = o
	}
	if n, ok := g.byObj[obj]; ok {
		return n
	}
	// External: synthesize a stable ID from the object.
	id := externalID(obj)
	if n, ok := g.Nodes[id]; ok {
		g.byObj[obj] = n
		return n
	}
	pkgPath, pkgName := "", ""
	if obj.Pkg() != nil {
		pkgPath, pkgName = obj.Pkg().Path(), obj.Pkg().Name()
	}
	n := &Node{
		ID:            id,
		Sym:           strings.TrimPrefix(id, pkgPath),
		PkgPath:       pkgPath,
		External:      true,
		obj:           obj,
		funcParams:    funcParamSet(obj),
		paramCalls:    map[int]int{},
		capturedCalls: map[int]int{},
	}
	if pkgName != "" {
		n.Sym = pkgName + strings.TrimPrefix(id, pkgPath)
	}
	g.Nodes[id] = n
	g.byObj[obj] = n
	return n
}

// externalID renders the path-qualified ID for an unloaded function.
func externalID(obj *types.Func) string {
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := false
		if p, ok := t.(*types.Pointer); ok {
			ptr = true
			t = p.Elem()
		}
		name := "?"
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name()
		}
		if ptr {
			return fmt.Sprintf("%s.(*%s).%s", pkg, name, obj.Name())
		}
		return fmt.Sprintf("%s.%s.%s", pkg, name, obj.Name())
	}
	return pkg + "." + obj.Name()
}

// funcParamSet records which parameter indices have function type.
func funcParamSet(obj *types.Func) map[int]bool {
	out := map[int]bool{}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return out
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if _, ok := sig.Params().At(i).Type().Underlying().(*types.Signature); ok {
			out[i] = true
		}
	}
	return out
}

// Lookup returns the node with the given ID, nil if absent.
func (g *Graph) Lookup(id string) *Node { return g.Nodes[id] }

// NodeByObj returns the node for a function object already in the graph
// (declared functions after Build), nil if absent. Unlike the internal
// resolver it never creates external stubs.
func (g *Graph) NodeByObj(obj *types.Func) *Node {
	if obj == nil {
		return nil
	}
	if o := obj.Origin(); o != nil {
		obj = o
	}
	return g.byObj[obj]
}

// Roots returns the loaded (non-external, non-closure) nodes with no
// incoming edges, sorted by ID — the default entry set for frequency
// propagation.
func (g *Graph) Roots() []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if n.External || n.Items == nil {
			continue
		}
		if strings.Contains(n.ID, ".func") && n.Lit() {
			continue
		}
		if len(n.In) == 0 {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lit reports whether the node is a function literal.
func (n *Node) Lit() bool { return n.obj == nil }

// Owner returns the node a literal is defined inside, nil for declared
// functions.
func (n *Node) Owner() *Node { return n.owner }

// VisitItems applies fn to every item of the body tree, pre-order.
// No-op for external nodes.
func (n *Node) VisitItems(fn func(*Item)) { n.Items.visit(fn) }

// Visit applies fn to the item and every descendant, pre-order.
func (it *Item) Visit(fn func(*Item)) { it.visit(fn) }

// solveParamCalls runs the forwarding fixpoint: paramCalls[f][i] is the
// minimum loop depth at which f (transitively through forwarding)
// invokes its i-th parameter.
func (g *Graph) solveParamCalls() {
	changed := true
	for iter := 0; changed && iter < 32; iter++ {
		changed = false
		for _, n := range g.Nodes {
			if n.Items == nil {
				continue
			}
			n.Items.visit(func(it *Item) {
				if it.Kind != ItemCall {
					return
				}
				if it.ParamCallee >= 0 {
					// Captured indices live in the encloser's space and
					// accumulate separately until lifted below.
					m := n.paramCalls
					if it.Captured {
						m = n.capturedCalls
					}
					if merge(m, it.ParamCallee, it.Depth) {
						changed = true
					}
				}
				// Direct call of an own literal: its captured-parameter
				// invocations become ours at the call site's depth.
				if it.Callee != nil && it.Callee.owner == n {
					if g.liftCaptures(n, it.Callee, it.Depth) {
						changed = true
					}
				}
				for j, fa := range it.FuncArgs {
					// Forwarding: n passes its own parameter p as the j-th
					// argument of callee c, and c invokes parameter j.
					if fa.Param >= 0 && it.Callee != nil {
						if d, ok := it.Callee.paramDepth(j, g.Opts.ExternalParamDepth); ok {
							if merge(n.paramCalls, fa.Param, it.Depth+d) {
								changed = true
							}
						}
					}
					// Handing out an own literal: wherever the receiver
					// invokes it, the literal's captured-parameter calls
					// land back on n.
					if fa.Node != nil && fa.Node.owner == n {
						d, ok := g.Opts.ExternalParamDepth, true
						if it.Callee != nil {
							d, ok = it.Callee.paramDepth(j, g.Opts.ExternalParamDepth)
						} else if it.ParamCallee >= 0 {
							ok = false // routed through our own parameter: opaque
						}
						if ok && g.liftCaptures(n, fa.Node, it.Depth+d) {
							changed = true
						}
					}
				}
			})
		}
	}
}

// liftCaptures merges a literal's captured-parameter invocations into
// its encloser n, offset by the depth at which n causes the literal to
// run. For nested literals n is itself a literal and the indices stay in
// capture space, walking outward one level per fixpoint round.
func (g *Graph) liftCaptures(n, lit *Node, depth int) bool {
	target := n.paramCalls
	if n.Lit() {
		target = n.capturedCalls
	}
	changed := false
	for i, dL := range lit.capturedCalls {
		if merge(target, i, depth+dL) {
			changed = true
		}
	}
	return changed
}

// paramDepth reports the depth at which the function invokes parameter
// j. External functions are assumed to invoke their func params at the
// configured default depth (sort.Slice calls its comparator in a loop).
func (n *Node) paramDepth(j int, externalDefault int) (int, bool) {
	if n.External {
		if n.funcParams[j] {
			return externalDefault, true
		}
		return 0, false
	}
	d, ok := n.paramCalls[j]
	return d, ok
}

// merge lowers m[k] to d, reporting whether anything changed.
func merge(m map[int]int, k, d int) bool {
	if old, ok := m[k]; !ok || d < old {
		m[k] = d
		return true
	}
	return false
}

// elaborateBindings turns func-typed arguments into bound call items:
// when f passes closure X to g and g invokes that parameter at depth d,
// f effectively calls X at siteDepth+d.
func (g *Graph) elaborateBindings() {
	for _, n := range g.Nodes {
		if n.Items == nil {
			continue
		}
		var synth []*Item
		n.Items.visit(func(it *Item) {
			if it.Kind != ItemCall {
				return
			}
			for j, fa := range it.FuncArgs {
				if fa.Node == nil {
					continue
				}
				var callee *Node
				var d int
				var ok bool
				switch {
				case it.Callee != nil:
					d, ok = it.Callee.paramDepth(j, g.Opts.ExternalParamDepth)
					callee = fa.Node
				case it.ParamCallee >= 0:
					// Passing a func to a call through one of our own
					// parameters: unknowable statically; skip.
				default:
					// Unresolved call target holding a func arg: assume it
					// invokes the callback at the external default depth.
					d, ok = g.Opts.ExternalParamDepth, true
					callee = fa.Node
				}
				if !ok || callee == nil {
					continue
				}
				synth = append(synth, &Item{
					Kind:   ItemCall,
					Depth:  it.Depth + d,
					Pos:    it.Pos,
					Callee: callee,
					Bound:  true,

					ParamCallee: -1,
				})
			}
		})
		n.Items.Children = append(n.Items.Children, synth...)
	}
}

// connectEdges flattens call items into graph edges.
func (g *Graph) connectEdges() {
	var nodes []*Node
	for _, n := range g.Nodes {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	for _, n := range nodes {
		if n.Items == nil {
			continue
		}
		caller := n
		caller.Items.visit(func(it *Item) {
			if it.Kind != ItemCall {
				return
			}
			kind := EdgeStatic
			if it.Bound {
				kind = EdgeBound
			}
			switch {
			case it.Callee != nil:
				if it.Callee.Lit() {
					kind = EdgeClosure
				}
				if it.Bound {
					kind = EdgeBound
				}
				e := &Edge{Caller: caller, Callee: it.Callee, Pos: it.Pos, Depth: it.Depth, Fanout: 1, Kind: kind}
				caller.Out = append(caller.Out, e)
				it.Callee.In = append(it.Callee.In, e)
			case len(it.Targets) > 0:
				for _, t := range it.Targets {
					e := &Edge{Caller: caller, Callee: t, Pos: it.Pos, Depth: it.Depth, Fanout: len(it.Targets), Kind: EdgeDevirt}
					caller.Out = append(caller.Out, e)
					t.In = append(t.In, e)
				}
			}
		})
	}
}

// condense runs Tarjan's SCC algorithm, filling Node.SCC and Graph.SCCs
// in dependency order (callees before callers).
func (g *Graph) condense() {
	var ids []string
	for id := range g.Nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	index := 1
	var stack []*Node
	var sccs [][]*Node
	var strongconnect func(n *Node)
	strongconnect = func(v *Node) {
		v.index, v.low = index, index
		index++
		stack = append(stack, v)
		v.onStack = true
		for _, e := range v.Out {
			w := e.Callee
			if w.index == 0 {
				strongconnect(w)
				if w.low < v.low {
					v.low = w.low
				}
			} else if w.onStack && w.index < v.low {
				v.low = w.index
			}
		}
		if v.low == v.index {
			var scc []*Node
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				w.onStack = false
				w.SCC = len(sccs)
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Slice(scc, func(i, j int) bool { return scc[i].ID < scc[j].ID })
			sccs = append(sccs, scc)
		}
	}
	for _, id := range ids {
		if n := g.Nodes[id]; n.index == 0 {
			strongconnect(n)
		}
	}
	g.SCCs = sccs
}

// stripIndex unwraps generic receiver forms T[P] / T[P1, P2].
func stripIndex(t ast.Expr) ast.Expr {
	for {
		switch v := t.(type) {
		case *ast.IndexExpr:
			t = v.X
		case *ast.IndexListExpr:
			t = v.X
		default:
			return t
		}
	}
}
