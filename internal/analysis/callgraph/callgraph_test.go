package callgraph_test

import (
	"path/filepath"
	"testing"

	"tempest/internal/analysis"
	"tempest/internal/analysis/callgraph"
	"tempest/internal/analysis/costmodel"
)

// loadEdge builds the graph over the testdata "edge" fixture package.
func loadEdge(t *testing.T) *callgraph.Graph {
	t.Helper()
	pkgs, err := analysis.Load(analysis.LoadConfig{
		Dir:       ".",
		ExtraRoot: filepath.Join("testdata", "src"),
	}, "edge")
	if err != nil {
		t.Fatal(err)
	}
	g, err := callgraph.Build(pkgs, callgraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// edges returns the IDs of n's resolved callees, with edge kinds.
func edges(t *testing.T, g *callgraph.Graph, id string) map[string]callgraph.EdgeKind {
	t.Helper()
	n := g.Lookup(id)
	if n == nil {
		t.Fatalf("node %q not in graph", id)
	}
	out := map[string]callgraph.EdgeKind{}
	for _, e := range n.Out {
		out[e.Callee.ID] = e.Kind
	}
	return out
}

func TestMutualRecursionSharesSCC(t *testing.T) {
	g := loadEdge(t)
	ping, pong := g.Lookup("edge.Ping"), g.Lookup("edge.Pong")
	if ping == nil || pong == nil {
		t.Fatal("Ping/Pong nodes missing")
	}
	if ping.SCC != pong.SCC {
		t.Errorf("mutual recursion split across SCCs: Ping %d, Pong %d", ping.SCC, pong.SCC)
	}
	if _, ok := edges(t, g, "edge.Ping")["edge.Pong"]; !ok {
		t.Error("Ping -> Pong edge missing")
	}
	if _, ok := edges(t, g, "edge.Pong")["edge.Ping"]; !ok {
		t.Error("Pong -> Ping edge missing")
	}

	// Cost propagation over the cycle must converge to finite values
	// (the intra-SCC cut charges callee Self, never chasing Total).
	m := costmodel.Analyze(g, costmodel.Options{})
	fc := m.Lookup("edge.Ping")
	if fc == nil {
		t.Fatal("no cost for edge.Ping")
	}
	if fc.Total <= 0 || fc.Total > 1e12 {
		t.Errorf("SCC propagation diverged: Ping Total = %g", fc.Total)
	}
}

func TestMethodValueResolves(t *testing.T) {
	g := loadEdge(t)
	out := edges(t, g, "edge.UseMethodValue")
	if _, ok := out["edge.(*Counter).Inc"]; !ok {
		t.Errorf("method value call did not resolve to (*Counter).Inc; edges = %v", out)
	}
}

func TestGenericInstantiation(t *testing.T) {
	g := loadEdge(t)
	out := edges(t, g, "edge.UseGenerics")
	if _, ok := out["edge.Apply"]; !ok {
		t.Errorf("generic call did not resolve to the declared Apply node; edges = %v", out)
	}
	// Both instantiations share one node — no per-type-arg duplicates.
	for id := range g.Nodes {
		if id != "edge.Apply" && len(id) > len("edge.Apply") && id[:len("edge.Apply")] == "edge.Apply" {
			t.Errorf("instantiation produced a duplicate node %q", id)
		}
	}
	// The function arguments passed into Apply must reach their callees:
	// Apply invokes its parameter, so double/shout get bound edges.
	m := costmodel.Analyze(g, costmodel.Options{Roots: []string{"edge.UseGenerics"}})
	for _, leaf := range []string{"edge.double", "edge.shout"} {
		fc := m.Lookup(leaf)
		if fc == nil {
			t.Fatalf("no cost entry for %s", leaf)
		}
		if fc.Freq <= 0 {
			t.Errorf("%s unreachable through the generic parameter binding (Freq = %g)", leaf, fc.Freq)
		}
	}
}

func TestInterfaceDevirtualization(t *testing.T) {
	g := loadEdge(t)

	// One implementer: the site devirtualizes to exactly it.
	lone := edges(t, g, "edge.CallLonely")
	if kind, ok := lone["edge.onlyImpl.Solo"]; !ok || kind != callgraph.EdgeDevirt {
		t.Errorf("single-implementer site = %v, want devirt edge to edge.onlyImpl.Solo", lone)
	}
	if len(lone) != 1 {
		t.Errorf("single-implementer site has %d edges: %v", len(lone), lone)
	}

	// Many implementers (3 <= MaxDevirt): fan out to all of them.
	crowd := edges(t, g, "edge.CallCrowded")
	for _, want := range []string{"edge.implA.Pick", "edge.implB.Pick", "edge.implC.Pick"} {
		if kind, ok := crowd[want]; !ok || kind != callgraph.EdgeDevirt {
			t.Errorf("crowded site missing devirt edge to %s: %v", want, crowd)
		}
	}

	// Zero implementers: the site stays dynamic — no edges, charged as
	// work, and the model still prices the caller.
	orphan := edges(t, g, "edge.CallOrphan")
	if len(orphan) != 0 {
		t.Errorf("no-implementer site grew edges: %v", orphan)
	}
	m := costmodel.Analyze(g, costmodel.Options{})
	if fc := m.Lookup("edge.CallOrphan"); fc == nil || fc.Self <= 0 {
		t.Errorf("dynamic call site not charged as work: %+v", fc)
	}
}
