// Package passes registers the Tempest invariant suite.
package passes

import (
	"tempest/internal/analysis"
	"tempest/internal/analysis/passes/enterexit"
	"tempest/internal/analysis/passes/goroleak"
	"tempest/internal/analysis/passes/lockcheck"
	"tempest/internal/analysis/passes/lockorder"
	"tempest/internal/analysis/passes/naneq"
	"tempest/internal/analysis/passes/seqwire"
	"tempest/internal/analysis/passes/storehash"
	"tempest/internal/analysis/passes/wallclock"
)

// All returns every analyzer in the suite, in reporting-name order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		enterexit.Analyzer,
		goroleak.Analyzer,
		lockcheck.Analyzer,
		lockorder.Analyzer,
		naneq.Analyzer,
		seqwire.Analyzer,
		storehash.Analyzer,
		wallclock.Analyzer,
	}
}
