// Package goroleak flags goroutines launched with no visible
// termination path. A long-lived goroutine should be observably
// stoppable — a select on a done/context channel, a channel receive
// that ends when the sender closes, a return on error — and Tempest's
// collector, shipper and store daemons all follow that shape. What this
// pass catches is the goroutine that cannot stop:
//
//   - `go f()` where the spawned body (or a function it statically
//     calls, to a small depth) contains an unconditional `for { … }`
//     whose body has no return, no break out of the loop, no select,
//     no channel receive and no panic — it spins or works forever;
//   - a bare `select {}`, which blocks forever by construction.
//
// The check runs program-wide so a spawn in one package is followed
// into the helper it calls in another. WaitGroup.Done, counters and
// logging inside such a loop do not make it stoppable and do not
// silence the finding; a sanctioned forever-goroutine (a daemon that is
// meant to die with the process) carries
// `//tempest:ignore goroleak <rationale>`.
package goroleak

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"tempest/internal/analysis"
)

// Analyzer implements the goroleak pass.
var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc: "goroutines must have a visible termination path: an unconditional loop with no " +
		"return/break/select/receive (or a bare select{}) runs forever",
	RunProgram: runProgram,
}

// maxCallDepth bounds how far the checker follows static calls out of
// the spawned body.
const maxCallDepth = 3

func runProgram(pass *analysis.ProgramPass) error {
	c := &checker{
		bodies: map[*types.Func]*body{},
	}
	for _, pkg := range pass.Prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					if obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func); ok {
						c.bodies[obj] = &body{block: fd.Body, pkg: pkg}
					}
				}
			}
		}
	}
	for _, pkg := range pass.Prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				c.checkSpawn(pass, pkg, g)
				return true
			})
		}
	}
	return nil
}

// body pairs a function body with the package whose type info covers it.
type body struct {
	block *ast.BlockStmt
	pkg   *analysis.Package
}

type checker struct {
	bodies map[*types.Func]*body
}

// checkSpawn resolves the spawned function and reports if it hangs.
func (c *checker) checkSpawn(pass *analysis.ProgramPass, pkg *analysis.Package, g *ast.GoStmt) {
	var b *body
	where := ""
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		b = &body{block: fun.Body, pkg: pkg}
	default:
		obj := calleeObj(pkg, g.Call)
		if obj == nil {
			return
		}
		db, ok := c.bodies[obj]
		if !ok {
			return
		}
		b = db
		where = " in " + obj.Name()
	}
	if hang := c.findHang(b, 0, map[*types.Func]bool{}); hang != nil {
		pass.Reportf(g.Pos(), "goroutine has no visible termination path: %s%s never returns, breaks, selects or receives",
			hang.what, where)
	}
}

// hangSite describes the blocking construct found.
type hangSite struct {
	pos  token.Pos
	what string
}

// findHang scans a body for an unguarded infinite loop or a bare
// select{}, following static calls up to maxCallDepth.
func (c *checker) findHang(b *body, depth int, seen map[*types.Func]bool) *hangSite {
	var found *hangSite
	ast.Inspect(b.block, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch v := n.(type) {
		case *ast.FuncLit:
			return false // a nested literal only blocks where it is called
		case *ast.GoStmt:
			return false // a nested spawn is checked at its own go statement
		case *ast.SelectStmt:
			if len(v.Body.List) == 0 {
				found = &hangSite{pos: v.Pos(), what: "a bare select{}"}
				return false
			}
		case *ast.ForStmt:
			if !infiniteCond(b.pkg, v.Cond) {
				return true
			}
			if !hasTerminator(v.Body) {
				found = &hangSite{pos: v.Pos(), what: "an unconditional for loop"}
				return false
			}
		case *ast.CallExpr:
			if depth >= maxCallDepth {
				return true
			}
			obj := calleeObj(b.pkg, v)
			if obj == nil || seen[obj] {
				return true
			}
			if cb, ok := c.bodies[obj]; ok {
				seen[obj] = true
				if h := c.findHang(cb, depth+1, seen); h != nil {
					found = &hangSite{pos: v.Pos(), what: h.what + " (via " + obj.Name() + ")"}
					return false
				}
			}
		}
		return true
	})
	return found
}

// infiniteCond reports whether the loop condition is absent or the
// constant true.
func infiniteCond(pkg *analysis.Package, cond ast.Expr) bool {
	if cond == nil {
		return true
	}
	tv, ok := pkg.TypesInfo.Types[cond]
	return ok && tv.Value != nil && tv.Value.Kind() == constant.Bool && constant.BoolVal(tv.Value)
}

// hasTerminator reports whether a loop body contains a way out or a
// wait point: return, a break binding to this loop, goto, select, a
// channel receive, ranging over a channel, or panic.
func hasTerminator(loopBody *ast.BlockStmt) bool {
	has := false
	// breakable counts the for/switch/select statements between the
	// loop body and a plain break, which would capture it.
	var walk func(n ast.Node, breakable int)
	walk = func(n ast.Node, breakable int) {
		if has || n == nil {
			return
		}
		switch v := n.(type) {
		case *ast.FuncLit:
			return // returns/receives inside a literal do not exit the loop
		case *ast.ReturnStmt:
			has = true
			return
		case *ast.BranchStmt:
			switch v.Tok {
			case token.BREAK:
				if v.Label != nil || breakable == 0 {
					has = true
				}
			case token.GOTO:
				has = true
			}
			return
		case *ast.SelectStmt:
			has = true
			return
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				has = true
				return
			}
		case *ast.RangeStmt:
			// Ranging a channel is a receive; ranging anything else is an
			// inner loop (breakable for plain break).
			walk(v.X, breakable)
			walk(v.Body, breakable+1)
			return
		case *ast.ForStmt:
			walk(v.Init, breakable)
			walk(v.Cond, breakable)
			walk(v.Post, breakable)
			walk(v.Body, breakable+1)
			return
		case *ast.SwitchStmt:
			walk(v.Init, breakable)
			walk(v.Tag, breakable)
			walk(v.Body, breakable+1)
			return
		case *ast.TypeSwitchStmt:
			walk(v.Init, breakable)
			walk(v.Assign, breakable)
			walk(v.Body, breakable+1)
			return
		case *ast.CallExpr:
			if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && id.Name == "panic" {
				has = true
				return
			}
		}
		children(n, func(ch ast.Node) { walk(ch, breakable) })
	}
	walk(loopBody, 0)
	return has
}

// calleeObj resolves a call to its declared function object, nil when
// dynamic.
func calleeObj(pkg *analysis.Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj, _ := pkg.TypesInfo.Uses[fun].(*types.Func)
		return obj
	case *ast.SelectorExpr:
		if sel, ok := pkg.TypesInfo.Selections[fun]; ok {
			obj, _ := sel.Obj().(*types.Func)
			return obj
		}
		obj, _ := pkg.TypesInfo.Uses[fun.Sel].(*types.Func)
		return obj
	}
	return nil
}

// children invokes fn for each immediate child node of n.
func children(n ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			fn(c)
		}
		return false
	})
}
