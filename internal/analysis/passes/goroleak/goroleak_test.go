package goroleak_test

import (
	"testing"

	"tempest/internal/analysis/analysistest"
	"tempest/internal/analysis/passes/goroleak"
)

func TestGoroleak(t *testing.T) {
	analysistest.Run(t, goroleak.Analyzer, "a")
}
