// Package a seeds goroutine-leak violations for the goroleak pass.
package a

import "sync"

// Spin loops forever with no way out: the classic busy worker leak.
func Spin(counter *int) {
	go func() { // want `goroutine has no visible termination path: an unconditional for loop`
		for {
			*counter++
		}
	}()
}

// Block parks forever on a bare select.
func Block() {
	go func() { // want `goroutine has no visible termination path: a bare select\{\}`
		select {}
	}()
}

// pump has the infinite loop in a named function the goroutine calls.
func pump(out []int) {
	for {
		out = append(out, len(out))
	}
}

func StartPump(out []int) {
	go pump(out) // want `goroutine has no visible termination path: an unconditional for loop in pump`
}

// relayInner hides the loop one call deeper; the checker follows static
// calls.
func relayInner() {
	for i := 0; ; i++ {
		_ = i * i
	}
}

func relay() {
	relayInner()
}

func StartRelay() {
	go relay() // want `goroutine has no visible termination path: an unconditional for loop \(via relayInner\) in relay`
}

// ForTrue: a constant-true condition is still an infinite loop.
func ForTrue(counter *int) {
	go func() { // want `goroutine has no visible termination path: an unconditional for loop`
		for true {
			*counter++
		}
	}()
}

// BreakInSwitch: the break binds to the switch, not the loop — the loop
// still runs forever.
func BreakInSwitch(counter *int) {
	go func() { // want `goroutine has no visible termination path: an unconditional for loop`
		for {
			switch *counter {
			case 0:
				break
			default:
				*counter++
			}
		}
	}()
}

// --- negatives: all of these have a visible termination path ---

// SelectLoop is the sanctioned daemon shape: select on a done channel.
func SelectLoop(work <-chan int, done <-chan struct{}) {
	go func() {
		for {
			select {
			case <-work:
			case <-done:
				return
			}
		}
	}()
}

// Drain ends when the sender closes the channel.
func Drain(ch <-chan int, sum *int) {
	go func() {
		for v := range ch {
			*sum += v
		}
	}()
}

// Receive waits on a channel inside the loop.
func Receive(ch <-chan int, sum *int) {
	go func() {
		for {
			*sum += <-ch
		}
	}()
}

// Bounded terminates by its own condition.
func Bounded(n int, wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			_ = i
		}
	}()
}

// BreakOut leaves the loop with a plain break bound to it.
func BreakOut(counter *int) {
	go func() {
		for {
			if *counter > 10 {
				break
			}
			*counter++
		}
	}()
}

// LabeledBreak leaves through an outer label from inside a switch.
func LabeledBreak(counter *int) {
	go func() {
	loop:
		for {
			switch *counter {
			case 0:
				break loop
			default:
				*counter++
			}
		}
	}()
}

// Panics is observable: it crashes rather than silently leaking.
func Panics(counter *int) {
	go func() {
		for {
			if *counter < 0 {
				panic("negative")
			}
			*counter++
		}
	}()
}

// Sanctioned forever-goroutine, documented and ignored.
func Heartbeat(counter *int) {
	//tempest:ignore goroleak heartbeat is meant to live for the whole process
	go func() {
		for {
			*counter++
		}
	}()
}
