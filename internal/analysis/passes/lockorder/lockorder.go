// Package lockorder detects inconsistent lock-acquisition order across
// the whole program — the static shadow of lockcheck: where lockcheck
// proves annotated fields are accessed under their mutex, lockorder
// proves the mutexes themselves are always taken in one global order.
//
// The pass runs program-wide on the interprocedural substrate
// (internal/analysis/callgraph): every `mu.Lock()`/`RLock()` call site
// is resolved to a stable lock identity (the declaring struct field or
// package-level variable — the same names `// guarded by` annotations
// use), a linear scan of each function tracks which locks are held at
// each acquisition, and calls made while holding a lock pull in the
// callee's transitive acquire set through the call graph. The resulting
// acquired-while-holding graph is checked for cycles:
//
//   - A acquired while holding B in one place, B while holding A in
//     another ⇒ potential deadlock under concurrent execution;
//   - A acquired while already held (unless both acquisitions are
//     RLock) ⇒ potential self-deadlock.
//
// Limits, by design: the scan is flow-insensitive across branches
// (a lock taken in an if-arm is considered held for the statements
// after it until unlocked), goroutine and closure bodies are not
// scanned as part of the spawning function, and locks that cannot be
// named globally (locals, parameters) are ignored. Sanctioned nested
// acquisitions carry `//tempest:ignore lockorder <why>`.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"tempest/internal/analysis"
	"tempest/internal/analysis/callgraph"
)

// Analyzer implements the lockorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "mutexes must be acquired in a consistent global order; a cycle in the " +
		"acquired-while-holding graph is a potential deadlock",
	RunProgram: runProgram,
}

// lockRef is one acquisition: the lock's stable identity plus whether
// the acquisition is shared (RLock).
type lockRef struct {
	id     string // "pkgpath.Type.field" or "pkgpath.var"
	name   string // display form "pkg.Type.field"
	shared bool
}

// orderEdge records "to acquired while holding from" at pos.
type orderEdge struct {
	from, to lockRef
	pos      token.Pos
	// viaCall names the called function whose transitive acquires
	// produced the edge; empty for direct nested Lock calls.
	viaCall string
}

// heldCall records a function call made while holding locks.
type heldCall struct {
	held   []lockRef
	callee *callgraph.Node
	pos    token.Pos
}

func runProgram(pass *analysis.ProgramPass) error {
	g, err := callgraph.Build(pass.Prog.Pkgs, callgraph.Options{})
	if err != nil {
		return err
	}
	sc := &scanner{g: g, direct: map[*callgraph.Node][]lockRef{}}
	for _, pkg := range pass.Prog.Pkgs {
		sc.pkg = pkg
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				sc.node = g.NodeByObj(obj)
				sc.held = nil
				sc.stmts(fd.Body.List)
			}
		}
	}

	edges := sc.edges
	edges = append(edges, sc.callEdges()...)
	reportCycles(pass, edges)
	return nil
}

type scanner struct {
	g    *callgraph.Graph
	pkg  *analysis.Package
	node *callgraph.Node // nil for init oddities; summaries skipped then
	held []lockRef
	// direct collects every lock a function acquires anywhere in its
	// body (the per-function summary the call-graph propagation unions).
	direct map[*callgraph.Node][]lockRef
	// edges are direct acquired-while-holding observations.
	edges []orderEdge
	// calls are function calls made while holding at least one lock.
	calls []heldCall
}

// stmts walks a statement list linearly, tracking the held set.
func (s *scanner) stmts(list []ast.Stmt) {
	for _, st := range list {
		s.stmt(st)
	}
}

func (s *scanner) stmt(st ast.Stmt) {
	switch v := st.(type) {
	case nil:
	case *ast.BlockStmt:
		s.stmts(v.List)
	case *ast.LabeledStmt:
		s.stmt(v.Stmt)
	case *ast.IfStmt:
		s.stmt(v.Init)
		s.calls0(v.Cond)
		s.stmt(v.Body)
		s.stmt(v.Else)
	case *ast.ForStmt:
		s.stmt(v.Init)
		s.calls0(v.Cond)
		s.stmt(v.Body)
		s.stmt(v.Post)
	case *ast.RangeStmt:
		s.calls0(v.X)
		s.stmt(v.Body)
	case *ast.SwitchStmt:
		s.stmt(v.Init)
		s.calls0(v.Tag)
		s.stmt(v.Body)
	case *ast.TypeSwitchStmt:
		s.stmt(v.Init)
		s.stmt(v.Body)
	case *ast.SelectStmt:
		s.stmt(v.Body)
	case *ast.CaseClause:
		for _, e := range v.List {
			s.calls0(e)
		}
		s.stmts(v.Body)
	case *ast.CommClause:
		s.stmt(v.Comm)
		s.stmts(v.Body)
	case *ast.GoStmt:
		// The goroutine body runs later, under its own held set.
	case *ast.DeferStmt:
		// Deferred unlocks keep the lock held to function end — exactly
		// the model a linear scan already assumes — so mutex ops under
		// defer are not applied to the held set at all; deferred other
		// calls are treated as happening here (conservative).
		if s.isMutexOp(v.Call) {
			return
		}
		s.call(v.Call)
	default:
		s.calls0(st)
	}
}

// calls0 processes every call in a leaf statement or expression, in
// source order, outside any function literal.
func (s *scanner) calls0(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := c.(*ast.CallExpr); ok {
			if s.lockOp(call) {
				return true
			}
			s.call(call)
		}
		return true
	})
}

// isMutexOp reports whether the call is Lock/RLock/Unlock/RUnlock on a
// sync mutex, without touching the held set.
func (s *scanner) isMutexOp(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return isMutex(s.pkg.TypesInfo.Types[sel.X].Type)
	}
	return false
}

// lockOp handles a Lock/RLock/Unlock/RUnlock call, updating the held
// set; reports whether the call was one.
func (s *scanner) lockOp(call *ast.CallExpr) bool {
	if !s.isMutexOp(call) {
		return false
	}
	sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	method := sel.Sel.Name
	ref, ok := s.lockIdent(sel.X)
	if !ok {
		return true // a mutex op, but not a globally nameable lock
	}
	ref.shared = method == "RLock" || method == "RUnlock"
	switch method {
	case "Lock", "RLock":
		for _, h := range s.held {
			s.edges = append(s.edges, orderEdge{from: h, to: ref, pos: call.Pos()})
		}
		s.held = append(s.held, ref)
		if s.node != nil {
			s.direct[s.node] = append(s.direct[s.node], ref)
		}
	case "Unlock", "RUnlock":
		for i := len(s.held) - 1; i >= 0; i-- {
			if s.held[i].id == ref.id {
				s.held = append(s.held[:i], s.held[i+1:]...)
				break
			}
		}
	}
	return true
}

// call records a resolved function call made while holding locks.
func (s *scanner) call(call *ast.CallExpr) {
	if len(s.held) == 0 {
		return
	}
	var obj *types.Func
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj, _ = s.pkg.TypesInfo.Uses[f].(*types.Func)
	case *ast.SelectorExpr:
		if sl, ok := s.pkg.TypesInfo.Selections[f]; ok {
			obj, _ = sl.Obj().(*types.Func)
		} else {
			obj, _ = s.pkg.TypesInfo.Uses[f.Sel].(*types.Func)
		}
	}
	n := s.g.NodeByObj(obj)
	if n == nil {
		return
	}
	s.calls = append(s.calls, heldCall{held: append([]lockRef(nil), s.held...), callee: n, pos: call.Pos()})
}

// lockIdent derives the stable identity of the locked expression: a
// struct field ("pkgpath.Type.field") or a package-level variable
// ("pkgpath.var"). Locals and parameters return false.
func (s *scanner) lockIdent(x ast.Expr) (lockRef, bool) {
	switch v := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		sel, ok := s.pkg.TypesInfo.Selections[v]
		if !ok {
			// Qualified package-level var (pkg.mu).
			if obj, ok := s.pkg.TypesInfo.Uses[v.Sel].(*types.Var); ok && isGlobal(obj) {
				return globalRef(obj), true
			}
			return lockRef{}, false
		}
		field, ok := sel.Obj().(*types.Var)
		if !ok {
			return lockRef{}, false
		}
		recv := sel.Recv()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok {
			return lockRef{}, false
		}
		tn := named.Obj()
		pkgPath, pkgName := "", ""
		if tn.Pkg() != nil {
			pkgPath, pkgName = tn.Pkg().Path(), tn.Pkg().Name()
		}
		return lockRef{
			id:   pkgPath + "." + tn.Name() + "." + field.Name(),
			name: pkgName + "." + tn.Name() + "." + field.Name(),
		}, true
	case *ast.Ident:
		if obj, ok := s.pkg.TypesInfo.Uses[v].(*types.Var); ok && isGlobal(obj) {
			return globalRef(obj), true
		}
	}
	return lockRef{}, false
}

// isGlobal reports whether the variable is declared at package scope.
func isGlobal(obj *types.Var) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

func globalRef(obj *types.Var) lockRef {
	return lockRef{
		id:   obj.Pkg().Path() + "." + obj.Name(),
		name: obj.Pkg().Name() + "." + obj.Name(),
	}
}

// isMutex reports whether t is sync.Mutex or sync.RWMutex (or a pointer
// to one).
func isMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// callEdges expands calls-while-holding into order edges using each
// callee's transitive acquire set over the call graph. Closure edges are
// excluded: a literal usually runs on another goroutine or under caller
// control the linear scan cannot see.
func (s *scanner) callEdges() []orderEdge {
	// Fixpoint: acq[n] = direct locks ∪ acquires of statically called fns.
	acq := map[*callgraph.Node]map[string]lockRef{}
	for n, refs := range s.direct {
		m := map[string]lockRef{}
		for _, r := range refs {
			m[r.id] = r
		}
		acq[n] = m
	}
	for changed, iter := true, 0; changed && iter < 64; iter++ {
		changed = false
		for _, n := range s.g.Nodes {
			for _, e := range n.Out {
				if e.Kind != callgraph.EdgeStatic && e.Kind != callgraph.EdgeDevirt {
					continue
				}
				for id, r := range acq[e.Callee] {
					if _, ok := acq[n][id]; !ok {
						if acq[n] == nil {
							acq[n] = map[string]lockRef{}
						}
						acq[n][id] = r
						changed = true
					}
				}
			}
		}
	}
	var out []orderEdge
	for _, hc := range s.calls {
		ids := make([]string, 0, len(acq[hc.callee]))
		for id := range acq[hc.callee] {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			to := acq[hc.callee][id]
			to.shared = false // mode unknown through a call: assume exclusive
			for _, h := range hc.held {
				out = append(out, orderEdge{from: h, to: to, pos: hc.pos, viaCall: hc.callee.Sym})
			}
		}
	}
	return out
}

// reportCycles finds self-edges and two-way (or longer) cycles in the
// acquired-while-holding graph and reports each offending acquisition.
func reportCycles(pass *analysis.ProgramPass, edges []orderEdge) {
	adj := map[string]map[string]bool{}
	for _, e := range edges {
		if e.from.id == e.to.id {
			continue
		}
		if adj[e.from.id] == nil {
			adj[e.from.id] = map[string]bool{}
		}
		adj[e.from.id][e.to.id] = true
	}
	reaches := func(from, to string) bool {
		seen := map[string]bool{from: true}
		queue := []string{from}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			if cur == to {
				return true
			}
			for next := range adj[cur] {
				if !seen[next] {
					seen[next] = true
					queue = append(queue, next)
				}
			}
		}
		return false
	}

	seen := map[string]bool{}
	for _, e := range edges {
		if e.from.id == e.to.id {
			if e.from.shared && e.to.shared {
				continue // RLock under RLock: shared, legal
			}
			key := fmt.Sprintf("self|%d|%s", e.pos, e.from.id)
			if seen[key] {
				continue
			}
			seen[key] = true
			via := ""
			if e.viaCall != "" {
				via = fmt.Sprintf(" (through call to %s)", e.viaCall)
			}
			pass.Reportf(e.pos, "%s acquired while already held%s — potential self-deadlock", e.to.name, via)
			continue
		}
		if !reaches(e.to.id, e.from.id) {
			continue
		}
		key := fmt.Sprintf("cycle|%d|%s|%s", e.pos, e.from.id, e.to.id)
		if seen[key] {
			continue
		}
		seen[key] = true
		via := ""
		if e.viaCall != "" {
			via = fmt.Sprintf(" through call to %s", e.viaCall)
		}
		pass.Reportf(e.pos, "%s acquired%s while holding %s, but elsewhere the order is reversed — potential deadlock cycle",
			e.to.name, via, e.from.name)
	}
}
