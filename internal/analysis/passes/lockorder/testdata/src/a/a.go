// Package a seeds lock-ordering violations for the lockorder pass.
package a

import "sync"

// Registry and Journal hold the two struct-field locks the cycle runs
// through.
type Registry struct {
	mu    sync.Mutex
	items map[string]int
}

type Journal struct {
	mu      sync.RWMutex
	entries []string
}

// Consistent order: Registry.mu then Journal.mu — the baseline the
// reversed functions below conflict with.
func MoveEntry(r *Registry, j *Journal, k string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j.mu.Lock() // want `a\.Journal\.mu acquired while holding a\.Registry\.mu.*potential deadlock cycle`
	defer j.mu.Unlock()
	r.items[k] = len(j.entries)
}

// Reversed order: Journal.mu then Registry.mu — with MoveEntry above,
// a cycle.
func Reindex(r *Registry, j *Journal) {
	j.mu.Lock()
	defer j.mu.Unlock()
	r.mu.Lock() // want `a\.Registry\.mu acquired while holding a\.Journal\.mu.*potential deadlock cycle`
	defer r.mu.Unlock()
	for k := range r.items {
		j.entries = append(j.entries, k)
	}
}

// Sequential acquisition — Unlock before the next Lock — orders nothing
// and must stay silent.
func Sequential(r *Registry, j *Journal) {
	j.mu.Lock()
	j.mu.Unlock()
	r.mu.Lock()
	r.mu.Unlock()
}

// Self-deadlock: re-acquiring an exclusive lock already held.
func Recount(r *Registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mu.Lock() // want `a\.Registry\.mu acquired while already held.*self-deadlock`
	defer r.mu.Unlock()
}

// Nested RLock is shared: many readers may hold it at once.
func Snapshot(j *Journal) int {
	j.mu.RLock()
	defer j.mu.RUnlock()
	j.mu.RLock()
	defer j.mu.RUnlock()
	return len(j.entries)
}

// Indirect cycle: Flush locks Journal.mu and then calls appendItem,
// which locks Registry.mu — the transitive edge Journal.mu →
// Registry.mu conflicts with MoveEntry's direct order.
func Flush(r *Registry, j *Journal) {
	j.mu.Lock()
	defer j.mu.Unlock()
	appendItem(r, "flushed") // want `a\.Registry\.mu acquired through call to a\.appendItem while holding a\.Journal\.mu`
}

func appendItem(r *Registry, k string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.items[k]++
}

// globalMu orders against struct locks the same way.
var globalMu sync.Mutex

func Audit(r *Registry) {
	globalMu.Lock()
	defer globalMu.Unlock()
	r.mu.Lock() // want `a\.Registry\.mu acquired while holding a\.globalMu.*potential deadlock cycle`
	defer r.mu.Unlock()
}

func Rebalance(r *Registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	globalMu.Lock() // want `a\.globalMu acquired while holding a\.Registry\.mu.*potential deadlock cycle`
	defer globalMu.Unlock()
}

// A goroutine body is a separate execution: the spawned Lock below is
// not "while holding" and must stay silent.
func Background(r *Registry, j *Journal) {
	r.mu.Lock()
	defer r.mu.Unlock()
	go func() {
		j.mu.Lock()
		defer j.mu.Unlock()
	}()
}

// Sanctioned nested acquisition, documented and ignored.
func Promote(r *Registry, j *Journal) {
	j.mu.Lock()
	defer j.mu.Unlock()
	//tempest:ignore lockorder promotion is only called from MoveEntry's test with private copies
	r.mu.Lock()
	defer r.mu.Unlock()
}
