package lockorder_test

import (
	"testing"

	"tempest/internal/analysis/analysistest"
	"tempest/internal/analysis/passes/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "a")
}
