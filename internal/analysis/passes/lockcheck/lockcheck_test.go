package lockcheck_test

import (
	"testing"

	"tempest/internal/analysis/analysistest"
	"tempest/internal/analysis/passes/lockcheck"
)

func TestLockCheck(t *testing.T) {
	analysistest.Run(t, lockcheck.Analyzer, "a")
}
