// Fixture for the lockcheck pass.
package a

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
	ok int
}

type gauge struct {
	rw sync.RWMutex
	// guarded by rw
	v float64
}

func (c *counter) bad() int {
	return c.n // want `guarded by mu`
}

func (c *counter) badWrite(x int) {
	c.n = x // want `guarded by mu`
}

func (c *counter) good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) unguardedField() int {
	return c.ok
}

// The *Locked suffix promises the caller holds the lock.
func (c *counter) incLocked() {
	c.n++
}

// Construction happens before the value is shared.
func newCounter(start int) *counter {
	return &counter{n: start}
}

func (g *gauge) read() float64 {
	g.rw.RLock()
	defer g.rw.RUnlock()
	return g.v
}

func (g *gauge) race() float64 {
	return g.v // want `guarded by rw`
}

// Locking a different object of the same type does not count.
func transfer(a, b *counter) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n += b.n // want `guarded by mu`
}

func (c *counter) suppressed() int {
	// Approximate reads are fine here by design.
	return c.n //tempest:ignore lockcheck
}
