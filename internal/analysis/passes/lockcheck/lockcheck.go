// Package lockcheck enforces documented lock discipline. A struct field
// annotated `// guarded by <mu>` may only be touched inside functions
// that visibly acquire that mutex on the same object (x.mu.Lock() or
// x.mu.RLock() for a field accessed as x.field). The check is
// deliberately function-local and flow-insensitive — it proves the lock
// was *taken somewhere in the function*, not that it is held at the
// access — but that is exactly the class of mistake that survives review:
// a new method reading a shared field with no locking at all.
//
// Conventions honoured:
//   - composite-literal writes (construction, before the value escapes)
//     are exempt;
//   - functions whose name ends in "Locked" are exempt (the caller-holds-
//     the-lock idiom);
//   - intentional lock-free reads carry //tempest:ignore lockcheck.
package lockcheck

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"tempest/internal/analysis"
)

// Analyzer implements the lockcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc: "fields documented with `// guarded by <mu>` must only be accessed in functions " +
		"that lock <mu> on the same object (or are named *Locked)",
	Run: run,
}

// guardedRe extracts the mutex name from a field comment.
var guardedRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_.]*)`)

func run(pass *analysis.Pass) error {
	guarded := collectGuarded(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			checkFunc(pass, fd, guarded)
		}
	}
	return nil
}

// collectGuarded maps each annotated field object to its mutex path.
func collectGuarded(pass *analysis.Pass) map[types.Object]string {
	out := map[types.Object]string{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardComment(field.Doc)
				if mu == "" {
					mu = guardComment(field.Comment)
				}
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						out[obj] = mu
					}
				}
			}
			return true
		})
	}
	return out
}

func guardComment(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
		return m[1]
	}
	return ""
}

// checkFunc reports guarded-field accesses in fd that lack a matching
// Lock call in the same function body.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, guarded map[types.Object]string) {
	// locks collects every "<base>.<path>.Lock/RLock()" call, keyed by
	// the full locked expression ("l.mu", "c.state.mu").
	locks := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		locks[analysis.ExprString(sel.X)] = true
		return true
	})

	// inLiteral tracks composite-literal nesting during the walk.
	var visit func(n ast.Node, inLiteral bool)
	visit = func(n ast.Node, inLiteral bool) {
		switch v := n.(type) {
		case nil:
			return
		case *ast.CompositeLit:
			inLiteral = true
		case *ast.FuncLit:
			// A nested closure re-enters non-literal context.
			inLiteral = false
		case *ast.SelectorExpr:
			checkAccess(pass, v, guarded, locks, inLiteral)
		}
		children(n, func(c ast.Node) { visit(c, inLiteral) })
	}
	visit(fd.Body, false)
}

// checkAccess validates one x.field selector.
func checkAccess(pass *analysis.Pass, sel *ast.SelectorExpr, guarded map[types.Object]string, locks map[string]bool, inLiteral bool) {
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil {
		return
	}
	mu, ok := guarded[obj]
	if !ok || inLiteral {
		return
	}
	base := analysis.ExprString(sel.X)
	want := base + "." + mu
	if locks[want] {
		return
	}
	pass.Reportf(sel.Pos(), "%s.%s is guarded by %s, but this function never calls %s.Lock or %s.RLock (rename it *Locked if the caller holds the lock)",
		base, sel.Sel.Name, mu, want, want)
}

// children invokes fn for each immediate child node of n.
func children(n ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			fn(c)
		}
		return false
	})
}
