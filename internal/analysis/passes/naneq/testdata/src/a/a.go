// Fixture for the naneq pass: the ReadAll NaN contract's comparison
// rules.
package a

import "math"

func eqNaN(x float64) bool {
	return x == math.NaN() // want `always false`
}

func neqNaN(x float64) bool {
	return x != math.NaN() // want `always true`
}

func selfNeq(x float64) bool {
	return x != x // want `hidden NaN probe`
}

func selfEq(readings []float64) bool {
	return readings[0] == readings[0] // want `hidden NaN probe`
}

func ok(x float64) bool {
	return math.IsNaN(x)
}

// Integer self-comparison is pointless but not a NaN bug.
func okInt(n int) bool {
	return n == n
}

// Two calls of the same function may legitimately differ.
func okCalls(f func() float64) bool {
	return f() == f()
}

func suppressed(x float64) bool {
	return x != x //tempest:ignore naneq
}
