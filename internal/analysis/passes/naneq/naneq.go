// Package naneq enforces the sensor NaN contract's comparison rules.
// Registry.ReadAll reports failed sensor slots as NaN rather than an
// error, so downstream code is full of float comparisons against values
// that are NaN by design. Two comparison shapes are always wrong:
//
//   - x == math.NaN() / x != math.NaN(): NaN compares unequal to
//     everything including itself, so the expression is constant.
//   - x == x / x != x on floats: a disguised (and easily inverted) NaN
//     probe; math.IsNaN says what is meant.
package naneq

import (
	"go/ast"
	"go/token"
	"go/types"

	"tempest/internal/analysis"
)

// Analyzer implements the naneq pass.
var Analyzer = &analysis.Analyzer{
	Name: "naneq",
	Doc: "flag comparisons against math.NaN() (always false/true) and floating-point " +
		"self-comparison: the sensor ReadAll NaN contract requires math.IsNaN",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
				return true
			}
			if isNaNCall(pass, cmp.X) || isNaNCall(pass, cmp.Y) {
				result := "false"
				if cmp.Op == token.NEQ {
					result = "true"
				}
				pass.Reportf(cmp.Pos(), "comparison with math.NaN() is always %s; use math.IsNaN", result)
				return true
			}
			if isFloat(pass, cmp.X) && analysis.ExprString(cmp.X) == analysis.ExprString(cmp.Y) && !hasCall(cmp.X) {
				pass.Reportf(cmp.Pos(), "floating-point self-comparison %s %s %s is a hidden NaN probe; use math.IsNaN",
					analysis.ExprString(cmp.X), cmp.Op, analysis.ExprString(cmp.Y))
			}
			return true
		})
	}
	return nil
}

// isNaNCall reports whether e is a direct call of math.NaN.
func isNaNCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "math" && obj.Name() == "NaN"
}

// isFloat reports whether e has floating-point type.
func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// hasCall reports whether e contains any call — two calls of the same
// function may legitimately differ, so self-comparison only fires on
// pure variable/selector/index expressions.
func hasCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
			return false
		}
		return true
	})
	return found
}
