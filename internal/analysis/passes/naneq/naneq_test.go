package naneq_test

import (
	"testing"

	"tempest/internal/analysis/analysistest"
	"tempest/internal/analysis/passes/naneq"
)

func TestNaNEq(t *testing.T) {
	analysistest.Run(t, naneq.Analyzer, "a")
}
