// Package enterexit checks that manual Lane instrumentation is balanced.
// The tracer keeps a shadow call stack per lane; an Enter without a
// matching Exit (or with a different function id) corrupts that stack at
// runtime and surfaces far away, as ErrStackMismatch from some innocent
// callee or as a function that never closes in the profile. This pass
// moves the check to compile time: inside one function, every
// Lane.Enter/EnterAt/EnterBlock must be paired with an
// Exit/ExitAt/ExitBlock carrying the same id expression on the same
// lane, either directly or through defer. Lane.Instrument and
// Lane.InstrumentBlock are self-balancing and always fine.
package enterexit

import (
	"go/ast"
	"go/token"

	"tempest/internal/analysis"
)

// tracePkg is the package (suffix) defining Lane.
const tracePkg = "internal/trace"

// Analyzer implements the enterexit pass.
var Analyzer = &analysis.Analyzer{
	Name: "enterexit",
	Doc: "every trace.Lane.Enter(fid) must be matched in the same function by an Exit(fid) " +
		"(directly or via defer) on the same lane; mismatched or missing ids corrupt the shadow stack",
	Run: run,
}

// site is one Enter or Exit call, keyed for matching.
type site struct {
	pos  token.Pos
	call string // method name, for diagnostics
	recv string // lane expression
	arg  string // function-id expression ("" when uncapturable)
}

func (s site) key() string { return s.recv + "\x00" + s.arg }

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkScope(pass, fd.Body)
			}
		}
	}
	return nil
}

// checkScope analyses one balanced-instrumentation scope: a function
// body, with deferred closures folded in (the canonical
// `defer func() { _ = lane.Exit(fid) }()` shape) and all other function
// literals — goroutine bodies, callbacks — checked as scopes of their
// own, since they run on their own lane discipline.
func checkScope(pass *analysis.Pass, body *ast.BlockStmt) {
	var enters, exits []site
	folded := map[*ast.FuncLit]bool{}
	handled := map[*ast.CallExpr]bool{}

	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.DeferStmt:
			if fl, ok := v.Call.Fun.(*ast.FuncLit); ok {
				folded[fl] = true
			}
		case *ast.FuncLit:
			if folded[v] {
				return true
			}
			checkScope(pass, v.Body)
			return false
		case *ast.AssignStmt:
			// fid := lane.EnterBlock(name, block): the captured variable
			// becomes the id expression Exit must use.
			if len(v.Rhs) == 1 && len(v.Lhs) == 1 {
				if call, ok := v.Rhs[0].(*ast.CallExpr); ok {
					if s, ok := laneCall(pass, call); ok && s.call == "EnterBlock" {
						s.arg = analysis.ExprString(v.Lhs[0])
						enters = append(enters, s)
						handled[call] = true
					}
				}
			}
		case *ast.CallExpr:
			if handled[v] {
				return true
			}
			s, ok := laneCall(pass, v)
			if !ok {
				return true
			}
			switch s.call {
			case "Enter", "EnterAt":
				enters = append(enters, s)
			case "EnterBlock":
				// Result discarded: nothing can exit this block id.
				pass.Reportf(s.pos, "result of Lane.EnterBlock is discarded; capture the id and Exit it, or use InstrumentBlock")
			case "Exit", "ExitAt", "ExitBlock":
				exits = append(exits, s)
			}
		}
		return true
	})

	enterKeys := map[string]bool{}
	for _, e := range enters {
		enterKeys[e.key()] = true
	}
	exitKeys := map[string]bool{}
	for _, e := range exits {
		exitKeys[e.key()] = true
	}
	for _, e := range enters {
		if !exitKeys[e.key()] {
			pass.Reportf(e.pos, "%s.%s(%s) is not matched by an Exit(%s) on %s in this function; defer the Exit or use InstrumentBlock",
				e.recv, e.call, e.arg, e.arg, e.recv)
		}
	}
	// Exit-only functions (helpers handed an already-entered lane) are
	// legitimate; mismatched ids inside an entering function are not.
	if len(enters) == 0 {
		return
	}
	for _, e := range exits {
		if !enterKeys[e.key()] {
			pass.Reportf(e.pos, "%s.%s(%s) exits an id this function never entered (entered ids have different expressions)",
				e.recv, e.call, e.arg)
		}
	}
}

// laneCall classifies call as a Lane Enter/Exit-family method call.
func laneCall(pass *analysis.Pass, call *ast.CallExpr) (site, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return site{}, false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil {
		return site{}, false
	}
	name := obj.Name()
	switch name {
	case "Enter", "EnterAt", "EnterBlock", "Exit", "ExitAt", "ExitBlock":
	default:
		return site{}, false
	}
	if !analysis.IsMethodOn(obj, tracePkg, "Lane", name) {
		return site{}, false
	}
	s := site{pos: call.Pos(), call: name, recv: analysis.ExprString(sel.X)}
	switch name {
	case "Enter", "EnterAt", "Exit", "ExitAt", "ExitBlock":
		if len(call.Args) > 0 {
			s.arg = analysis.ExprString(call.Args[0])
		}
	}
	return s, true
}
