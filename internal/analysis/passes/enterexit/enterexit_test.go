package enterexit_test

import (
	"testing"

	"tempest/internal/analysis/analysistest"
	"tempest/internal/analysis/passes/enterexit"
)

func TestEnterExit(t *testing.T) {
	analysistest.Run(t, enterexit.Analyzer, "a")
}
