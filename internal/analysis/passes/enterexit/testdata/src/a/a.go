// Fixture for the enterexit pass: seeded violations against the real
// trace.Lane type.
package a

import "tempest/internal/trace"

func missingExit(l *trace.Lane, fid uint32) {
	l.Enter(fid) // want `not matched by an Exit`
	work()
}

func deferredClosure(l *trace.Lane, fid uint32) {
	l.Enter(fid)
	defer func() { _ = l.Exit(fid) }()
	work()
}

func deferredCall(l *trace.Lane, fid uint32) {
	l.Enter(fid)
	defer l.Exit(fid)
	work()
}

func straightLine(l *trace.Lane, fid uint32) {
	l.Enter(fid)
	work()
	_ = l.Exit(fid)
}

func mismatchedIDs(l *trace.Lane, a, b uint32) {
	l.Enter(a) // want `not matched by an Exit`
	work()
	_ = l.Exit(b) // want `exits an id this function never entered`
}

func discardedBlock(l *trace.Lane) {
	l.EnterBlock("f", 1) // want `result of Lane.EnterBlock is discarded`
	work()
}

func blockPair(l *trace.Lane) {
	fid := l.EnterBlock("f", 1)
	defer l.ExitBlock(fid)
	work()
}

// exitOnlyHelper closes a frame its caller opened: legal.
func exitOnlyHelper(l *trace.Lane, fid uint32) {
	work()
	_ = l.Exit(fid)
}

// goroutineScope: the closure is its own instrumentation scope.
func goroutineScope(l *trace.Lane, fid uint32) {
	go func() {
		l.Enter(fid) // want `not matched by an Exit`
		work()
	}()
}

// selfBalancing APIs need no pairing.
func selfBalancing(l *trace.Lane) {
	_ = l.Instrument("f", work)
	_ = l.InstrumentBlock("f", 2, work)
}

// suppressed demonstrates the escape hatch for intentional half-pairs.
func suppressed(l *trace.Lane, fid uint32) {
	l.Enter(fid) //tempest:ignore enterexit
	work()
}

func work() {}
