// Package wallclock forbids wall-clock reads inside the virtual-time
// packages. The simulated cluster's whole guarantee — byte-identical
// runs for equal seeds — rests on every timestamp flowing from a
// vclock.Clock; a stray time.Now or time.Sleep silently reintroduces
// host-machine nondeterminism that only shows up as flaky golden tests.
package wallclock

import (
	"go/ast"

	"tempest/internal/analysis"
)

// targets are the packages that must stay on virtual time.
var targets = []string{"internal/cluster", "internal/vclock", "internal/thermal"}

// banned is the set of time-package functions that read or wait on the
// wall clock. Pure-value helpers (time.Duration arithmetic,
// time.Unix construction) remain allowed.
var banned = map[string]string{
	"Now":       "read the wall clock",
	"Since":     "read the wall clock",
	"Until":     "read the wall clock",
	"Sleep":     "block on the wall clock",
	"After":     "block on the wall clock",
	"Tick":      "tick on the wall clock",
	"NewTicker": "tick on the wall clock",
	"NewTimer":  "tick on the wall clock",
	"AfterFunc": "schedule on the wall clock",
}

// Analyzer implements the wallclock pass.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/Since/Sleep and friends in virtual-time packages " +
		"(internal/cluster, internal/vclock, internal/thermal): simulated runs must be deterministic",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathMatches(pass.Pkg.Path(), targets) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			verb, isBanned := banned[obj.Name()]
			if !isBanned {
				return true
			}
			pass.Reportf(sel.Pos(), "time.%s would %s inside virtual-time package %s; use a vclock.Clock",
				obj.Name(), verb, pass.Pkg.Name())
			return true
		})
	}
	return nil
}
