// Package wallclock forbids wall-clock reads inside the virtual-time
// packages. The simulated cluster's whole guarantee — byte-identical
// runs for equal seeds — rests on every timestamp flowing from a
// vclock.Clock; a stray time.Now or time.Sleep silently reintroduces
// host-machine nondeterminism that only shows up as flaky golden tests.
//
// The check resolves through the type checker, not syntax: qualified
// calls (time.Now), dot-imported calls (Now after `import . "time"`)
// and re-arming methods on timer values ((*time.Timer).Reset,
// (*time.Ticker).Reset) are all caught.
package wallclock

import (
	"go/ast"
	"go/types"

	"tempest/internal/analysis"
)

// targets are the packages that must stay on virtual time.
var targets = []string{"internal/cluster", "internal/vclock", "internal/thermal"}

// banned is the set of time-package functions that read or wait on the
// wall clock. Pure-value helpers (time.Duration arithmetic,
// time.Unix construction) remain allowed.
var banned = map[string]string{
	"Now":       "read the wall clock",
	"Since":     "read the wall clock",
	"Until":     "read the wall clock",
	"Sleep":     "block on the wall clock",
	"After":     "block on the wall clock",
	"Tick":      "tick on the wall clock",
	"NewTicker": "tick on the wall clock",
	"NewTimer":  "tick on the wall clock",
	"AfterFunc": "schedule on the wall clock",
}

// bannedMethods are wall-clock methods on time types, keyed
// "Recv.Method". Stop is allowed: halting a timer reads nothing.
var bannedMethods = map[string]string{
	"Timer.Reset":  "re-arm a wall-clock timer",
	"Ticker.Reset": "re-arm a wall-clock ticker",
}

// Analyzer implements the wallclock pass.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/Since/Sleep and friends (including dot-imported forms and Timer/Ticker.Reset) " +
		"in virtual-time packages (internal/cluster, internal/vclock, internal/thermal): simulated runs must be deterministic",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathMatches(pass.Pkg.Path(), targets) {
		return nil
	}
	for _, f := range pass.Files {
		// Selector uses are reported at the SelectorExpr; their Sel
		// idents are remembered so the ident case below doesn't report
		// the same use twice.
		asSel := map[*ast.Ident]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			var id *ast.Ident
			switch v := n.(type) {
			case *ast.SelectorExpr:
				asSel[v.Sel] = true
				id = v.Sel
			case *ast.Ident:
				if asSel[v] {
					return true
				}
				id = v // dot-imported uses resolve through bare idents
			default:
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				return true
			}
			if recv := sig.Recv(); recv != nil {
				key := recvTypeName(recv.Type()) + "." + fn.Name()
				if verb, isBanned := bannedMethods[key]; isBanned {
					pass.Reportf(id.Pos(), "time.%s would %s inside virtual-time package %s; use a vclock.Clock",
						key, verb, pass.Pkg.Name())
				}
				return true
			}
			if verb, isBanned := banned[fn.Name()]; isBanned {
				pass.Reportf(id.Pos(), "time.%s would %s inside virtual-time package %s; use a vclock.Clock",
					fn.Name(), verb, pass.Pkg.Name())
			}
			return true
		})
	}
	return nil
}

// recvTypeName names a method receiver's base type ("Timer" for
// *time.Timer).
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
