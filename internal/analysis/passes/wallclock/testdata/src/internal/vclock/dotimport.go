// Dot-imported time hides the package qualifier; the pass must resolve
// bare identifiers through the type checker to catch these.
package vclock

import . "time"

func badDotNow() Time {
	return Now() // want `time.Now would read the wall clock`
}

func badDotSleep() {
	Sleep(Millisecond) // want `time.Sleep would block on the wall clock`
}
