// Fixture standing in for a virtual-time package (its import path
// suffix-matches the wallclock target list).
package vclock

import "time"

func bad() int64 {
	return time.Now().UnixNano() // want `time.Now would read the wall clock`
}

func badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since would read the wall clock`
}

func badSleep() {
	time.Sleep(time.Millisecond) // want `time.Sleep would block on the wall clock`
}

func badTicker() *time.Ticker {
	return time.NewTicker(time.Second) // want `time.NewTicker would tick on the wall clock`
}

func badTimer() *time.Timer {
	return time.NewTimer(time.Second) // want `time.NewTimer would tick on the wall clock`
}

func badAfter() <-chan time.Time {
	return time.After(time.Second) // want `time.After would block on the wall clock`
}

func badTick() <-chan time.Time {
	return time.Tick(time.Second) // want `time.Tick would tick on the wall clock`
}

func badAfterFunc(f func()) *time.Timer {
	return time.AfterFunc(time.Second, f) // want `time.AfterFunc would schedule on the wall clock`
}

// Re-arming an existing timer or ticker is as much a wall-clock wait as
// creating one; Stop stays legal (it reads nothing).
func badReset(tm *time.Timer, tk *time.Ticker) {
	tm.Reset(time.Second) // want `time.Timer.Reset would re-arm a wall-clock timer`
	tk.Reset(time.Second) // want `time.Ticker.Reset would re-arm a wall-clock ticker`
	tm.Stop()
	tk.Stop()
}

// Pure duration arithmetic and formatting stay legal.
func ok(d time.Duration) string {
	return (3 * d).String()
}

// sanctioned is the documented escape hatch.
func sanctioned() time.Time {
	//tempest:ignore wallclock
	return time.Now()
}
