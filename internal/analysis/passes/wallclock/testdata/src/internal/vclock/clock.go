// Fixture standing in for a virtual-time package (its import path
// suffix-matches the wallclock target list).
package vclock

import "time"

func bad() int64 {
	return time.Now().UnixNano() // want `time.Now would read the wall clock`
}

func badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since would read the wall clock`
}

func badSleep() {
	time.Sleep(time.Millisecond) // want `time.Sleep would block on the wall clock`
}

func badTicker() *time.Ticker {
	return time.NewTicker(time.Second) // want `time.NewTicker would tick on the wall clock`
}

// Pure duration arithmetic and formatting stay legal.
func ok(d time.Duration) string {
	return (3 * d).String()
}

// sanctioned is the documented escape hatch.
func sanctioned() time.Time {
	//tempest:ignore wallclock
	return time.Now()
}
