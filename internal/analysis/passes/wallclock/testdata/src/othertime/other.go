// Fixture outside the virtual-time target list: wall-clock use is fine.
package othertime

import "time"

func polling() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now()
}
