package wallclock_test

import (
	"testing"

	"tempest/internal/analysis/analysistest"
	"tempest/internal/analysis/passes/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, wallclock.Analyzer, "internal/vclock", "othertime")
}
