// Fixture standing in for the MPI TCP transport: frames need a sequence
// number for resend dedup, but TCP already guarantees integrity, so no
// checksum is demanded.
package mpi

import (
	"encoding/binary"
	"io"
)

func sendGood(w io.Writer, seq uint64, tag int64, data []byte) error {
	frame := make([]byte, 20+len(data))
	binary.LittleEndian.PutUint64(frame[0:8], uint64(tag))
	binary.LittleEndian.PutUint64(frame[8:16], seq)
	binary.LittleEndian.PutUint32(frame[16:20], uint32(len(data)))
	copy(frame[20:], data)
	_, err := w.Write(frame)
	return err
}

func sendNoSeq(w io.Writer, tag int64, data []byte) error {
	frame := make([]byte, 12+len(data))
	binary.LittleEndian.PutUint64(frame[0:8], uint64(tag))
	binary.LittleEndian.PutUint32(frame[8:12], uint32(len(data)))
	copy(frame[12:], data)
	_, err := w.Write(frame) // want `without a sequence number`
	return err
}
