// Fixture standing in for the collector wire protocol: frame builders
// here must set both a sequence number and a payload checksum.
package collect

import (
	"encoding/binary"
	"hash/crc32"
	"io"
)

func writeGood(w io.Writer, seq uint64, payload []byte) error {
	frame := make([]byte, 16+len(payload))
	binary.LittleEndian.PutUint64(frame[0:8], seq)
	binary.LittleEndian.PutUint32(frame[8:12], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[12:16], crc32.ChecksumIEEE(payload))
	copy(frame[16:], payload)
	_, err := w.Write(frame)
	return err
}

func writeGoodViaVar(w io.Writer, nextSeq uint64, payload []byte) error {
	sum := crc32.ChecksumIEEE(payload)
	frame := make([]byte, 16+len(payload))
	binary.LittleEndian.PutUint64(frame[0:8], nextSeq)
	binary.LittleEndian.PutUint32(frame[8:12], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[12:16], sum)
	copy(frame[16:], payload)
	_, err := w.Write(frame)
	return err
}

func writeNoSeq(w io.Writer, payload []byte) error {
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	_, err := w.Write(frame) // want `without a sequence number`
	return err
}

func writeNoCRC(w io.Writer, seq uint64, payload []byte) error {
	frame := make([]byte, 12+len(payload))
	binary.LittleEndian.PutUint64(frame[0:8], seq)
	binary.LittleEndian.PutUint32(frame[8:12], uint32(len(payload)))
	copy(frame[12:], payload)
	_, err := w.Write(frame) // want `without a checksum`
	return err
}

func writeCRCDropped(w io.Writer, seq uint64, payload []byte) error {
	sum := crc32.ChecksumIEEE(payload)
	_ = sum
	frame := make([]byte, 12+len(payload))
	binary.LittleEndian.PutUint64(frame[0:8], seq)
	binary.LittleEndian.PutUint32(frame[8:12], uint32(len(payload)))
	copy(frame[12:], payload)
	_, err := w.Write(frame) // want `computed but never stored`
	return err
}

// Control-frame builder: the directive revision plays the sequence
// role on the downstream channel, so "rev" satisfies the pass.
func writeControlGood(w io.Writer, rev uint64, payload []byte) error {
	frame := make([]byte, 17+len(payload))
	frame[0] = 1
	binary.LittleEndian.PutUint64(frame[1:9], rev)
	binary.LittleEndian.PutUint32(frame[9:13], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[13:17], crc32.ChecksumIEEE(payload))
	copy(frame[17:], payload)
	_, err := w.Write(frame)
	return err
}

// Not a frame builder: plain payload write, no header stores.
func passthrough(w io.Writer, payload []byte) error {
	buf := make([]byte, len(payload))
	copy(buf, payload)
	_, err := w.Write(buf)
	return err
}
