// Package seqwire checks the wire-frame builders of the collector and
// MPI transports. Both protocols rely on every frame carrying its
// sequence number (dedup/reorder after reconnect) and — for the
// collector protocol — a CRC32 of the payload (corruption rejection).
// A frame builder is recognised structurally: a function that makes a
// local []byte, stores header fields into it with binary.*.PutUint*,
// and Writes that same buffer. For such functions the pass requires,
// before the first Write:
//
//   - a PutUint64 whose value involves a sequence counter (an
//     identifier containing "seq", or "rev" for control frames — policy
//     directive revisions play the sequence role on the downstream
//     channel), and
//   - in internal/collect, a PutUint32 of a crc32 checksum; a computed
//     checksum that never reaches the buffer is also flagged.
package seqwire

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tempest/internal/analysis"
)

// targets are the wire-protocol packages.
var targets = []string{"internal/collect", "internal/mpi"}

// crcTargets additionally require a checksum field.
var crcTargets = []string{"internal/collect"}

// Analyzer implements the seqwire pass.
var Analyzer = &analysis.Analyzer{
	Name: "seqwire",
	Doc: "collect/mpi frame builders must store the sequence number (and, in collect, the " +
		"payload checksum) into the frame before writing it",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathMatches(pass.Pkg.Path(), targets) {
		return nil
	}
	needCRC := analysis.PathMatches(pass.Pkg.Path(), crcTargets)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBuilder(pass, fd, needCRC)
		}
	}
	return nil
}

func checkBuilder(pass *analysis.Pass, fd *ast.FuncDecl, needCRC bool) {
	// Buffers created locally with make([]byte, …).
	buffers := map[types.Object]bool{}
	// Identifiers assigned from crc32.* calls ("sum := crc32.ChecksumIEEE(p)").
	crcVars := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				continue
			}
			if isMakeByteSlice(pass, rhs) {
				buffers[obj] = true
			}
			if callsCRC(pass, rhs) {
				crcVars[obj] = true
			}
		}
		return true
	})
	if len(buffers) == 0 {
		return
	}

	type put struct {
		pos   token.Pos
		bits  string // "PutUint32", "PutUint64", …
		value ast.Expr
	}
	var puts []put
	var firstWrite *ast.CallExpr
	var crcCallPos token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callsCRC(pass, call) && crcCallPos == token.NoPos {
			crcCallPos = call.Pos()
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch {
		case strings.HasPrefix(sel.Sel.Name, "PutUint") && len(call.Args) == 2:
			if bufferArg(pass, call.Args[0], buffers) {
				puts = append(puts, put{pos: call.Pos(), bits: sel.Sel.Name, value: call.Args[1]})
			}
		case sel.Sel.Name == "Write" && len(call.Args) == 1:
			if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil && buffers[obj] && firstWrite == nil {
					firstWrite = call
				}
			}
		}
		return true
	})
	if firstWrite == nil || len(puts) == 0 {
		return // not a frame builder
	}

	hasSeq := false
	hasCRCPut := false
	for _, p := range puts {
		if p.pos >= firstWrite.Pos() {
			continue // header stored after the frame already left
		}
		if p.bits == "PutUint64" && mentionsSeq(p.value) {
			hasSeq = true
		}
		if callsCRC(pass, p.value) || mentionsObj(pass, p.value, crcVars) {
			hasCRCPut = true
		}
	}
	if !hasSeq {
		pass.Reportf(firstWrite.Pos(), "frame written without a sequence number: no binary PutUint64 of a seq counter into the frame buffer before Write")
	}
	if needCRC && !hasCRCPut {
		if crcCallPos != token.NoPos && crcCallPos < firstWrite.Pos() {
			pass.Reportf(firstWrite.Pos(), "frame checksum is computed but never stored into the frame buffer before Write")
		} else {
			pass.Reportf(firstWrite.Pos(), "frame written without a checksum: no crc32 of the payload stored into the frame buffer before Write")
		}
	}
}

// isMakeByteSlice matches make([]byte, …).
func isMakeByteSlice(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" || len(call.Args) == 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Type == nil {
		return false
	}
	slice, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := slice.Elem().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Uint8
}

// callsCRC reports whether e contains a call into hash/crc32.
func callsCRC(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if obj := pass.TypesInfo.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "hash/crc32" {
			found = true
			return false
		}
		return true
	})
	return found
}

// bufferArg reports whether e indexes or slices one of the tracked
// buffers (frame[0:8], frame[8:], or the bare identifier).
func bufferArg(pass *analysis.Pass, e ast.Expr, buffers map[types.Object]bool) bool {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[v]
			return obj != nil && buffers[obj]
		case *ast.SliceExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		default:
			return false
		}
	}
}

// mentionsSeq reports whether any identifier in e looks like a sequence
// counter. Control-frame revisions ("rev") count: on the downstream
// channel the directive revision is the sequence — it is what the
// shipper dedups and orders by.
func mentionsSeq(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			name := strings.ToLower(id.Name)
			if strings.Contains(name, "seq") || strings.Contains(name, "rev") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// mentionsObj reports whether e uses one of the given objects.
func mentionsObj(pass *analysis.Pass, e ast.Expr, objs map[types.Object]bool) bool {
	if len(objs) == 0 {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && objs[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
