package seqwire_test

import (
	"testing"

	"tempest/internal/analysis/analysistest"
	"tempest/internal/analysis/passes/seqwire"
)

func TestSeqWire(t *testing.T) {
	analysistest.Run(t, seqwire.Analyzer, "internal/collect", "internal/mpi")
}
