// Fixture standing in for the durable store's record framing: every
// record buffer must have its hash-chain link copied in before it is
// written.
package store

import (
	"crypto/sha256"
	"io"
)

const chainLen = sha256.Size

type chain [chainLen]byte

func chainNext(prev chain, body []byte) chain {
	h := sha256.New()
	h.Write(prev[:])
	h.Write(body)
	var out chain
	h.Sum(out[:0])
	return out
}

func writeFrame(w io.Writer, kind byte, payload []byte) error {
	_, err := w.Write(payload)
	return err
}

func writeGood(w io.Writer, kind byte, body []byte, prev chain) (chain, error) {
	next := chainNext(prev, body)
	rec := make([]byte, len(body)+chainLen)
	copy(rec, body)
	copy(rec[len(body):], next[:])
	if err := writeFrame(w, kind, rec); err != nil {
		return chain{}, err
	}
	return next, nil
}

func writeGoodNamedVar(w io.Writer, body []byte, prev chain) error {
	nextChain := chainNext(prev, body)
	rec := make([]byte, len(body)+chainLen)
	copy(rec, body)
	copy(rec[len(body):], nextChain[:])
	_, err := w.Write(rec)
	return err
}

func writeNoChain(w io.Writer, kind byte, body []byte) error {
	rec := make([]byte, len(body))
	copy(rec, body)
	return writeFrame(w, kind, rec) // want `without its chain link`
}

func writeChainDropped(w io.Writer, body []byte, prev chain) error {
	next := chainNext(prev, body)
	_ = next
	rec := make([]byte, len(body))
	copy(rec, body)
	_, err := w.Write(rec) // want `computed but never copied`
	return err
}

func writeChainAfter(w io.Writer, body []byte, prev chain) error {
	next := chainNext(prev, body)
	rec := make([]byte, len(body)+chainLen)
	copy(rec, body)
	if _, err := w.Write(rec); err != nil { // want `computed but never copied`
		return err
	}
	copy(rec[len(body):], next[:])
	return nil
}

// Not a record framer: a read buffer never passed to a write.
func readRecord(r io.Reader, n int) ([]byte, error) {
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	dup := make([]byte, n)
	copy(dup, buf)
	return dup, nil
}
