// Package storehash checks the durable store's record framing. Every
// record in a store segment carries its hash-chain link — the tamper
// evidence the whole design rests on — and the link must be copied into
// the record buffer before the record reaches the writer, so a torn
// write can never leave a committed-looking record without its hash.
//
// A record framer is recognised structurally: a function in
// internal/store that makes a local []byte, copies material into it,
// and passes that same buffer to a Write-named call. For such functions
// the pass requires, before the first write, a copy whose source
// mentions a chain or hash value (an identifier containing "chain",
// "hash", "sum" or "digest", or a direct call into a crypto/hash
// package). A chain value that is computed but never copied into the
// buffer is flagged separately.
package storehash

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tempest/internal/analysis"
)

// targets is the durable-store package.
var targets = []string{"internal/store"}

// Analyzer implements the storehash pass.
var Analyzer = &analysis.Analyzer{
	Name: "storehash",
	Doc: "store record framers must copy the record's hash-chain link into the buffer " +
		"before writing it",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathMatches(pass.Pkg.Path(), targets) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFramer(pass, fd)
		}
	}
	return nil
}

func checkFramer(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Buffers created locally with make([]byte, …) and identifiers that
	// hold chain/hash values ("nextChain := chainNext(prev, body)").
	buffers := map[types.Object]bool{}
	chainVars := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				continue
			}
			if isMakeByteSlice(pass, rhs) {
				buffers[obj] = true
			}
			if chainNamed(id.Name) || chainTyped(obj) || callsHash(pass, rhs) {
				chainVars[obj] = true
			}
		}
		return true
	})
	if len(buffers) == 0 {
		return
	}

	type copyInto struct {
		pos token.Pos
		src ast.Expr
	}
	var copies []copyInto
	var firstWrite *ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name := calleeName(call); name == "copy" && len(call.Args) == 2 {
			if bufferArg(pass, call.Args[0], buffers) {
				copies = append(copies, copyInto{pos: call.Pos(), src: call.Args[1]})
			}
			return true
		} else if strings.Contains(strings.ToLower(name), "write") {
			for _, arg := range call.Args {
				if bufferArg(pass, arg, buffers) && firstWrite == nil {
					firstWrite = call
				}
			}
		}
		return true
	})
	if firstWrite == nil || len(copies) == 0 {
		return // not a record framer
	}

	hasChainCopy := false
	for _, c := range copies {
		if c.pos >= firstWrite.Pos() {
			continue // link stored after the record already left
		}
		if mentionsChain(pass, c.src, chainVars) {
			hasChainCopy = true
		}
	}
	if hasChainCopy {
		return
	}
	if len(chainVars) > 0 {
		pass.Reportf(firstWrite.Pos(), "record chain link is computed but never copied into the record buffer before the write")
	} else {
		pass.Reportf(firstWrite.Pos(), "record written without its chain link: no copy of a chain/hash value into the record buffer before the write")
	}
}

// calleeName extracts the called function's bare name ("copy",
// "WriteSegmentFrame", "Write"), or "" for indirect calls.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// chainTyped reports whether a variable's type is itself chain-named —
// the store's Chain link type, a hash.Hash, and the like.
func chainTyped(obj types.Object) bool {
	if obj == nil || obj.Type() == nil {
		return false
	}
	return chainNamed(obj.Type().String())
}

// chainNamed reports whether an identifier looks like it carries the
// chain link or another hash value.
func chainNamed(name string) bool {
	l := strings.ToLower(name)
	for _, frag := range []string{"chain", "hash", "sum", "digest"} {
		if strings.Contains(l, frag) {
			return true
		}
	}
	return false
}

// callsHash reports whether e contains a call into a crypto/* or hash/*
// package.
func callsHash(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		path := obj.Pkg().Path()
		if strings.HasPrefix(path, "crypto/") || strings.HasPrefix(path, "hash/") {
			found = true
			return false
		}
		return true
	})
	return found
}

// mentionsChain reports whether a copy source involves a chain value: a
// chain-named identifier, a tracked chain variable, or a direct hash
// call.
func mentionsChain(pass *analysis.Pass, e ast.Expr, chainVars map[types.Object]bool) bool {
	if callsHash(pass, e) {
		return true
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if chainNamed(id.Name) {
			found = true
			return false
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil && (chainVars[obj] || chainTyped(obj)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isMakeByteSlice matches make([]byte, …).
func isMakeByteSlice(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" || len(call.Args) == 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Type == nil {
		return false
	}
	slice, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := slice.Elem().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Uint8
}

// bufferArg reports whether e indexes or slices one of the tracked
// buffers (rec[len(body):], or the bare identifier).
func bufferArg(pass *analysis.Pass, e ast.Expr, buffers map[types.Object]bool) bool {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[v]
			return obj != nil && buffers[obj]
		case *ast.SliceExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		default:
			return false
		}
	}
}
