package storehash_test

import (
	"testing"

	"tempest/internal/analysis/analysistest"
	"tempest/internal/analysis/passes/storehash"
)

func TestStoreHash(t *testing.T) {
	analysistest.Run(t, storehash.Analyzer, "internal/store")
}
