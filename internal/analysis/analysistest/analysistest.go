// Package analysistest runs an Analyzer over fixture packages and checks
// its diagnostics against // want comments — a stdlib-only equivalent of
// golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under testdata/src/<pkg>/ next to the pass being tested,
// in the upstream layout. A fixture line carrying an expected diagnostic
// ends with a want comment holding one regexp per expected finding:
//
//	lane.Enter(fid) // want `not matched by an Exit`
//
// Fixture packages may import each other by bare path and may import real
// module packages ("tempest/internal/trace"), so seeded violations are
// type-checked against the genuine Lane, Registry, … types rather than
// mocks.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"tempest/internal/analysis"
)

// Run loads each fixture pattern with testdata/src as the extra import
// root, applies the analyzer, and reports any mismatch between produced
// and expected diagnostics as test errors.
func Run(t *testing.T, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	testdata, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: ".", ExtraRoot: filepath.Join(testdata, "src")}, patterns...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("patterns %v matched no fixture packages", patterns)
	}
	findings, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*expectation{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			collectWants(t, pkg.Fset, f, func(pos token.Position, exp *expectation) {
				k := key{pos.Filename, pos.Line}
				wants[k] = append(wants[k], exp)
			})
		}
	}

	for _, f := range findings {
		k := key{f.Position.Filename, f.Position.Line}
		matched := false
		for _, exp := range wants[k] {
			if !exp.used && exp.re.MatchString(f.Message) {
				exp.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic %s", f)
		}
	}
	for k, exps := range wants {
		for _, exp := range exps {
			if !exp.used {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, exp.re)
			}
		}
	}
}

type expectation struct {
	re   *regexp.Regexp
	used bool
}

// collectWants extracts the want expectations of one file.
func collectWants(t *testing.T, fset *token.FileSet, f *ast.File, add func(token.Position, *expectation)) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, ok := strings.CutPrefix(text, "want ")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			patterns, err := parseWant(rest)
			if err != nil {
				t.Fatalf("%s: bad want comment: %v", pos, err)
			}
			for _, p := range patterns {
				re, err := regexp.Compile(p)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", pos, p, err)
				}
				add(pos, &expectation{re: re})
			}
		}
	}
}

// parseWant splits a want payload into its quoted or backquoted regexps.
func parseWant(s string) ([]string, error) {
	var out []string
	for i := 0; i < len(s); {
		switch s[i] {
		case ' ', '\t':
			i++
		case '`':
			end := strings.IndexByte(s[i+1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquote in %q", s)
			}
			out = append(out, s[i+1:i+1+end])
			i += end + 2
		case '"':
			// Scan to the closing unescaped quote, then unquote.
			j := i + 1
			for j < len(s) && (s[j] != '"' || s[j-1] == '\\') {
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("unterminated quote in %q", s)
			}
			lit, err := strconv.Unquote(s[i : j+1])
			if err != nil {
				return nil, err
			}
			out = append(out, lit)
			i = j + 1
		default:
			return nil, fmt.Errorf("unexpected character %q in want comment %q", s[i], s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want comment")
	}
	return out, nil
}
