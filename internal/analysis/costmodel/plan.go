package costmodel

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// HookCosts holds the measured per-call cost of one instrumented
// function activation in each mode, in nanoseconds — the numbers
// BENCH_instrument.json records for instrument.Trace.
type HookCosts struct {
	DetailNS float64 `json:"detail_ns"`
	CoarseNS float64 `json:"coarse_ns"`
	SkipNS   float64 `json:"skip_ns"`
}

// DefaultHookCosts mirrors the committed BENCH_instrument.json numbers,
// used when no benchmark file is supplied.
var DefaultHookCosts = HookCosts{DetailNS: 6673, CoarseNS: 143.9, SkipNS: 0}

// LoadHookCosts reads hook costs from a BENCH_instrument.json-shaped
// file ({"modes": {"detail": ns, "coarse": ns, "off": ns, ...}}).
func LoadHookCosts(path string) (HookCosts, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return HookCosts{}, err
	}
	var doc struct {
		Modes map[string]float64 `json:"modes"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return HookCosts{}, fmt.Errorf("costmodel: parse %s: %w", path, err)
	}
	hc := DefaultHookCosts
	if v := doc.Modes["detail"]; v > 0 {
		hc.DetailNS = v
	}
	if v := doc.Modes["coarse"]; v > 0 {
		hc.CoarseNS = v
	}
	return hc, nil
}

// PlanOptions tunes plan construction.
type PlanOptions struct {
	// Budget is the target overhead fraction (e.g. 0.05 for 5%).
	Budget float64
	// Hooks prices the instrumentation; zero value means DefaultHookCosts.
	Hooks HookCosts
	// WorkUnitNS converts the model's abstract work units into
	// nanoseconds for the overhead denominator (default 4: a unit is
	// roughly one simple statement).
	WorkUnitNS float64
	// MinMode floors demotion: "coarse" keeps every function at least
	// coarsely counted; empty allows "skip".
	MinMode string
}

// PlanEntry is one function's instrumentation decision.
type PlanEntry struct {
	Sym string `json:"sym"`
	// Mode is "detail", "coarse" or "skip".
	Mode string `json:"mode"`
	// Freq is the predicted relative call count.
	Freq float64 `json:"freq"`
	// Score is the predicted exclusive weight (hotness).
	Score float64 `json:"score"`
	// HookNS is the predicted total hook spend for this function under
	// the chosen mode.
	HookNS float64 `json:"hook_ns"`
	// Reason explains a demotion, empty for functions kept in detail.
	Reason string `json:"reason,omitempty"`
}

// Plan is a reviewable instrumentation plan: which functions keep full
// entry/exit hooks, which fall back to coarse counters, which are left
// uninstrumented, and what overhead the model predicts for the result.
type Plan struct {
	// Budget echoes the requested overhead fraction (0 = unconstrained).
	Budget float64 `json:"budget"`
	// EstimatedOverhead is hook time over hook+work time under the plan.
	EstimatedOverhead float64 `json:"estimated_overhead"`
	// BaselineOverhead is the same estimate with everything in detail.
	BaselineOverhead float64 `json:"baseline_overhead"`
	// WorkNS is the predicted useful-work denominator.
	WorkNS  float64     `json:"work_ns"`
	Entries []PlanEntry `json:"entries"`

	byMode map[string]string
}

// BuildPlan derives an instrumentation plan from the model. Functions
// start in detail mode; while the predicted overhead exceeds the
// budget, the function with the worst hook-cost-to-hotness ratio is
// demoted detail→coarse→skip (greedy, deterministic).
func (m *Model) BuildPlan(opts PlanOptions) *Plan {
	if opts.Hooks == (HookCosts{}) {
		opts.Hooks = DefaultHookCosts
	}
	if opts.WorkUnitNS <= 0 {
		opts.WorkUnitNS = 4
	}
	ranked := m.Ranked()
	var workNS float64
	entries := make([]PlanEntry, 0, len(ranked))
	for _, fc := range ranked {
		workNS += fc.Freq * fc.Self * opts.WorkUnitNS
		if fc.Node.Owner() != nil {
			// Function literals cannot carry an instrumenter prologue;
			// their work still belongs in the denominator.
			continue
		}
		entries = append(entries, PlanEntry{
			Sym:    fc.Node.Sym,
			Mode:   "detail",
			Freq:   fc.Freq,
			Score:  fc.Score,
			HookNS: fc.Freq * opts.Hooks.DetailNS,
		})
	}
	hookNS := 0.0
	for i := range entries {
		hookNS += entries[i].HookNS
	}
	overhead := func() float64 {
		if workNS+hookNS == 0 {
			return 0
		}
		return hookNS / (workNS + hookNS)
	}
	p := &Plan{Budget: opts.Budget, BaselineOverhead: overhead(), WorkNS: workNS}

	modeNS := func(mode string, freq float64) float64 {
		switch mode {
		case "coarse":
			return freq * opts.Hooks.CoarseNS
		case "skip":
			return freq * opts.Hooks.SkipNS
		}
		return freq * opts.Hooks.DetailNS
	}
	demoted := func(mode string) (string, bool) {
		switch mode {
		case "detail":
			return "coarse", true
		case "coarse":
			if opts.MinMode == "coarse" {
				return "", false
			}
			return "skip", true
		}
		return "", false
	}
	for opts.Budget > 0 && overhead() > opts.Budget {
		best, bestGain := -1, 0.0
		for i := range entries {
			next, ok := demoted(entries[i].Mode)
			if !ok {
				continue
			}
			saving := entries[i].HookNS - modeNS(next, entries[i].Freq)
			if saving <= 0 {
				continue
			}
			// Prefer losing detail on cheap-but-chatty functions: high
			// hook spend, low predicted hotness.
			gain := saving / (entries[i].Score + 1)
			if gain > bestGain || (gain == bestGain && best >= 0 && entries[i].Sym < entries[best].Sym) {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			break // nothing left to demote
		}
		e := &entries[best]
		next, _ := demoted(e.Mode)
		nextNS := modeNS(next, e.Freq)
		hookNS += nextNS - e.HookNS
		e.Reason = fmt.Sprintf("%s→%s: saves %.0fns of predicted hook time (score %.0f)", e.Mode, next, e.HookNS-nextNS, e.Score)
		e.Mode, e.HookNS = next, nextNS
	}
	p.EstimatedOverhead = overhead()
	// Hot functions first, so reviewers read the kept set before the tail.
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].Score != entries[j].Score {
			return entries[i].Score > entries[j].Score
		}
		return entries[i].Sym < entries[j].Sym
	})
	p.Entries = entries
	return p
}

// Mode returns the planned mode for an instrumenter symbol, defaulting
// to "detail" for functions the plan does not mention.
func (p *Plan) Mode(sym string) string {
	if p.byMode == nil {
		p.byMode = make(map[string]string, len(p.Entries))
		for _, e := range p.Entries {
			p.byMode[e.Sym] = e.Mode
		}
	}
	if m, ok := p.byMode[sym]; ok {
		return m
	}
	return "detail"
}

// WriteJSON renders the plan, indented, to path.
func (p *Plan) WriteJSON(path string) error {
	raw, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// ParsePlan reads a plan written by WriteJSON.
func ParsePlan(raw []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, fmt.Errorf("costmodel: parse plan: %w", err)
	}
	return &p, nil
}
