package costmodel

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"tempest/internal/analysis"
	"tempest/internal/analysis/callgraph"
)

var update = flag.Bool("update", false, "rewrite the golden static ranking")

// litSym matches the instrumenter symbol shape of function literals
// ("pkg.Fn.func1"), which must never appear in a plan.
var litSym = regexp.MustCompile(`\.func\d+$`)

// loadRepo builds the whole-module graph and model once per test run.
func loadRepo(t *testing.T) *Model {
	t.Helper()
	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: "../../.."}, "./...")
	if err != nil {
		t.Fatal(err)
	}
	g, err := callgraph.Build(pkgs, callgraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(g, Options{})
}

// TestRepoStaticTop20Golden pins the repository's own static hot-spot
// ranking. The golden file is the regression tripwire for the whole
// interprocedural stack — loader, graph construction, loop weighting,
// SCC propagation, frequency split: a change anywhere that reorders the
// predicted top 20 shows up as a diff here. Regenerate deliberately
// with `go test ./internal/analysis/costmodel -run Golden -update`.
func TestRepoStaticTop20Golden(t *testing.T) {
	m := loadRepo(t)
	var b strings.Builder
	for i, fc := range m.Ranked() {
		if i >= 20 {
			break
		}
		b.WriteString(fc.Node.ID)
		b.WriteByte('\n')
	}
	got := b.String()

	golden := filepath.Join("testdata", "repo_top20.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("static top-20 ranking changed (rerun with -update if intended):\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestRepoPlanRespectsBudget drives the planner over the whole module:
// the baseline (everything in detail) must blow a 5% budget, the plan
// must land under it, and the demotions must be real.
func TestRepoPlanRespectsBudget(t *testing.T) {
	m := loadRepo(t)
	const budget = 0.05
	p := m.BuildPlan(PlanOptions{Budget: budget})
	if p.BaselineOverhead <= budget {
		t.Fatalf("baseline overhead %.4f under budget; nothing to plan", p.BaselineOverhead)
	}
	if p.EstimatedOverhead > budget {
		t.Fatalf("planned overhead %.4f exceeds budget %.2f", p.EstimatedOverhead, budget)
	}
	var detail, coarse, skip int
	for _, e := range p.Entries {
		switch e.Mode {
		case "detail":
			detail++
		case "coarse":
			coarse++
		case "skip":
			skip++
			if e.Reason == "" {
				t.Errorf("%s skipped without a recorded reason", e.Sym)
			}
		default:
			t.Errorf("%s has unknown mode %q", e.Sym, e.Mode)
		}
		if litSym.MatchString(e.Sym) {
			t.Errorf("function literal %s leaked into the plan", e.Sym)
		}
	}
	if detail == 0 || skip == 0 {
		t.Errorf("degenerate plan: detail=%d coarse=%d skip=%d", detail, coarse, skip)
	}

	// MinMode "coarse" must keep every function at least counted.
	floored := m.BuildPlan(PlanOptions{Budget: budget, MinMode: "coarse"})
	for _, e := range floored.Entries {
		if e.Mode == "skip" {
			t.Fatalf("MinMode coarse still skipped %s", e.Sym)
		}
	}
}

// TestPlanRoundTrip pins the reviewable-JSON contract -plan writes and
// -policy-priors reads back.
func TestPlanRoundTrip(t *testing.T) {
	m := loadRepo(t)
	p := m.BuildPlan(PlanOptions{Budget: 0.05})
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := p.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParsePlan(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != len(p.Entries) || back.Budget != p.Budget {
		t.Fatalf("round trip lost entries: %d != %d", len(back.Entries), len(p.Entries))
	}
	for i := range back.Entries {
		if back.Entries[i] != p.Entries[i] {
			t.Fatalf("entry %d changed across round trip: %+v != %+v", i, back.Entries[i], p.Entries[i])
		}
	}
	if got := back.Mode(p.Entries[0].Sym); got != p.Entries[0].Mode {
		t.Fatalf("Mode(%s) = %s after round trip, want %s", p.Entries[0].Sym, got, p.Entries[0].Mode)
	}
	if got := back.Mode("no.SuchFunction"); got != "detail" {
		t.Fatalf("unknown symbol mode = %q, want detail default", got)
	}
}

// TestLoadHookCosts reads the committed instrumentation benchmark so
// the parser and the file's shape cannot drift apart.
func TestLoadHookCosts(t *testing.T) {
	hc, err := LoadHookCosts("../../../BENCH_instrument.json")
	if err != nil {
		t.Fatal(err)
	}
	if hc.DetailNS <= hc.CoarseNS || hc.CoarseNS <= 0 {
		t.Fatalf("implausible hook costs from committed benchmark: %+v", hc)
	}
	if _, err := LoadHookCosts("does-not-exist.json"); err == nil {
		t.Fatal("missing file did not error")
	}
}

// BenchmarkRepoAnalysis measures graph construction plus cost analysis
// over the entire repository — the number scripts/bench/analysis_bench.sh
// commits as BENCH_analysis.json.
func BenchmarkRepoAnalysis(b *testing.B) {
	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: "../../.."}, "./...")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := callgraph.Build(pkgs, callgraph.Options{})
		if err != nil {
			b.Fatal(err)
		}
		m := Analyze(g, Options{})
		if len(m.Costs) == 0 {
			b.Fatal("empty model")
		}
	}
}

// BenchmarkRepoLoad isolates the loader (export data + parse + type
// check) so regressions in Build/Analyze are distinguishable from
// loader cost in the committed baseline.
func BenchmarkRepoLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pkgs, err := analysis.Load(analysis.LoadConfig{Dir: "../../.."}, "./...")
		if err != nil {
			b.Fatal(err)
		}
		if len(pkgs) == 0 {
			b.Fatal("no packages")
		}
	}
}
