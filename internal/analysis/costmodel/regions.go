package costmodel

import (
	"sort"

	"tempest/internal/analysis/callgraph"
)

// binding is one resolved argument flowing into a callee: a string
// value (region names) or a function with the environment it captured.
type binding struct {
	str *callgraph.StrArg // ArgConst or ArgList only
	fn  *fnBinding
}

// fnBinding pairs a function value with its lexical environment, so a
// closure handed through a wrapper still resolves the names and
// callbacks it captured at its definition site.
type fnBinding struct {
	node *callgraph.Node
	env  map[int]binding
}

// RegionCost is one named instrumentation region's predicted weight.
type RegionCost struct {
	Name string
	Cost float64
}

// RegionCosts replays the item trees from the given root IDs with full
// context sensitivity — string and function arguments are bound at each
// call site and carried down the chain — and attributes loop-weighted
// work to the innermost enclosing named region, the static analogue of
// a measured profile's exclusive-time ranking. Work outside any region
// lands under "".
func (m *Model) RegionCosts(rootIDs []string) []RegionCost {
	w := &regionWalker{m: m, acc: map[string]float64{}, stack: map[*callgraph.Node]bool{}}
	for _, id := range rootIDs {
		if n := m.Graph.Lookup(id); n != nil {
			w.walkNode(n, nil, "", 1, 0)
		}
	}
	out := make([]RegionCost, 0, len(w.acc))
	for name, cost := range w.acc {
		out = append(out, RegionCost{Name: name, Cost: cost})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cost != out[j].Cost {
			return out[i].Cost > out[j].Cost
		}
		return out[i].Name < out[j].Name
	})
	return out
}

type regionWalker struct {
	m     *Model
	acc   map[string]float64
	stack map[*callgraph.Node]bool
	steps int
}

func (w *regionWalker) walkNode(n *callgraph.Node, env map[int]binding, region string, mult float64, depth int) {
	if depth > w.m.Opts.MaxWalkDepth || w.steps > w.m.Opts.MaxWalkSteps || w.stack[n] {
		return
	}
	if n.External || n.Items == nil {
		w.acc[region] += w.m.Opts.ExtCallCost * mult
		return
	}
	w.stack[n] = true
	w.walkItem(n.Items, n, env, region, mult, depth)
	delete(w.stack, n)
}

func (w *regionWalker) walkItem(it *callgraph.Item, n *callgraph.Node, env map[int]binding, region string, mult float64, depth int) {
	w.steps++
	if w.steps > w.m.Opts.MaxWalkSteps {
		return
	}
	switch it.Kind {
	case callgraph.ItemGroup:
		for _, c := range it.Children {
			w.walkItem(c, n, env, region, mult, depth)
		}
	case callgraph.ItemWork:
		w.acc[region] += it.Cost * w.m.weight(it.Depth) * mult
	case callgraph.ItemRegion:
		names, share := w.resolveNames(it.Name, env)
		if len(names) == 0 {
			names, share = []string{region}, 1 // unresolved: stay in the outer region
		}
		for _, name := range names {
			for _, c := range it.Children {
				w.walkItem(c, n, env, name, mult*share, depth)
			}
		}
	case callgraph.ItemCall:
		if it.Bound {
			return // synthesized for the context-free phases; the walk rebinds itself
		}
		wd := w.m.weight(it.Depth)
		cenv := w.bindArgs(it, env)
		switch {
		case it.Callee != nil && !it.Callee.External:
			callee := cenv
			if it.Callee.Lit() {
				// Direct closure call: the literal sees the current
				// lexical environment under its own arguments.
				callee = overlay(env, cenv)
			}
			w.walkNode(it.Callee, callee, region, mult*wd, depth+1)
		case it.Callee != nil: // external
			w.acc[region] += w.m.Opts.ExtCallCost * wd * mult
			w.walkBindings(cenv, region, mult*wd, depth)
		case it.ParamCallee >= 0:
			if b, ok := env[it.ParamCallee]; ok && b.fn != nil {
				w.walkNode(b.fn.node, overlay(b.fn.env, cenv), region, mult*wd, depth+1)
			} else {
				w.acc[region] += w.m.Opts.ExtCallCost * wd * mult
			}
		case len(it.Targets) > 0:
			share := mult * wd / float64(len(it.Targets))
			for _, t := range it.Targets {
				w.walkNode(t, cenv, region, share, depth+1)
			}
		default:
			// Unresolved call holding resolvable callbacks: assume it
			// invokes them at the external default depth.
			w.acc[region] += w.m.Opts.ExtCallCost * wd * mult
			w.walkBindings(cenv, region, mult*wd, depth)
		}
	}
}

// walkBindings runs the function bindings handed to an external or
// unresolved callee, at the configured external callback depth.
func (w *regionWalker) walkBindings(cenv map[int]binding, region string, mult float64, depth int) {
	extW := w.m.weight(w.m.Graph.Opts.ExternalParamDepth)
	// Deterministic order.
	idxs := make([]int, 0, len(cenv))
	for i := range cenv {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		if b := cenv[i]; b.fn != nil {
			w.walkNode(b.fn.node, b.fn.env, region, mult*extW, depth+1)
		}
	}
}

// bindArgs resolves a call site's string and function arguments against
// the current environment into the callee's environment.
func (w *regionWalker) bindArgs(it *callgraph.Item, env map[int]binding) map[int]binding {
	if len(it.StrArgs) == 0 && len(it.FuncArgs) == 0 {
		return nil
	}
	cenv := map[int]binding{}
	for i, sa := range it.StrArgs {
		if r, ok := resolveStr(sa, env); ok {
			cenv[i] = binding{str: &r}
		}
	}
	for i, fa := range it.FuncArgs {
		switch {
		case fa.Node != nil:
			cenv[i] = binding{fn: &fnBinding{node: fa.Node, env: env}}
		case fa.Param >= 0:
			if b, ok := env[fa.Param]; ok && b.fn != nil {
				cenv[i] = b
			}
		}
	}
	return cenv
}

// resolveStr reduces a StrArg to ArgConst or ArgList using the
// environment for parameter references.
func resolveStr(sa callgraph.StrArg, env map[int]binding) (callgraph.StrArg, bool) {
	switch sa.Kind {
	case callgraph.ArgConst, callgraph.ArgList:
		return sa, true
	case callgraph.ArgParam:
		if b, ok := env[sa.Param]; ok && b.str != nil {
			return *b.str, true
		}
	}
	return callgraph.StrArg{}, false
}

// resolveNames turns a region-name argument into concrete names plus
// the cost share each receives (a range list splits evenly: the loop's
// weight already covers the repetition).
func (w *regionWalker) resolveNames(sa callgraph.StrArg, env map[int]binding) ([]string, float64) {
	r, ok := resolveStr(sa, env)
	if !ok {
		return nil, 0
	}
	switch r.Kind {
	case callgraph.ArgConst:
		return []string{r.Value}, 1
	case callgraph.ArgList:
		return r.List, 1 / float64(len(r.List))
	}
	return nil, 0
}

// overlay layers over on top of base without mutating either.
func overlay(base, over map[int]binding) map[int]binding {
	if len(over) == 0 {
		return base
	}
	if len(base) == 0 {
		return over
	}
	out := make(map[int]binding, len(base)+len(over))
	for k, v := range base {
		out[k] = v
	}
	for k, v := range over {
		out[k] = v
	}
	return out
}
