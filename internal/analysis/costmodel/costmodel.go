// Package costmodel ranks functions by predicted execution cost on top
// of the callgraph package — Tempest's static answer to "which functions
// will be hot, and which are too cheap to deserve entry/exit hooks".
//
// The model is deliberately simple and fully static:
//
//   - every loop level multiplies expected executions by a constant
//     weight (Options.LoopWeight), so a statement in a triple nest
//     counts W³ against one at function entry;
//   - costs propagate bottom-up over the call graph's SCC condensation
//     (recursive cycles are cut by charging a member's self cost once),
//     giving each function a Total that includes its callees;
//   - call frequencies propagate top-down from the entry points, giving
//     each function a predicted relative call count Freq;
//   - Score = Freq × Self approximates exclusive (flat) profile weight —
//     the quantity Tempest's measured profiles rank functions by.
//
// Two consumers sit directly on the model: RegionCosts replays the item
// trees context-sensitively to attribute cost to named instrumentation
// regions (validated against measured NAS profiles), and Plan converts
// Freq into per-function hook-overhead estimates priced with the
// measured instrument.Trace costs, demoting functions from detail to
// coarse to skip until a target overhead fraction is met.
package costmodel

import (
	"fmt"
	"sort"

	"tempest/internal/analysis/callgraph"
)

// Options tunes the model.
type Options struct {
	// LoopWeight is the assumed iteration count per loop level (default 8).
	LoopWeight float64
	// ExtCallCost is the work charged for a call that leaves the loaded
	// program or cannot be resolved (default 12).
	ExtCallCost float64
	// Roots are node IDs to propagate frequency from; empty means the
	// graph's in-degree-zero functions.
	Roots []string
	// MaxWalkDepth caps the context-sensitive region walk's call depth
	// (default 64).
	MaxWalkDepth int
	// MaxWalkSteps caps the total item visits of one region walk so
	// pathological call DAGs cannot blow up (default 2M).
	MaxWalkSteps int
}

func (o Options) withDefaults() Options {
	if o.LoopWeight <= 0 {
		o.LoopWeight = 8
	}
	if o.ExtCallCost <= 0 {
		o.ExtCallCost = 12
	}
	if o.MaxWalkDepth <= 0 {
		o.MaxWalkDepth = 64
	}
	if o.MaxWalkSteps <= 0 {
		o.MaxWalkSteps = 2_000_000
	}
	return o
}

// FuncCost is one function's model outcome.
type FuncCost struct {
	Node *callgraph.Node
	// Self is the function's own loop-weighted work, calls excluded.
	Self float64
	// Total is Self plus the weighted Totals of resolved callees,
	// propagated through the SCC condensation.
	Total float64
	// Freq is the predicted relative call count from the roots (roots
	// count 1 per activation).
	Freq float64
	// Score = Freq × Self: predicted exclusive profile weight.
	Score float64
}

// Model is the analyzed cost model.
type Model struct {
	Graph *callgraph.Graph
	Opts  Options
	// Costs maps every graph node (externals included, at zero Self) to
	// its outcome.
	Costs map[*callgraph.Node]*FuncCost
}

// Analyze computes the model for a built graph.
func Analyze(g *callgraph.Graph, opts Options) *Model {
	m := &Model{Graph: g, Opts: opts.withDefaults(), Costs: map[*callgraph.Node]*FuncCost{}}
	for _, n := range g.Nodes {
		m.Costs[n] = &FuncCost{Node: n}
	}
	m.propagateCosts()
	m.propagateFreq()
	for _, fc := range m.Costs {
		fc.Score = fc.Freq * fc.Self
	}
	return m
}

// weight is LoopWeight^depth.
func (m *Model) weight(depth int) float64 {
	w := 1.0
	for i := 0; i < depth; i++ {
		w *= m.Opts.LoopWeight
	}
	return w
}

// propagateCosts fills Self and Total bottom-up: Graph.SCCs lists
// callees before callers, so one forward sweep suffices. Calls into the
// same SCC charge the callee's Self only, which cuts recursive cycles
// while still converging for mutual recursion.
func (m *Model) propagateCosts() {
	for _, scc := range m.Graph.SCCs {
		for _, n := range scc {
			fc := m.Costs[n]
			n.VisitItems(func(it *callgraph.Item) {
				w := m.weight(it.Depth)
				switch it.Kind {
				case callgraph.ItemWork:
					fc.Self += it.Cost * w
				case callgraph.ItemCall:
					switch {
					case it.Callee != nil && !it.Callee.External:
						callee := m.Costs[it.Callee]
						if it.Callee.SCC == n.SCC {
							fc.Total += w * callee.Self
						} else {
							fc.Total += w * callee.Total
						}
					case len(it.Targets) > 0:
						for _, t := range it.Targets {
							tc := m.Costs[t]
							share := w / float64(len(it.Targets))
							if t.External {
								fc.Total += share * m.Opts.ExtCallCost
							} else if t.SCC == n.SCC {
								fc.Total += share * tc.Self
							} else {
								fc.Total += share * tc.Total
							}
						}
					default:
						// External, parameter or unresolved call: flat charge.
						fc.Self += m.Opts.ExtCallCost * w
					}
				}
			})
			fc.Total += fc.Self
		}
	}
}

// propagateFreq seeds the roots at 1 and pushes frequency top-down
// (callers before callees: the SCC order reversed). Intra-SCC edges are
// skipped — recursive amplification is unbounded statically.
func (m *Model) propagateFreq() {
	roots := m.Graph.Roots()
	if len(m.Opts.Roots) > 0 {
		roots = roots[:0]
		for _, id := range m.Opts.Roots {
			if n := m.Graph.Lookup(id); n != nil {
				roots = append(roots, n)
			}
		}
	}
	for _, r := range roots {
		m.Costs[r].Freq = 1
	}
	for i := len(m.Graph.SCCs) - 1; i >= 0; i-- {
		for _, n := range m.Graph.SCCs[i] {
			fc := m.Costs[n]
			if fc.Freq == 0 {
				continue
			}
			n.VisitItems(func(it *callgraph.Item) {
				if it.Kind != callgraph.ItemCall {
					return
				}
				w := m.weight(it.Depth) * fc.Freq
				if it.Callee != nil && it.Callee.SCC != n.SCC {
					m.Costs[it.Callee].Freq += w
				}
				for _, t := range it.Targets {
					if t.SCC != n.SCC {
						m.Costs[t].Freq += w / float64(len(it.Targets))
					}
				}
			})
		}
	}
}

// Ranked returns the loaded functions sorted by descending Score
// (ties by ID), the model's static hot-spot prediction.
func (m *Model) Ranked() []*FuncCost {
	var out []*FuncCost
	for _, fc := range m.Costs {
		if fc.Node.External || fc.Node.Items == nil {
			continue
		}
		out = append(out, fc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Node.ID < out[j].Node.ID
	})
	return out
}

// Lookup returns the cost entry for a node ID, nil if absent.
func (m *Model) Lookup(id string) *FuncCost {
	n := m.Graph.Lookup(id)
	if n == nil {
		return nil
	}
	return m.Costs[n]
}

// String summarizes one entry for logs and plans.
func (fc *FuncCost) String() string {
	return fmt.Sprintf("%s self=%.0f total=%.0f freq=%.2f score=%.0f",
		fc.Node.ID, fc.Self, fc.Total, fc.Freq, fc.Score)
}
