package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ExprString renders an expression in canonical single-line Go syntax —
// the passes use it as a cheap structural-equality key (matching
// Enter/Exit fids, lock receivers, frame buffers).
func ExprString(e ast.Expr) string { return types.ExprString(e) }

// PathMatches reports whether the package path is, or ends with, one of
// the targets. Suffix matching lets analysistest fixtures stand in for
// real packages: fixture path "internal/vclock" matches target
// "internal/vclock" exactly, and the real "tempest/internal/vclock"
// matches it as a suffix.
func PathMatches(pkgPath string, targets []string) bool {
	for _, t := range targets {
		if pkgPath == t || strings.HasSuffix(pkgPath, "/"+t) {
			return true
		}
	}
	return false
}

// ReceiverNamed returns the receiver's named type for a method object,
// unwrapping any pointer, or nil for non-methods.
func ReceiverNamed(obj types.Object) *types.Named {
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// IsMethodOn reports whether obj is a method named name on the type
// typeName defined in a package whose path matches pkgSuffix.
func IsMethodOn(obj types.Object, pkgSuffix, typeName, name string) bool {
	if obj == nil || obj.Name() != name {
		return false
	}
	named := ReceiverNamed(obj)
	if named == nil || named.Obj() == nil {
		return false
	}
	if named.Obj().Name() != typeName {
		return false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	return pkg.Path() == pkgSuffix || strings.HasSuffix(pkg.Path(), "/"+pkgSuffix)
}
