package analysis_test

import (
	"go/token"
	"strings"
	"testing"

	"tempest/internal/analysis"
	"tempest/internal/analysis/passes"
)

// TestLoadModulePackage exercises the source loader against a real
// module package, including type information.
func TestLoadModulePackage(t *testing.T) {
	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: "."}, "./internal/trace")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].PkgPath != "tempest/internal/trace" {
		t.Fatalf("unexpected packages %+v", pkgs)
	}
	pkg := pkgs[0]
	if pkg.Types.Scope().Lookup("Lane") == nil {
		t.Fatal("trace.Lane not in package scope: type-check produced no objects")
	}
	if len(pkg.Files) == 0 || len(pkg.TypesInfo.Defs) == 0 {
		t.Fatal("loaded package is missing syntax or type info")
	}
}

// TestLoadWholeRepo proves the loader digests every package in the
// module, mains and examples included.
func TestLoadWholeRepo(t *testing.T) {
	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: "."}, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 25 {
		t.Fatalf("expected the full repo (>=25 packages), got %d", len(pkgs))
	}
	for _, p := range pkgs {
		if strings.Contains(p.Dir, "testdata") {
			t.Errorf("loader descended into testdata: %s", p.Dir)
		}
	}
}

// TestRepoIsVetClean is the in-process twin of the CI tempest-vet step:
// the invariant suite must stay clean over the whole repository.
func TestRepoIsVetClean(t *testing.T) {
	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: "."}, "./...")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run(pkgs, passes.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestIgnoreDirective checks line coverage of //tempest:ignore: the
// directive's own line and the next line, for the named pass only.
func TestIgnoreDirective(t *testing.T) {
	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: "."}, "./internal/vclock")
	if err != nil {
		t.Fatal(err)
	}
	// vclock.RealClock carries two sanctioned wall-clock reads; with the
	// wallclock pass they must stay silent, and a pass of a different
	// name must NOT be silenced by them.
	var wallclock *analysis.Analyzer
	for _, a := range passes.All() {
		if a.Name == "wallclock" {
			wallclock = a
		}
	}
	findings, err := analysis.Run(pkgs, []*analysis.Analyzer{wallclock})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("ignore directives did not suppress RealClock findings: %v", findings)
	}

	probe := &analysis.Analyzer{
		Name: "probe",
		Doc:  "reports once per file to prove foreign passes are not silenced",
		Run: func(p *analysis.Pass) error {
			for _, f := range p.Files {
				p.Reportf(f.Name.Pos(), "probe finding")
			}
			return nil
		},
	}
	findings, err = analysis.Run(pkgs, []*analysis.Analyzer{probe})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("probe pass was unexpectedly suppressed")
	}
}

// TestPathMatches pins the suffix-matching contract fixtures rely on.
func TestPathMatches(t *testing.T) {
	cases := []struct {
		path, target string
		want         bool
	}{
		{"tempest/internal/vclock", "internal/vclock", true},
		{"internal/vclock", "internal/vclock", true},
		{"tempest/internal/vclock2", "internal/vclock", false},
		{"vclock", "internal/vclock", false},
	}
	for _, c := range cases {
		if got := analysis.PathMatches(c.path, []string{c.target}); got != c.want {
			t.Errorf("PathMatches(%q, %q) = %v, want %v", c.path, c.target, got, c.want)
		}
	}
}

// TestFindingString pins the diagnostic format the Makefile/CI greps.
func TestFindingString(t *testing.T) {
	f := analysis.Finding{
		Position: token.Position{Filename: "x.go", Line: 3, Column: 7},
		Analyzer: "wallclock",
		Message:  "no",
	}
	if got, want := f.String(), "x.go:3:7: [wallclock] no"; got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}
