package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package with syntax.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// LoadConfig configures Load.
type LoadConfig struct {
	// Dir is any directory inside the target module (default ".").
	Dir string
	// IncludeTests also parses in-package _test.go files. External
	// (package foo_test) files are never loaded.
	IncludeTests bool
	// ExtraRoot, when set, resolves imports that are neither module
	// packages nor known stdlib packages against this directory,
	// GOPATH-style — the analysistest harness points it at
	// testdata/src so fixture packages can import each other and the
	// real module packages at once.
	ExtraRoot string
}

// Load parses and type-checks the packages matched by patterns and every
// module-internal dependency, resolving standard-library imports through
// the toolchain's export data (`go list -export`, fully offline). A
// pattern is a module-relative directory ("./internal/trace"), a
// recursive form ("./..."), or — with ExtraRoot set — a bare import path
// under that root ("a", "internal/collect").
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	if cfg.Dir == "" {
		cfg.Dir = "."
	}
	modDir, modPath, err := findModule(cfg.Dir)
	if err != nil {
		return nil, err
	}
	exports, err := exportData(modDir)
	if err != nil {
		return nil, err
	}
	l := &loader{
		cfg:     cfg,
		fset:    token.NewFileSet(),
		modDir:  modDir,
		modPath: modPath,
		exports: exports,
		loaded:  map[string]*Package{},
		loading: map[string]bool{},
	}
	l.std = importer.ForCompiler(l.fset, "gc", l.lookupExport)

	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	seen := map[string]bool{}
	for _, d := range dirs {
		pkg, err := l.loadDir(d.dir, d.importPath)
		if err != nil {
			return nil, err
		}
		if pkg == nil || seen[pkg.PkgPath] {
			continue // no buildable files, or duplicate pattern match
		}
		seen[pkg.PkgPath] = true
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// loader resolves and caches packages for one Load call.
type loader struct {
	cfg     LoadConfig
	fset    *token.FileSet
	modDir  string
	modPath string
	exports map[string]string // import path → export data file
	std     types.Importer
	loaded  map[string]*Package
	loading map[string]bool // cycle detection
}

type target struct {
	dir        string
	importPath string
}

// expand resolves patterns to directories plus their import paths.
func (l *loader) expand(patterns []string) ([]target, error) {
	var out []target
	for _, p := range patterns {
		switch {
		case p == "./..." || p == "...":
			walked, err := l.walk(l.modDir, l.modPath)
			if err != nil {
				return nil, err
			}
			out = append(out, walked...)
		case strings.HasSuffix(p, "/..."):
			base := strings.TrimSuffix(p, "/...")
			dir, ip, err := l.resolvePattern(base)
			if err != nil {
				return nil, err
			}
			walked, err := l.walk(dir, ip)
			if err != nil {
				return nil, err
			}
			out = append(out, walked...)
		default:
			dir, ip, err := l.resolvePattern(p)
			if err != nil {
				return nil, err
			}
			out = append(out, target{dir, ip})
		}
	}
	return out, nil
}

// resolvePattern maps one non-recursive pattern to (dir, importPath).
func (l *loader) resolvePattern(p string) (string, string, error) {
	clean := filepath.ToSlash(filepath.Clean(strings.TrimPrefix(p, "./")))
	if clean == "." {
		return l.modDir, l.modPath, nil
	}
	if clean == l.modPath || strings.HasPrefix(clean, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(clean, l.modPath), "/")
		return filepath.Join(l.modDir, filepath.FromSlash(rel)), clean, nil
	}
	// Fixture root wins over module directories of the same name:
	// analysistest names its fixtures after the real packages they stand
	// in for ("internal/vclock") so suffix-scoped passes fire on them.
	if l.cfg.ExtraRoot != "" {
		if dir := filepath.Join(l.cfg.ExtraRoot, filepath.FromSlash(clean)); isDir(dir) {
			return dir, clean, nil
		}
	}
	if dir := filepath.Join(l.modDir, filepath.FromSlash(clean)); isDir(dir) {
		return dir, l.modPath + "/" + clean, nil
	}
	return "", "", fmt.Errorf("analysis: pattern %q matches no directory", p)
}

// walk finds every package directory under root, skipping testdata,
// hidden and underscore directories.
func (l *loader) walk(root, rootImport string) ([]target, error) {
	var out []target
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if !hasGoFiles(path) {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		ip := rootImport
		if rel != "." {
			ip = rootImport + "/" + filepath.ToSlash(rel)
		}
		out = append(out, target{path, ip})
		return nil
	})
	return out, err
}

// Import implements types.Importer: module-internal and extra-root
// packages are type-checked from source; everything else comes from the
// toolchain's export data.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == "C" {
		return nil, errors.New("analysis: cgo packages are not supported")
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		pkg, err := l.loadDir(filepath.Join(l.modDir, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("analysis: no buildable Go files in %s", path)
		}
		return pkg.Types, nil
	}
	if _, ok := l.exports[path]; ok {
		return l.std.Import(path)
	}
	if l.cfg.ExtraRoot != "" {
		if dir := filepath.Join(l.cfg.ExtraRoot, filepath.FromSlash(path)); isDir(dir) {
			pkg, err := l.loadDir(dir, path)
			if err != nil {
				return nil, err
			}
			if pkg == nil {
				return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
			}
			return pkg.Types, nil
		}
	}
	// Last resort: a stdlib package the module itself doesn't depend on.
	if file, err := listExport(l.modDir, path); err == nil && file != "" {
		l.exports[path] = file
		return l.std.Import(path)
	}
	return nil, fmt.Errorf("analysis: cannot resolve import %q", path)
}

// lookupExport feeds the gc importer export data files.
func (l *loader) lookupExport(path string) (io.ReadCloser, error) {
	file, ok := l.exports[path]
	if !ok {
		var err error
		if file, err = listExport(l.modDir, path); err != nil || file == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		l.exports[path] = file
	}
	return os.Open(file)
}

// loadDir parses and type-checks the package in dir. It returns (nil,
// nil) when the directory holds no buildable Go files.
func (l *loader) loadDir(dir, importPath string) (*Package, error) {
	if pkg, ok := l.loaded[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	files, names, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		l.loaded[importPath] = nil
		return nil, nil
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	tpkg, _ := conf.Check(importPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		var b strings.Builder
		for i, e := range typeErrs {
			if i > 0 {
				b.WriteString("\n\t")
			}
			b.WriteString(e.Error())
		}
		return nil, fmt.Errorf("analysis: type errors in %s (%s):\n\t%s", importPath, names[0], b.String())
	}
	pkg := &Package{
		PkgPath:   importPath,
		Dir:       dir,
		Fset:      l.fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	l.loaded[importPath] = pkg
	return pkg, nil
}

// parseDir parses the buildable Go files of one directory, honouring
// build constraints via go/build file matching.
func (l *loader) parseDir(dir string) ([]*ast.File, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	ctx := build.Default
	var files []*ast.File
	var fileNames []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") && !l.cfg.IncludeTests {
			continue
		}
		match, err := ctx.MatchFile(dir, name)
		if err != nil {
			return nil, nil, fmt.Errorf("analysis: %s: %w", filepath.Join(dir, name), err)
		}
		if !match {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
		fileNames = append(fileNames, name)
	}
	if len(files) == 0 {
		return nil, nil, nil
	}
	// Keep one package per directory: drop external-test files
	// (package foo_test) and, if mixed, anything not matching the
	// majority package name of the non-test files.
	pkgName := ""
	for i, f := range files {
		if !strings.HasSuffix(fileNames[i], "_test.go") {
			pkgName = f.Name.Name
			break
		}
	}
	if pkgName == "" {
		pkgName = strings.TrimSuffix(files[0].Name.Name, "_test")
	}
	var kept []*ast.File
	var keptNames []string
	for i, f := range files {
		if f.Name.Name != pkgName {
			continue
		}
		kept = append(kept, f)
		keptNames = append(keptNames, fileNames[i])
	}
	return kept, []string{pkgName}, nil
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module directory and module path. The instrumenter shares it to derive
// import paths for registration blocks.
func FindModule(dir string) (modDir, modPath string, err error) {
	return findModule(dir)
}

// findModule walks up from dir to the enclosing go.mod.
func findModule(dir string) (modDir, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
	}
}

// exportCache memoises the `go list -export` sweep per module directory:
// analysistest invokes Load once per test case and the sweep is by far
// the slowest step.
var exportCache = struct {
	sync.Mutex
	m map[string]map[string]string
}{m: map[string]map[string]string{}}

// exportData maps every dependency of the module to its compiled export
// data file, produced offline from the local build cache.
func exportData(modDir string) (map[string]string, error) {
	exportCache.Lock()
	defer exportCache.Unlock()
	if m, ok := exportCache.m[modDir]; ok {
		return m, nil
	}
	out, err := runGoList(modDir, "-deps", "-export", "-json=ImportPath,Export,Standard", "./...")
	if err != nil {
		return nil, err
	}
	m, err := parseGoList(out)
	if err != nil {
		return nil, err
	}
	exportCache.m[modDir] = m
	return m, nil
}

// listExport fetches export data for a single package on demand.
func listExport(modDir, path string) (string, error) {
	out, err := runGoList(modDir, "-export", "-json=ImportPath,Export,Standard", path)
	if err != nil {
		return "", err
	}
	m, err := parseGoList(out)
	if err != nil {
		return "", err
	}
	return m[path], nil
}

func runGoList(dir string, args ...string) ([]byte, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list: %w\n%s", err, stderr.String())
	}
	return stdout.Bytes(), nil
}

func parseGoList(out []byte) (map[string]string, error) {
	m := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var entry struct {
			ImportPath string
			Export     string
			Standard   bool
		}
		if err := dec.Decode(&entry); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: parsing go list output: %w", err)
		}
		if entry.Export != "" {
			m[entry.ImportPath] = entry.Export
		}
	}
	return m, nil
}

func isDir(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") && !strings.HasPrefix(e.Name(), "_") {
			return true
		}
	}
	return false
}
