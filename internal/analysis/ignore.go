package analysis

import (
	"go/token"
	"strings"
)

// ignoreDirective is the comment prefix that suppresses findings.
const ignoreDirective = "tempest:ignore"

// ignoreSet records, per file, the lines on which each pass is silenced.
type ignoreSet struct {
	// byFile maps filename → line → set of silenced pass names ("all"
	// silences every pass).
	byFile map[string]map[int]map[string]bool
}

// suppressed reports whether a finding from pass at pos is silenced.
func (s ignoreSet) suppressed(pass string, pos token.Position) bool {
	lines := s.byFile[pos.Filename]
	if lines == nil {
		return false
	}
	names := lines[pos.Line]
	if names == nil {
		return false
	}
	return names["all"] || names[pass]
}

// collectIgnores scans every comment in the package for
// //tempest:ignore directives. A directive covers its own line and the
// line immediately below it, so both trailing and leading comment
// placement work:
//
//	origin: time.Now(), //tempest:ignore wallclock
//
//	//tempest:ignore wallclock
//	origin := time.Now()
func collectIgnores(pkg *Package) ignoreSet {
	set := ignoreSet{byFile: map[string]map[int]map[string]bool{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				args := strings.Fields(strings.TrimPrefix(text, ignoreDirective))
				if len(args) == 0 {
					args = []string{"all"}
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := set.byFile[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					set.byFile[pos.Filename] = lines
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					names := lines[line]
					if names == nil {
						names = map[string]bool{}
						lines[line] = names
					}
					for _, a := range args {
						names[a] = true
					}
				}
			}
		}
	}
	return set
}
