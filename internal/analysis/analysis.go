// Package analysis is Tempest's static-analysis framework: a compact,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// driver model, built directly on go/parser, go/types and the toolchain's
// export data (via `go list -export`).
//
// The paper's profiler leans on compiler support (-finstrument-functions)
// rather than programmer discipline; this package plays the same role for
// the Go reproduction's own invariants. Each Analyzer encodes one
// cross-package runtime contract — Enter/Exit pairing, virtual-time
// purity, documented lock discipline, wire-frame sequencing, the sensor
// NaN contract — and cmd/tempest-vet runs the whole suite over the repo
// in CI, turning conventions that previously lived in comments and tests
// into machine-checked rules.
//
// Diagnostics can be silenced at a specific site with a
// `//tempest:ignore <pass>[ <pass>...]` comment on the flagged line or
// the line directly above it (`//tempest:ignore all` silences every
// pass). Ignores are for intentional, documented exceptions — e.g. the
// real-clock reads inside vclock.RealClock itself.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one invariant checker. It mirrors the x/tools
// analysis.Analyzer shape so passes read idiomatically and could migrate
// to the upstream framework wholesale.
type Analyzer struct {
	// Name identifies the pass in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run inspects one package and reports findings via pass.Report.
	// Exactly one of Run and RunProgram must be set.
	Run func(pass *Pass) error
	// RunProgram inspects the whole loaded package set at once. Passes
	// whose invariant spans package boundaries (lock-acquisition order,
	// goroutine lifecycles through cross-package helpers) use this form;
	// the driver calls it exactly once per Run invocation.
	RunProgram func(pass *ProgramPass) error
}

// Program is the whole loaded package set handed to program-wide
// analyzers. All packages share one FileSet (the loader's).
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package
}

// Package returns the loaded package with the given import path, nil if
// absent.
func (p *Program) Package(path string) *Package {
	for _, pkg := range p.Pkgs {
		if pkg.PkgPath == path {
			return pkg
		}
	}
	return nil
}

// ProgramPass carries the whole program to a program-wide Analyzer.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program
	// Report records one diagnostic; the driver filters ignored sites.
	Report func(Diagnostic)
}

// Reportf formats and reports a diagnostic at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Pass carries one package's syntax and type information to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report records one diagnostic. The driver filters ignored sites
	// and sorts the final list.
	Report func(Diagnostic)
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Analyzer is filled in by the driver.
	Analyzer string
}

// Finding is a resolved diagnostic, positioned for printing.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the canonical file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Position, f.Analyzer, f.Message)
}

// Run executes each analyzer over each loaded package and returns the
// surviving findings sorted by position. Ignore directives
// (//tempest:ignore) are applied here so every analyzer gets suppression
// for free.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg)
		for _, a := range analyzers {
			if a.Run == nil {
				continue // program-wide analyzer; handled below
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			name := a.Name
			pass.Report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if ignores.suppressed(name, pos) {
					return
				}
				findings = append(findings, Finding{Position: pos, Analyzer: name, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	if len(pkgs) > 0 {
		// Program-wide analyzers see the whole set once, with every
		// package's ignore directives in effect.
		var allIgnores []ignoreSet
		for _, pkg := range pkgs {
			allIgnores = append(allIgnores, collectIgnores(pkg))
		}
		prog := &Program{Fset: pkgs[0].Fset, Pkgs: pkgs}
		for _, a := range analyzers {
			if a.RunProgram == nil {
				continue
			}
			name := a.Name
			pass := &ProgramPass{Analyzer: a, Prog: prog}
			pass.Report = func(d Diagnostic) {
				pos := prog.Fset.Position(d.Pos)
				for _, ig := range allIgnores {
					if ig.suppressed(name, pos) {
						return
					}
				}
				findings = append(findings, Finding{Position: pos, Analyzer: name, Message: d.Message})
			}
			if err := a.RunProgram(pass); err != nil {
				return nil, fmt.Errorf("analysis %s: %w", a.Name, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
