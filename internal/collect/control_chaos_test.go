package collect

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"tempest/instrument"
	"tempest/internal/faultinject"
)

// TestChaosControlLoopConvergesAndSurvivesRestart drives the full
// adaptive-sampling control loop through seeded link chaos: a shipper
// whose connections refuse to come up, die mid-stream and tear frames
// interleaves event batches with coarse bucket reports against a
// durable, policy-enabled collector. Dropped, duplicated or reordered
// control frames must never corrupt the forward stream (the profile
// stays byte-identical to an offline parse), the policy must still
// converge on the top-K functions, and a restarted collector must
// re-issue the same directive revision from its durable store.
func TestChaosControlLoopConvergesAndSurvivesRestart(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			opts := Options{StoreDir: dir, Policy: PolicyOptions{
				Enabled: true, TopK: 2, Interval: time.Millisecond,
			}}
			c, addr := startCollector(t, opts)

			plan := faultinject.NewPlan(seed)
			dial := faultinject.FaultyDialer(plan, faultinject.ConnFaults{
				RefuseFirst:      2,
				CloseAfterWrites: 3,
				PartialWriteRate: 0.15,
				Sleep:            func(time.Duration) {},
			}, nil)
			var mu sync.Mutex
			var last instrument.Directive
			s := NewShipper(addr, 11, 0, ShipperOptions{
				Dial:            dial,
				DialBackoffBase: time.Millisecond,
				DialBackoffMax:  5 * time.Millisecond,
				FlushTimeout:    30 * time.Second,
				OnControl: func(d instrument.Directive) {
					mu.Lock()
					last = d
					mu.Unlock()
				},
			})

			tr := buildTrace(t, 11, []string{"alpha", "beta"}, 40)
			report := []instrument.CoarseStat{
				{Name: "alpha", Calls: 100, Nanos: int64(50 * time.Millisecond)},
				{Name: "beta", Calls: 80, Nanos: int64(30 * time.Millisecond)},
				{Name: "gamma", Calls: 10, Nanos: int64(time.Millisecond)},
			}
			want := []string{"alpha", "beta"}

			// Interleave event batches with coarse reports until the shipper
			// has seen a directive nominating the two dominant functions.
			// Rounds run on the real clock (1 ms interval), so each report
			// can trigger one; chaos may delay convergence, never break it.
			deadline := time.Now().Add(30 * time.Second)
			converged := false
			next := 0
			for time.Now().Before(deadline) {
				if next < len(tr.Events) {
					end := next + 5
					if end > len(tr.Events) {
						end = len(tr.Events)
					}
					if err := s.Ship(tr.Events[next:end], tr.Sym); err != nil {
						t.Fatalf("Ship at %d: %v", next, err)
					}
					next = end
				}
				if err := s.ShipCoarse(report); err != nil {
					t.Fatalf("ShipCoarse: %v", err)
				}
				mu.Lock()
				got := funcNames(last)
				mu.Unlock()
				if reflect.DeepEqual(got, want) {
					converged = true
					break
				}
				time.Sleep(2 * time.Millisecond)
			}
			if !converged {
				mu.Lock()
				d := last
				mu.Unlock()
				t.Fatalf("policy never converged; last directive %+v", d)
			}
			for next < len(tr.Events) { // finish the event stream
				end := next + 5
				if end > len(tr.Events) {
					end = len(tr.Events)
				}
				if err := s.Ship(tr.Events[next:end], tr.Sym); err != nil {
					t.Fatalf("Ship at %d: %v", next, err)
				}
				next = end
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			st := s.Stats()
			if st.DroppedSegments != 0 {
				t.Fatalf("dropped %d segments despite clean Close", st.DroppedSegments)
			}
			if st.Reconnects == 0 {
				t.Fatal("fault plan produced no reconnects; chaos not exercised")
			}

			// Control chaos must not have touched the forward stream.
			np, err := c.NodeProfile(11)
			if err != nil {
				t.Fatal(err)
			}
			wantRender := renderNode(t, offlineNodeProfile(t, tr, c.opts.Unit))
			if got := renderNode(t, np); got != wantRender {
				t.Fatalf("profile diverged under control chaos:\n got:\n%s\nwant:\n%s", got, wantRender)
			}

			sts := c.PolicyStatuses()
			if len(sts) != 1 {
				t.Fatalf("policy statuses = %d nodes, want 1", len(sts))
			}
			wantRev := sts[0].Rev
			if wantRev == 0 {
				t.Fatal("no directive revision issued")
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}

			// The reborn collector re-issues its predecessor's directive on
			// the reconnect handshake, recovered from the durable store.
			c2, addr2 := startCollector(t, opts)
			var mu2 sync.Mutex
			var reissued instrument.Directive
			s2 := NewShipper(addr2, 11, 0, ShipperOptions{
				FlushTimeout: 10 * time.Second,
				OnControl: func(d instrument.Directive) {
					mu2.Lock()
					reissued = d
					mu2.Unlock()
				},
			})
			// Any enqueue wakes the lazy dialer; the handshake resume cursor
			// retires it as already-acked history.
			if err := s2.Ship(tr.Events[:1], tr.Sym); err != nil {
				t.Fatal(err)
			}
			waitUntil := time.Now().Add(10 * time.Second)
			for s2.Stats().ControlFrames == 0 && time.Now().Before(waitUntil) {
				time.Sleep(time.Millisecond)
			}
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}
			mu2.Lock()
			defer mu2.Unlock()
			if reissued.Rev != wantRev {
				t.Fatalf("restart re-issued rev %d, want %d", reissued.Rev, wantRev)
			}
			if got := funcNames(reissued); !reflect.DeepEqual(got, want) {
				t.Fatalf("restart re-issued detail set %v, want %v", got, want)
			}
			sts2 := c2.PolicyStatuses()
			if len(sts2) != 1 || sts2[0].Rev != wantRev {
				t.Fatalf("restored policy status = %+v, want rev %d", sts2, wantRev)
			}
		})
	}
}
