package collect

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tempest/internal/trace"
	"tempest/internal/vclock"
)

// goldenCollector builds a deterministic collector: injected clock, one
// shard layout-independent node set, loaded through IngestTrace so no
// network timing can perturb the result.
func goldenCollector(t *testing.T, nodes int) *Collector {
	t.Helper()
	fixed := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	c := New(Options{Now: func() time.Time { return fixed }})
	t.Cleanup(func() { c.Close() })
	specs := [][]string{
		{"compute", "exchange"},
		{"compute", "io", "reduce"},
		{"idle_wait", "compute"},
	}
	for n := 0; n < nodes; n++ {
		if err := c.IngestTrace(buildTrace(t, uint32(n+1), specs[n%len(specs)], 30+10*n)); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file when TEMPEST_UPDATE_GOLDEN=1 is set.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if os.Getenv("TEMPEST_UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (regenerate with TEMPEST_UPDATE_GOLDEN=1): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s response drifted from golden:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string, http.Header) {
	t.Helper()
	res, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res.StatusCode, string(body), res.Header
}

// staggerTrace builds the canonical two-lane barrier stagger on one
// node: a fast lane reaching MPI_Barrier at 4s and a straggler arriving
// at 7s, so the critical-path answer (wait attribution, serialization
// window, straggler lane) is known exactly.
func staggerTrace(t *testing.T, node uint32) *trace.Trace {
	t.Helper()
	clk := vclock.NewVirtualClock()
	tr, err := trace.NewTracer(trace.Config{Clock: clk, NodeID: node, Rank: node})
	if err != nil {
		t.Fatal(err)
	}
	fast, slow := tr.NewLane(), tr.NewLane()
	fastWork := tr.RegisterFunc("fast_work")
	slowWork := tr.RegisterFunc("straggler_work")
	barrier := tr.RegisterFunc("MPI_Barrier")
	sec := time.Second
	fast.EnterAt(fastWork, 0)
	slow.EnterAt(slowWork, 0)
	_ = fast.ExitAt(fastWork, 4*sec)
	fast.EnterAt(barrier, 4*sec)
	_ = slow.ExitAt(slowWork, 7*sec)
	slow.EnterAt(barrier, 7*sec)
	_ = fast.ExitAt(barrier, 8*sec)
	_ = slow.ExitAt(barrier, 8*sec)
	return tr.Finish()
}

func TestHTTPCritPathGolden(t *testing.T) {
	fixed := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	c := New(Options{Now: func() time.Time { return fixed }})
	defer c.Close()
	if err := c.IngestTrace(staggerTrace(t, 1)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	code, body, hdr := get(t, srv, "/api/critpath/1")
	if code != 200 || hdr.Get("Content-Type") != "application/json" {
		t.Fatalf("/api/critpath/1: status %d type %q", code, hdr.Get("Content-Type"))
	}
	checkGolden(t, "critpath_stagger", body)

	// Snapshots are non-destructive: a second query answers identically.
	if _, again, _ := get(t, srv, "/api/critpath/1"); again != body {
		t.Errorf("second /api/critpath/1 drifted:\n%s\nvs\n%s", again, body)
	}

	code, body, hdr = get(t, srv, "/api/critpath/1?format=text")
	if code != 200 || !strings.HasPrefix(hdr.Get("Content-Type"), "text/plain") {
		t.Fatalf("/api/critpath/1?format=text: status %d type %q", code, hdr.Get("Content-Type"))
	}
	checkGolden(t, "critpath_stagger_text", body)

	code, body, hdr = get(t, srv, "/api/timeline/1")
	if code != 200 || hdr.Get("Content-Type") != "application/json" {
		t.Fatalf("/api/timeline/1: status %d type %q", code, hdr.Get("Content-Type"))
	}
	checkGolden(t, "timeline_stagger", body)

	code, body, hdr = get(t, srv, "/api/timeline/1?format=text&width=24")
	if code != 200 || !strings.HasPrefix(hdr.Get("Content-Type"), "text/plain") {
		t.Fatalf("/api/timeline/1?format=text: status %d type %q", code, hdr.Get("Content-Type"))
	}
	checkGolden(t, "timeline_stagger_text", body)

	for path, want := range map[string]int{
		"/api/critpath/99":         404,
		"/api/critpath/bad":        400,
		"/api/timeline/99":         404,
		"/api/timeline/bad":        400,
		"/api/timeline/1?width=-1": 400,
		"/api/timeline/1?width=x":  400,
	} {
		if code, _, _ := get(t, srv, path); code != want {
			t.Errorf("%s status = %d, want %d", path, code, want)
		}
	}
}

func TestHTTPHotspotsGoldenSingleNode(t *testing.T) {
	c := goldenCollector(t, 1)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	code, body, hdr := get(t, srv, "/api/hotspots?k=5")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	checkGolden(t, "hotspots_single_node", body)
}

func TestHTTPHotspotsGoldenEmptyFleet(t *testing.T) {
	c := goldenCollector(t, 0)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	code, body, _ := get(t, srv, "/api/hotspots?k=5")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	// The empty fleet is an answer, not an error: empty arrays, never null.
	if strings.Contains(body, "null") {
		t.Errorf("empty-fleet response contains JSON null:\n%s", body)
	}
	checkGolden(t, "hotspots_empty_fleet", body)
}

func TestHTTPMetricsGoldenSingleNode(t *testing.T) {
	c := goldenCollector(t, 1)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	code, body, hdr := get(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if !strings.HasPrefix(hdr.Get("Content-Type"), "text/plain") {
		t.Errorf("content type %q", hdr.Get("Content-Type"))
	}
	checkGolden(t, "metrics_single_node", body)
}

func TestHTTPMetricsGoldenEmptyFleet(t *testing.T) {
	c := goldenCollector(t, 0)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	code, body, _ := get(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	checkGolden(t, "metrics_empty_fleet", body)
}

func TestHTTPNodesAndProfileAndSeries(t *testing.T) {
	c := goldenCollector(t, 3)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	code, body, _ := get(t, srv, "/api/nodes")
	if code != 200 {
		t.Fatalf("/api/nodes status %d", code)
	}
	checkGolden(t, "nodes_three", body)

	code, body, _ = get(t, srv, "/api/profile/2")
	if code != 200 || !strings.Contains(body, "\"node_id\": 2") {
		t.Fatalf("/api/profile/2: status %d body %.120s", code, body)
	}
	code, body, _ = get(t, srv, "/api/profile/2?format=text")
	if code != 200 || !strings.Contains(body, "node 2") {
		t.Fatalf("/api/profile/2?format=text: status %d body %.120s", code, body)
	}
	code, body, hdr := get(t, srv, "/api/series/1")
	if code != 200 || !strings.HasPrefix(hdr.Get("Content-Type"), "text/csv") {
		t.Fatalf("/api/series/1: status %d type %q", code, hdr.Get("Content-Type"))
	}
	if !strings.HasPrefix(body, "time_s,node,sensor,") {
		t.Fatalf("/api/series/1 not CSV: %.80s", body)
	}

	for path, want := range map[string]int{
		"/api/profile/99":         404,
		"/api/profile/bad":        400,
		"/api/series/bad":         400,
		"/api/hotspots?k=x":       400,
		"/api/hotspots?k=-5":      400,
		"/api/hotspots?sensor=-1": 400,
		"/nope":                   404,
	} {
		if code, _, _ := get(t, srv, path); code != want {
			t.Errorf("%s status = %d, want %d", path, code, want)
		}
	}

	code, body, _ = get(t, srv, "/healthz")
	if code != 200 || body != "ok\n" {
		t.Errorf("/healthz: %d %q", code, body)
	}
}
