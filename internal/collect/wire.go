// Package collect is Tempest's fleet collector: the service side of
// cluster-scale hot-spot profiling.
//
// The paper's workflow is per-node and offline — every rank writes a
// trace file and a parser merges the files after the run. collect keeps
// the same data model but moves it online: each node runs a Shipper that
// frames drained trace batches over a self-healing TCP link, and a
// long-running Collector ingests streams from many nodes at once,
// folding each into that node's streaming parser.Builder and serving
// fleet-wide profiles, hot-spot rankings and self-observability over
// HTTP. A profile assembled from shipped batches is identical to one
// parsed offline from the equivalent trace file: the Builder is the
// single implementation of both.
//
// Wire protocol (ship mode), little-endian:
//
//	hello   magic uint32 'TPCH', version uint16 = 1,
//	        nodeID uvarint, rank uvarint        (shipper → collector)
//	resume  uint64                              (collector → shipper:
//	        next chunk sequence number it expects from this node)
//	frame   seq uint64, payloadLen uint32, crc32(payload) uint32, payload
//	        (shipper → collector, repeated)
//	ack     uint64                              (collector → shipper after
//	        every frame: next expected sequence number)
//
// Each frame payload is one self-contained chunk: the symbols registered
// since the previous chunk, then a batch of events whose timestamp
// deltas restart at zero (the first delta is the absolute timestamp).
// Chunks therefore decode against nothing but the node's cumulative
// symbol table — a chunk resent after a reconnect is byte-identical and
// the collector's per-node sequence cursor drops duplicates, so the
// decoded stream is exactly-once and in-order no matter how many times
// the link dies.
//
// A connection that opens with the TPST trace magic instead of the hello
// magic is a bulk upload: the collector scans it as a complete trace
// file (v1 or v2), rescanning per connection with a pooled, Reset
// trace.Scanner.
package collect

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"

	"tempest/internal/trace"
)

const (
	// helloMagic opens a ship-mode connection ("TPCH" little-endian).
	helloMagic   = 0x48435054
	wireVersion  = 1
	frameHdrLen  = 16 // seq 8 + len 4 + crc 4
	maxChunkLen  = 1 << 26
	maxHelloName = 1 << 16
)

// errWire reports a malformed ship-mode stream; the connection carrying
// it is dropped and the shipper redials.
var errWire = fmt.Errorf("collect: malformed wire data")

// hello identifies one shipping node.
type hello struct {
	NodeID uint32
	Rank   uint32
}

// writeHello frames the ship-mode greeting.
func writeHello(w io.Writer, h hello) error {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, uint32(helloMagic))
	binary.Write(&buf, binary.LittleEndian, uint16(wireVersion))
	var scratch [binary.MaxVarintLen64]byte
	buf.Write(scratch[:binary.PutUvarint(scratch[:], uint64(h.NodeID))])
	buf.Write(scratch[:binary.PutUvarint(scratch[:], uint64(h.Rank))])
	_, err := w.Write(buf.Bytes())
	return err
}

// readHelloTail parses the hello after its 4-byte magic has already been
// consumed (the collector peeks the magic to dispatch ship vs bulk mode).
func readHelloTail(br io.ByteReader) (hello, error) {
	var h hello
	var ver uint16
	lo, err := readByte(br)
	if err != nil {
		return h, err
	}
	hi, err := readByte(br)
	if err != nil {
		return h, err
	}
	ver = uint16(lo) | uint16(hi)<<8
	if ver != wireVersion {
		return h, fmt.Errorf("%w: hello version %d", errWire, ver)
	}
	node, err := binary.ReadUvarint(br)
	if err != nil {
		return h, fmt.Errorf("%w: hello node id: %v", errWire, err)
	}
	rank, err := binary.ReadUvarint(br)
	if err != nil {
		return h, fmt.Errorf("%w: hello rank: %v", errWire, err)
	}
	h.NodeID = uint32(node)
	h.Rank = uint32(rank)
	return h, nil
}

func readByte(br io.ByteReader) (byte, error) {
	b, err := br.ReadByte()
	if err != nil {
		return 0, fmt.Errorf("%w: short hello: %v", errWire, err)
	}
	return b, nil
}

// writeFrame emits one chunk frame as a single buffer, so a mid-frame
// connection death never leaves the peer a torn prefix it could misparse
// (it re-syncs from the sequence cursor after reconnect either way).
func writeFrame(w io.Writer, seq uint64, payload []byte) error {
	frame := make([]byte, frameHdrLen+len(payload))
	binary.LittleEndian.PutUint64(frame[0:8], seq)
	binary.LittleEndian.PutUint32(frame[8:12], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[12:16], crc32.ChecksumIEEE(payload))
	copy(frame[frameHdrLen:], payload)
	_, err := w.Write(frame)
	return err
}

// readFrame reads one chunk frame into buf (grown as needed), returning
// the sequence number and payload. The payload aliases buf and is valid
// until the next call.
func readFrame(r io.Reader, buf []byte) (seq uint64, payload, newBuf []byte, err error) {
	var hdr [frameHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, buf, err
	}
	seq = binary.LittleEndian.Uint64(hdr[0:8])
	plen := binary.LittleEndian.Uint32(hdr[8:12])
	sum := binary.LittleEndian.Uint32(hdr[12:16])
	if plen > maxChunkLen {
		return 0, nil, buf, fmt.Errorf("%w: frame length %d", errWire, plen)
	}
	if uint32(cap(buf)) < plen {
		buf = make([]byte, plen)
	}
	payload = buf[:plen]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, buf, err
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return 0, nil, buf, fmt.Errorf("%w: frame checksum mismatch", errWire)
	}
	return seq, payload, buf, nil
}

// encodeChunk serialises the symbols registered at ids [fromSym, sym.Len())
// plus one event batch into a self-contained chunk. Timestamp deltas
// restart at zero, so the chunk decodes with no cross-chunk state beyond
// the cumulative symbol table.
func encodeChunk(events []trace.Event, sym *trace.SymTab, fromSym int) (payload []byte, symCount int, err error) {
	var buf bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	uv := func(v uint64) { buf.Write(scratch[:binary.PutUvarint(scratch[:], v)]) }
	sv := func(v int64) { buf.Write(scratch[:binary.PutVarint(scratch[:], v)]) }

	names := sym.Names()
	if fromSym > len(names) {
		return nil, 0, fmt.Errorf("collect: symbol cursor %d beyond table of %d", fromSym, len(names))
	}
	fresh := names[fromSym:]
	uv(uint64(len(fresh)))
	for i, name := range fresh {
		addr, err := sym.Addr(uint32(fromSym + i))
		if err != nil {
			return nil, 0, err
		}
		uv(addr)
		uv(uint64(len(name)))
		buf.WriteString(name)
	}

	uv(uint64(len(events)))
	var prevTS int64
	for i, e := range events {
		if err := e.Valid(); err != nil {
			return nil, 0, fmt.Errorf("collect: event %d: %w", i, err)
		}
		buf.WriteByte(byte(e.Kind))
		uv(uint64(e.Lane))
		ts := int64(e.TS)
		sv(ts - prevTS)
		prevTS = ts
		switch e.Kind {
		case trace.KindEnter, trace.KindExit, trace.KindMarker:
			uv(uint64(e.FuncID))
		case trace.KindSample:
			uv(uint64(e.SensorID))
			// Quantised exactly like the trace codec, so a shipped sample
			// decodes to the value a trace file round-trips to.
			sv(int64(math.Round(e.ValueC * 1000)))
		case trace.KindDrop:
			uv(e.Aux)
		}
	}
	return buf.Bytes(), len(names), nil
}

// decodeChunk folds one chunk into the node's cumulative symbol table and
// decodes its events into batch (reused across calls). New symbols must
// continue the table densely — a gap means lost chunks (a collector
// restart mid-stream) and poisons the node rather than mis-attributing
// samples.
func decodeChunk(payload []byte, sym *trace.SymTab, batch []trace.Event) ([]trace.Event, error) {
	buf := bytes.NewBuffer(payload)
	nsyms, err := binary.ReadUvarint(buf)
	if err != nil || nsyms > 1<<24 {
		return nil, fmt.Errorf("%w: chunk symbol count", errWire)
	}
	base := sym.Len()
	for i := uint64(0); i < nsyms; i++ {
		if _, err := binary.ReadUvarint(buf); err != nil { // addr: regenerated on Register
			return nil, fmt.Errorf("%w: chunk symbol %d addr", errWire, i)
		}
		nameLen, err := binary.ReadUvarint(buf)
		if err != nil || nameLen > maxHelloName {
			return nil, fmt.Errorf("%w: chunk symbol %d name length", errWire, i)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(buf, name); err != nil {
			return nil, fmt.Errorf("%w: chunk symbol %d name", errWire, i)
		}
		if got := sym.Register(string(name)); int(got) != base+int(i) {
			return nil, fmt.Errorf("%w: chunk symbol %q re-registered (lost chunk?)", errWire, name)
		}
	}

	n, err := binary.ReadUvarint(buf)
	if err != nil || n > 1<<32 {
		return nil, fmt.Errorf("%w: chunk event count", errWire)
	}
	nsymsNow := uint64(sym.Len())
	batch = batch[:0]
	var ts int64
	for i := uint64(0); i < n; i++ {
		kindB, err := buf.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: chunk event %d kind", errWire, i)
		}
		e := trace.Event{Kind: trace.EventKind(kindB)}
		lane, err := binary.ReadUvarint(buf)
		if err != nil {
			return nil, fmt.Errorf("%w: chunk event %d lane", errWire, i)
		}
		e.Lane = uint32(lane)
		dts, err := binary.ReadVarint(buf)
		if err != nil {
			return nil, fmt.Errorf("%w: chunk event %d Δts", errWire, i)
		}
		ts += dts
		if ts < 0 {
			return nil, fmt.Errorf("%w: chunk event %d negative timestamp", errWire, i)
		}
		e.TS = time.Duration(ts)
		switch e.Kind {
		case trace.KindEnter, trace.KindExit, trace.KindMarker:
			fid, err := binary.ReadUvarint(buf)
			if err != nil || fid >= nsymsNow {
				return nil, fmt.Errorf("%w: chunk event %d func id", errWire, i)
			}
			e.FuncID = uint32(fid)
		case trace.KindSample:
			sid, err := binary.ReadUvarint(buf)
			if err != nil {
				return nil, fmt.Errorf("%w: chunk event %d sensor id", errWire, i)
			}
			e.SensorID = uint32(sid)
			milli, err := binary.ReadVarint(buf)
			if err != nil {
				return nil, fmt.Errorf("%w: chunk event %d sample value", errWire, i)
			}
			e.ValueC = float64(milli) / 1000
		case trace.KindDrop:
			aux, err := binary.ReadUvarint(buf)
			if err != nil {
				return nil, fmt.Errorf("%w: chunk event %d drop count", errWire, i)
			}
			e.Aux = aux
		default:
			return nil, fmt.Errorf("%w: chunk event %d unknown kind %d", errWire, i, kindB)
		}
		batch = append(batch, e)
	}
	if buf.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing chunk bytes", errWire, buf.Len())
	}
	return batch, nil
}
