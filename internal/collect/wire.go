// Package collect is Tempest's fleet collector: the service side of
// cluster-scale hot-spot profiling.
//
// The paper's workflow is per-node and offline — every rank writes a
// trace file and a parser merges the files after the run. collect keeps
// the same data model but moves it online: each node runs a Shipper that
// frames drained trace batches over a self-healing TCP link, and a
// long-running Collector ingests streams from many nodes at once,
// folding each into that node's streaming parser.Builder and serving
// fleet-wide profiles, hot-spot rankings and self-observability over
// HTTP. A profile assembled from shipped batches is identical to one
// parsed offline from the equivalent trace file: the Builder is the
// single implementation of both.
//
// Wire protocol (ship mode), version 2, little-endian. The forward
// path carries frames with a kind byte; the downstream path — formerly
// a raw resume word plus raw acks — is framed the same way, so acks can
// carry piggybacked control directives (the adaptive-sampling feedback
// loop):
//
//	hello   magic uint32 'TPCH', version uint16 = 2,
//	        nodeID uvarint, rank uvarint        (shipper → collector)
//	frame   seq uint64, kind uint8, payloadLen uint32,
//	        crc32(payload) uint32, payload      (shipper → collector:
//	        kind 0 = event chunk, kind 1 = coarse bucket report)
//	down    kind uint8, …                       (collector → shipper)
//	 ·ack   kind 0: next uint64 — once after the hello (the resume
//	        cursor) and after every frame (next expected sequence)
//	 ·ctl   kind 1: rev uint64, payloadLen uint32, crc32(payload)
//	        uint32, payload — a full desired instrumentation set
//	        (per-function enable/disable keyed by symbol name), with
//	        the same checksum/revision/dedup discipline as the forward
//	        path: directives are idempotent full sets, revisions only
//	        move forward, and a corrupt control frame kills the
//	        connection (the collector re-issues its latest policy on
//	        the reconnect handshake, so loss only delays convergence).
//
// Each kind-0 frame payload is one self-contained chunk: the symbols
// registered since the previous chunk, then a batch of events whose
// timestamp deltas restart at zero (the first delta is the absolute
// timestamp). Chunks therefore decode against nothing but the node's
// cumulative symbol table — a chunk resent after a reconnect is
// byte-identical and the collector's per-node sequence cursor drops
// duplicates, so the decoded stream is exactly-once and in-order no
// matter how many times the link dies.
//
// Kind-1 frames carry gprof-style coarse buckets (per-function call
// count + cumulative time) keyed by symbol name, self-contained by
// construction. They share the forward sequence space — the cursor
// dedup and the durable store's gap-free replay cover both kinds — but
// are advisory: a coarse report that fails to decode is counted and
// dropped without poisoning the node's event stream.
//
// A connection that opens with the TPST trace magic instead of the hello
// magic is a bulk upload: the collector scans it as a complete trace
// file (v1 or v2), rescanning per connection with a pooled, Reset
// trace.Scanner.
package collect

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"

	"tempest/instrument"
	"tempest/internal/trace"
)

const (
	// helloMagic opens a ship-mode connection ("TPCH" little-endian).
	helloMagic   = 0x48435054
	wireVersion  = 2
	frameHdrLen  = 17 // seq 8 + kind 1 + len 4 + crc 4
	maxChunkLen  = 1 << 26
	maxHelloName = 1 << 16

	// Forward frame kinds.
	frameData   byte = 0 // self-contained event chunk
	frameCoarse byte = 1 // coarse instrumentation bucket report

	// Downstream frame kinds.
	downAck    byte = 0 // next-expected-sequence acknowledgement
	downCtl    byte = 1 // control directive (full instrumentation set)
	downHdrLen      = 17 // kind 1 + rev 8 + len 4 + crc 4 (ctl frames)
	maxCtlLen       = 1 << 20
)

// errWire reports a malformed ship-mode stream; the connection carrying
// it is dropped and the shipper redials.
var errWire = fmt.Errorf("collect: malformed wire data")

// hello identifies one shipping node.
type hello struct {
	NodeID uint32
	Rank   uint32
}

// writeHello frames the ship-mode greeting.
func writeHello(w io.Writer, h hello) error {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, uint32(helloMagic))
	binary.Write(&buf, binary.LittleEndian, uint16(wireVersion))
	var scratch [binary.MaxVarintLen64]byte
	buf.Write(scratch[:binary.PutUvarint(scratch[:], uint64(h.NodeID))])
	buf.Write(scratch[:binary.PutUvarint(scratch[:], uint64(h.Rank))])
	_, err := w.Write(buf.Bytes())
	return err
}

// readHelloTail parses the hello after its 4-byte magic has already been
// consumed (the collector peeks the magic to dispatch ship vs bulk mode).
func readHelloTail(br io.ByteReader) (hello, error) {
	var h hello
	var ver uint16
	lo, err := readByte(br)
	if err != nil {
		return h, err
	}
	hi, err := readByte(br)
	if err != nil {
		return h, err
	}
	ver = uint16(lo) | uint16(hi)<<8
	if ver != wireVersion {
		return h, fmt.Errorf("%w: hello version %d", errWire, ver)
	}
	node, err := binary.ReadUvarint(br)
	if err != nil {
		return h, fmt.Errorf("%w: hello node id: %v", errWire, err)
	}
	rank, err := binary.ReadUvarint(br)
	if err != nil {
		return h, fmt.Errorf("%w: hello rank: %v", errWire, err)
	}
	h.NodeID = uint32(node)
	h.Rank = uint32(rank)
	return h, nil
}

func readByte(br io.ByteReader) (byte, error) {
	b, err := br.ReadByte()
	if err != nil {
		return 0, fmt.Errorf("%w: short hello: %v", errWire, err)
	}
	return b, nil
}

// writeFrame emits one forward frame as a single buffer, so a mid-frame
// connection death never leaves the peer a torn prefix it could misparse
// (it re-syncs from the sequence cursor after reconnect either way).
func writeFrame(w io.Writer, seq uint64, kind byte, payload []byte) error {
	frame := make([]byte, frameHdrLen+len(payload))
	binary.LittleEndian.PutUint64(frame[0:8], seq)
	frame[8] = kind
	binary.LittleEndian.PutUint32(frame[9:13], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[13:17], crc32.ChecksumIEEE(payload))
	copy(frame[frameHdrLen:], payload)
	_, err := w.Write(frame)
	return err
}

// readFrame reads one forward frame into buf (grown as needed),
// returning the sequence number, kind and payload. The payload aliases
// buf and is valid until the next call.
func readFrame(r io.Reader, buf []byte) (seq uint64, kind byte, payload, newBuf []byte, err error) {
	var hdr [frameHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, buf, err
	}
	seq = binary.LittleEndian.Uint64(hdr[0:8])
	kind = hdr[8]
	plen := binary.LittleEndian.Uint32(hdr[9:13])
	sum := binary.LittleEndian.Uint32(hdr[13:17])
	if kind != frameData && kind != frameCoarse {
		return 0, 0, nil, buf, fmt.Errorf("%w: frame kind %d", errWire, kind)
	}
	if plen > maxChunkLen {
		return 0, 0, nil, buf, fmt.Errorf("%w: frame length %d", errWire, plen)
	}
	if uint32(cap(buf)) < plen {
		buf = make([]byte, plen)
	}
	payload = buf[:plen]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, buf, err
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return 0, 0, nil, buf, fmt.Errorf("%w: frame checksum mismatch", errWire)
	}
	return seq, kind, payload, buf, nil
}

// writeAck emits one downstream acknowledgement: the next sequence
// number the collector expects. Sent once after the hello (the resume
// cursor) and after every committed frame.
func writeAck(w io.Writer, next uint64) error {
	var buf [9]byte
	buf[0] = downAck
	binary.LittleEndian.PutUint64(buf[1:9], next)
	_, err := w.Write(buf[:])
	return err
}

// writeControl emits one downstream control frame carrying an encoded
// directive at policy revision rev. Single-buffer write for the same
// torn-prefix reason as writeFrame; rev plays the sequence role and the
// payload is checksummed exactly like forward frames.
func writeControl(w io.Writer, rev uint64, payload []byte) error {
	frame := make([]byte, downHdrLen+len(payload))
	frame[0] = downCtl
	binary.LittleEndian.PutUint64(frame[1:9], rev)
	binary.LittleEndian.PutUint32(frame[9:13], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[13:17], crc32.ChecksumIEEE(payload))
	copy(frame[downHdrLen:], payload)
	_, err := w.Write(frame)
	return err
}

// downFrame is one parsed collector→shipper frame.
type downFrame struct {
	kind byte
	next uint64 // downAck: next expected forward sequence
	rev  uint64 // downCtl: policy revision
	ctl  instrument.Directive
}

// readDown reads one downstream frame. A malformed or corrupt frame is
// an error: the shipper drops the connection and redials rather than
// guessing, and the collector re-issues its policy on reconnect.
func readDown(r io.Reader, buf []byte) (downFrame, []byte, error) {
	var kind [1]byte
	if _, err := io.ReadFull(r, kind[:]); err != nil {
		return downFrame{}, buf, err
	}
	switch kind[0] {
	case downAck:
		var word [8]byte
		if _, err := io.ReadFull(r, word[:]); err != nil {
			return downFrame{}, buf, err
		}
		return downFrame{kind: downAck, next: binary.LittleEndian.Uint64(word[:])}, buf, nil
	case downCtl:
		var hdr [downHdrLen - 1]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return downFrame{}, buf, err
		}
		rev := binary.LittleEndian.Uint64(hdr[0:8])
		plen := binary.LittleEndian.Uint32(hdr[8:12])
		sum := binary.LittleEndian.Uint32(hdr[12:16])
		if plen > maxCtlLen {
			return downFrame{}, buf, fmt.Errorf("%w: control length %d", errWire, plen)
		}
		if uint32(cap(buf)) < plen {
			buf = make([]byte, plen)
		}
		payload := buf[:plen]
		if _, err := io.ReadFull(r, payload); err != nil {
			return downFrame{}, buf, err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return downFrame{}, buf, fmt.Errorf("%w: control checksum mismatch", errWire)
		}
		d, err := decodeControl(payload)
		if err != nil {
			return downFrame{}, buf, err
		}
		d.Rev = rev
		return downFrame{kind: downCtl, rev: rev, ctl: d}, buf, nil
	default:
		return downFrame{}, buf, fmt.Errorf("%w: downstream kind %d", errWire, kind[0])
	}
}

// encodeControl serialises a directive's desired set (the revision
// travels in the frame header): default mode, then each override as
// name + mode.
func encodeControl(d instrument.Directive) []byte {
	var buf bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	uv := func(v uint64) { buf.Write(scratch[:binary.PutUvarint(scratch[:], v)]) }
	buf.WriteByte(byte(d.Default))
	uv(uint64(len(d.Funcs)))
	for _, f := range d.Funcs {
		uv(uint64(len(f.Name)))
		buf.WriteString(f.Name)
		buf.WriteByte(byte(f.Mode))
	}
	return buf.Bytes()
}

// decodeControl parses a control payload back into a directive (Rev
// left zero for the caller to fill from the frame header).
func decodeControl(payload []byte) (instrument.Directive, error) {
	var d instrument.Directive
	buf := bytes.NewBuffer(payload)
	def, err := buf.ReadByte()
	if err != nil || def > byte(instrument.ModeOff) {
		return d, fmt.Errorf("%w: control default mode", errWire)
	}
	d.Default = instrument.Mode(def)
	n, err := binary.ReadUvarint(buf)
	if err != nil || n > 1<<20 {
		return d, fmt.Errorf("%w: control function count", errWire)
	}
	for i := uint64(0); i < n; i++ {
		nameLen, err := binary.ReadUvarint(buf)
		if err != nil || nameLen > maxHelloName {
			return d, fmt.Errorf("%w: control function %d name length", errWire, i)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(buf, name); err != nil {
			return d, fmt.Errorf("%w: control function %d name", errWire, i)
		}
		mode, err := buf.ReadByte()
		if err != nil || mode > byte(instrument.ModeOff) {
			return d, fmt.Errorf("%w: control function %d mode", errWire, i)
		}
		d.Funcs = append(d.Funcs, instrument.FuncMode{Name: string(name), Mode: instrument.Mode(mode)})
	}
	if buf.Len() != 0 {
		return d, fmt.Errorf("%w: %d trailing control bytes", errWire, buf.Len())
	}
	return d, nil
}

// encodeCoarse serialises one flushed coarse bucket report. Entries are
// keyed by symbol name, so the payload is self-contained: coarse-mode
// functions emit no events and therefore can't rely on the chunk
// symbol-cursor path to have shipped their names.
func encodeCoarse(stats []instrument.CoarseStat) []byte {
	var buf bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	uv := func(v uint64) { buf.Write(scratch[:binary.PutUvarint(scratch[:], v)]) }
	sv := func(v int64) { buf.Write(scratch[:binary.PutVarint(scratch[:], v)]) }
	uv(uint64(len(stats)))
	for _, cs := range stats {
		uv(uint64(len(cs.Name)))
		buf.WriteString(cs.Name)
		uv(cs.Calls)
		sv(cs.Nanos)
	}
	return buf.Bytes()
}

// decodeCoarse parses a coarse report payload.
func decodeCoarse(payload []byte) ([]instrument.CoarseStat, error) {
	buf := bytes.NewBuffer(payload)
	n, err := binary.ReadUvarint(buf)
	if err != nil || n > 1<<24 {
		return nil, fmt.Errorf("%w: coarse entry count", errWire)
	}
	out := make([]instrument.CoarseStat, 0, n)
	for i := uint64(0); i < n; i++ {
		nameLen, err := binary.ReadUvarint(buf)
		if err != nil || nameLen > maxHelloName {
			return nil, fmt.Errorf("%w: coarse entry %d name length", errWire, i)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(buf, name); err != nil {
			return nil, fmt.Errorf("%w: coarse entry %d name", errWire, i)
		}
		calls, err := binary.ReadUvarint(buf)
		if err != nil {
			return nil, fmt.Errorf("%w: coarse entry %d calls", errWire, i)
		}
		nanos, err := binary.ReadVarint(buf)
		if err != nil {
			return nil, fmt.Errorf("%w: coarse entry %d nanos", errWire, i)
		}
		out = append(out, instrument.CoarseStat{Name: string(name), Calls: calls, Nanos: nanos})
	}
	if buf.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing coarse bytes", errWire, buf.Len())
	}
	return out, nil
}

// encodeChunk serialises the symbols registered at ids [fromSym, sym.Len())
// plus one event batch into a self-contained chunk. Timestamp deltas
// restart at zero, so the chunk decodes with no cross-chunk state beyond
// the cumulative symbol table.
func encodeChunk(events []trace.Event, sym *trace.SymTab, fromSym int) (payload []byte, symCount int, err error) {
	var buf bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	uv := func(v uint64) { buf.Write(scratch[:binary.PutUvarint(scratch[:], v)]) }
	sv := func(v int64) { buf.Write(scratch[:binary.PutVarint(scratch[:], v)]) }

	names := sym.Names()
	if fromSym > len(names) {
		return nil, 0, fmt.Errorf("collect: symbol cursor %d beyond table of %d", fromSym, len(names))
	}
	fresh := names[fromSym:]
	uv(uint64(len(fresh)))
	for i, name := range fresh {
		addr, err := sym.Addr(uint32(fromSym + i))
		if err != nil {
			return nil, 0, err
		}
		uv(addr)
		uv(uint64(len(name)))
		buf.WriteString(name)
	}

	uv(uint64(len(events)))
	var prevTS int64
	for i, e := range events {
		if err := e.Valid(); err != nil {
			return nil, 0, fmt.Errorf("collect: event %d: %w", i, err)
		}
		buf.WriteByte(byte(e.Kind))
		uv(uint64(e.Lane))
		ts := int64(e.TS)
		sv(ts - prevTS)
		prevTS = ts
		switch e.Kind {
		case trace.KindEnter, trace.KindExit, trace.KindMarker:
			uv(uint64(e.FuncID))
		case trace.KindSample:
			uv(uint64(e.SensorID))
			// Quantised exactly like the trace codec, so a shipped sample
			// decodes to the value a trace file round-trips to.
			sv(int64(math.Round(e.ValueC * 1000)))
		case trace.KindDrop:
			uv(e.Aux)
		}
	}
	return buf.Bytes(), len(names), nil
}

// decodeChunk folds one chunk into the node's cumulative symbol table and
// decodes its events into batch (reused across calls). New symbols must
// continue the table densely — a gap means lost chunks (a collector
// restart mid-stream) and poisons the node rather than mis-attributing
// samples.
func decodeChunk(payload []byte, sym *trace.SymTab, batch []trace.Event) ([]trace.Event, error) {
	buf := bytes.NewBuffer(payload)
	nsyms, err := binary.ReadUvarint(buf)
	if err != nil || nsyms > 1<<24 {
		return nil, fmt.Errorf("%w: chunk symbol count", errWire)
	}
	base := sym.Len()
	for i := uint64(0); i < nsyms; i++ {
		if _, err := binary.ReadUvarint(buf); err != nil { // addr: regenerated on Register
			return nil, fmt.Errorf("%w: chunk symbol %d addr", errWire, i)
		}
		nameLen, err := binary.ReadUvarint(buf)
		if err != nil || nameLen > maxHelloName {
			return nil, fmt.Errorf("%w: chunk symbol %d name length", errWire, i)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(buf, name); err != nil {
			return nil, fmt.Errorf("%w: chunk symbol %d name", errWire, i)
		}
		if got := sym.Register(string(name)); int(got) != base+int(i) {
			return nil, fmt.Errorf("%w: chunk symbol %q re-registered (lost chunk?)", errWire, name)
		}
	}

	n, err := binary.ReadUvarint(buf)
	if err != nil || n > 1<<32 {
		return nil, fmt.Errorf("%w: chunk event count", errWire)
	}
	nsymsNow := uint64(sym.Len())
	batch = batch[:0]
	var ts int64
	for i := uint64(0); i < n; i++ {
		kindB, err := buf.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: chunk event %d kind", errWire, i)
		}
		e := trace.Event{Kind: trace.EventKind(kindB)}
		lane, err := binary.ReadUvarint(buf)
		if err != nil {
			return nil, fmt.Errorf("%w: chunk event %d lane", errWire, i)
		}
		e.Lane = uint32(lane)
		dts, err := binary.ReadVarint(buf)
		if err != nil {
			return nil, fmt.Errorf("%w: chunk event %d Δts", errWire, i)
		}
		ts += dts
		if ts < 0 {
			return nil, fmt.Errorf("%w: chunk event %d negative timestamp", errWire, i)
		}
		e.TS = time.Duration(ts)
		switch e.Kind {
		case trace.KindEnter, trace.KindExit, trace.KindMarker:
			fid, err := binary.ReadUvarint(buf)
			if err != nil || fid >= nsymsNow {
				return nil, fmt.Errorf("%w: chunk event %d func id", errWire, i)
			}
			e.FuncID = uint32(fid)
		case trace.KindSample:
			sid, err := binary.ReadUvarint(buf)
			if err != nil {
				return nil, fmt.Errorf("%w: chunk event %d sensor id", errWire, i)
			}
			e.SensorID = uint32(sid)
			milli, err := binary.ReadVarint(buf)
			if err != nil {
				return nil, fmt.Errorf("%w: chunk event %d sample value", errWire, i)
			}
			e.ValueC = float64(milli) / 1000
		case trace.KindDrop:
			aux, err := binary.ReadUvarint(buf)
			if err != nil {
				return nil, fmt.Errorf("%w: chunk event %d drop count", errWire, i)
			}
			e.Aux = aux
		default:
			return nil, fmt.Errorf("%w: chunk event %d unknown kind %d", errWire, i, kindB)
		}
		batch = append(batch, e)
	}
	if buf.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing chunk bytes", errWire, buf.Len())
	}
	return batch, nil
}
