package collect

import (
	"sort"
	"time"

	"tempest/instrument"
	"tempest/internal/store"
)

// PolicyOptions tunes the collector's adaptive-sampling policy engine —
// the feedback half of the closed loop. The engine watches each node's
// coarse instrumentation buckets (and the node's sensor statistics),
// ranks candidate functions with the same degree-seconds scoring the
// hot-spot API uses, and issues control directives that put the top
// candidates in detail mode while everything else stays in the cheap
// coarse mode. The zero value selects the defaults noted per field;
// Enabled false (the default) disables the engine entirely.
type PolicyOptions struct {
	// Enabled turns the policy engine on.
	Enabled bool
	// TopK is how many functions per node the engine nominates for
	// detail instrumentation (default 5).
	TopK int
	// Interval is the minimum time between policy evaluation rounds for
	// one node (default 2s). Rounds are evaluated lazily on ingest: a
	// silent node holds its policy.
	Interval time.Duration
	// HysteresisRounds is how many consecutive rounds a detail-mode
	// function must rank outside the top K before the engine demotes it
	// back to coarse (default 2) — the anti-flapping guard for
	// functions hovering around the cut line.
	HysteresisRounds int
	// MaxDetail caps the detail set per node even while hysteresis holds
	// demotions back (default 2*TopK). Beyond the cap, lowest-scored
	// members are demoted immediately.
	MaxDetail int
	// EventBudget is the per-round overhead budget, expressed as the
	// detail event volume (enter/exit pairs are the dominant
	// instrumentation cost) one node may ship per evaluation round
	// (default 100000). A node over budget has its allowed detail count
	// halved each round until the rate falls; it recovers one slot per
	// round under half budget. This is the backpressure that keeps the
	// fleet under the paper's <7 % overhead bound at any workload rate.
	EventBudget uint64
	// Decay is the per-round multiplicative score decay (default 0.5):
	// old heat fades so the ranking tracks the workload's present, and
	// a function must sustain heat to hold a detail slot.
	Decay float64
	// StaticPriors seeds every new node's score table with the static
	// cost model's predictions (function name → static score, any
	// positive scale) so predicted-hot functions start in detail mode
	// the moment the node first reports, instead of waiting out the
	// first measurement round — the cold-start fix. Priors are
	// normalized to a peak of 1.0 at seeding and then decay like any
	// other heat, so real degree-seconds take over as rounds complete.
	StaticPriors map[string]float64
}

func (p PolicyOptions) withDefaults() PolicyOptions {
	if p.TopK <= 0 {
		p.TopK = 5
	}
	if p.Interval <= 0 {
		p.Interval = 2 * time.Second
	}
	if p.HysteresisRounds <= 0 {
		p.HysteresisRounds = 2
	}
	if p.MaxDetail <= 0 {
		p.MaxDetail = 2 * p.TopK
	}
	if p.EventBudget == 0 {
		p.EventBudget = 100000
	}
	if p.Decay <= 0 || p.Decay >= 1 {
		p.Decay = 0.5
	}
	return p
}

// nodePolicy is one node's policy-engine state, owned (like the rest of
// nodeState) by exactly one shard worker.
type nodePolicy struct {
	// scores holds the decayed degree-seconds score per function name:
	// each round adds Δseconds-in-function × max(0, sensorAvg−sensorMin)
	// — the same units as hotspot.FunctionHeat.Score, estimated from
	// coarse buckets instead of full event streams.
	scores map[string]float64
	// acc accumulates in-function nanoseconds since the last round.
	acc map[string]int64
	// outRounds counts, per currently-detail function, consecutive
	// rounds ranked outside the top K (the hysteresis counter).
	outRounds map[string]int
	// detail is the currently nominated detail set.
	detail map[string]bool
	// allowed is the budget-adjusted detail capacity for this node.
	allowed int
	// roundEvents counts detail events shipped since the last round —
	// the overhead signal the budget throttles on.
	roundEvents uint64
	// rounds counts completed evaluation rounds.
	rounds uint64
	// seeded marks that static priors were folded into this node's
	// scores, so the cold-start seeding happens at most once.
	seeded bool
	// rev is the last issued directive revision; payload its encoding.
	// Replayed from the durable store on restart so a reborn collector
	// re-issues the exact policy its predecessor acked.
	rev     uint64
	payload []byte
	lastEval time.Time
}

// policyState returns (creating if needed) the node's policy state.
func (ns *nodeState) policyState() *nodePolicy {
	if ns.policy == nil {
		ns.policy = &nodePolicy{
			scores:    map[string]float64{},
			acc:       map[string]int64{},
			outRounds: map[string]int{},
			detail:    map[string]bool{},
		}
	}
	return ns.policy
}

// ctlFrame is a directive ready for the wire, handed from a shard
// worker to the connection handler that writes it.
type ctlFrame struct {
	rev     uint64
	payload []byte
}

// accumulateCoarse folds one coarse report into the node's pending
// round. Calls are not scored directly — time is the paper's currency —
// but a function must appear here to be ranked at all.
func (np *nodePolicy) accumulateCoarse(stats []instrument.CoarseStat) {
	for _, cs := range stats {
		if cs.Nanos > 0 {
			np.acc[cs.Name] += cs.Nanos
		} else if _, ok := np.acc[cs.Name]; !ok && cs.Calls > 0 {
			np.acc[cs.Name] += 0
		}
	}
}

// tempFactor estimates the node's thermal signal for this round: the
// hottest sensor's (mean − min) — the streaming stand-in for the
// hot-spot ranking's (AvgTemp − baseline). Sensorless rounds rank on
// time alone (factor 1), so the loop still converges in simulation.
func (sh *shard) tempFactor(ns *nodeState) float64 {
	factor := 0.0
	for _, s := range ns.builder.SensorStats() {
		if s.N == 0 {
			continue
		}
		if d := s.Avg - s.Min; d > factor {
			factor = d
		}
	}
	if factor <= 0 {
		return 1
	}
	return factor
}

// evalPolicy runs one policy round for a node if the engine is enabled
// and the round interval has elapsed. It returns a control frame when
// the round produced a new directive (which the caller's connection
// piggybacks on the next ack), nil otherwise.
func (sh *shard) evalPolicy(ns *nodeState) *ctlFrame {
	po := sh.c.opts.Policy
	if !po.Enabled {
		return nil
	}
	np := ns.policyState()
	now := sh.c.opts.Now()
	if np.lastEval.IsZero() {
		// First sighting starts the clock; scoring needs one full round —
		// unless static priors are configured, in which case the predicted
		// hot set goes to detail mode immediately.
		np.lastEval = now
		return sh.seedPriors(ns, np, po)
	}
	if now.Sub(np.lastEval) < po.Interval {
		return nil
	}
	np.lastEval = now
	np.rounds++
	sh.c.metrics.policyRounds.Add(1)

	// Fold the round's accumulation into decayed scores.
	factor := sh.tempFactor(ns)
	for name, sc := range np.scores {
		np.scores[name] = sc * po.Decay
	}
	for name, nanos := range np.acc {
		np.scores[name] += (float64(nanos) / 1e9) * factor
		delete(np.acc, name)
	}

	// Budget backpressure: shrink the allowed detail set while the node
	// ships more detail events per round than the budget, recover slowly.
	if np.allowed == 0 {
		np.allowed = po.TopK
	}
	switch {
	case np.roundEvents > po.EventBudget:
		if np.allowed > 1 {
			np.allowed /= 2
		}
		sh.c.metrics.policyThrottles.Add(1)
	case np.roundEvents < po.EventBudget/2 && np.allowed < po.TopK:
		np.allowed++
	}
	np.roundEvents = 0

	// Rank by score, descending; names tie-break for determinism.
	type cand struct {
		name  string
		score float64
	}
	ranked := make([]cand, 0, len(np.scores))
	for name, sc := range np.scores {
		ranked = append(ranked, cand{name, sc})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].name < ranked[j].name
	})
	topK := map[string]bool{}
	for i := 0; i < len(ranked) && i < np.allowed; i++ {
		if ranked[i].score > 0 {
			topK[ranked[i].name] = true
		}
	}

	// Promotions are immediate; demotions wait out the hysteresis.
	for name := range topK {
		if !np.detail[name] {
			np.detail[name] = true
		}
		delete(np.outRounds, name)
	}
	for name := range np.detail {
		if topK[name] {
			continue
		}
		np.outRounds[name]++
		if np.outRounds[name] >= po.HysteresisRounds {
			delete(np.detail, name)
			delete(np.outRounds, name)
		}
	}
	// Hard cap: evict lowest-scored members beyond MaxDetail at once.
	if len(np.detail) > po.MaxDetail {
		members := make([]cand, 0, len(np.detail))
		for name := range np.detail {
			members = append(members, cand{name, np.scores[name]})
		}
		sort.Slice(members, func(i, j int) bool {
			if members[i].score != members[j].score {
				return members[i].score > members[j].score
			}
			return members[i].name < members[j].name
		})
		for _, m := range members[po.MaxDetail:] {
			delete(np.detail, m.name)
			delete(np.outRounds, m.name)
		}
	}

	return sh.issueDirective(ns, np)
}

// seedPriors folds the configured static priors into a fresh node's
// score table, nominates the predicted top K for detail mode and issues
// the resulting directive — the cold-start path that replaces the empty
// first round. Returns nil when no priors are configured or the node
// was already seeded (directive replay after restart counts: a reborn
// collector must not clobber its predecessor's converged policy with
// static guesses).
func (sh *shard) seedPriors(ns *nodeState, np *nodePolicy, po PolicyOptions) *ctlFrame {
	if len(po.StaticPriors) == 0 || np.seeded || np.payload != nil {
		return nil
	}
	np.seeded = true
	peak := 0.0
	for _, p := range po.StaticPriors {
		if p > peak {
			peak = p
		}
	}
	if peak <= 0 {
		return nil
	}
	for name, p := range po.StaticPriors {
		if p > 0 {
			np.scores[name] = p / peak
		}
	}
	if np.allowed == 0 {
		np.allowed = po.TopK
	}
	type cand struct {
		name  string
		score float64
	}
	ranked := make([]cand, 0, len(np.scores))
	for name, sc := range np.scores {
		ranked = append(ranked, cand{name, sc})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].name < ranked[j].name
	})
	for i := 0; i < len(ranked) && i < np.allowed; i++ {
		np.detail[ranked[i].name] = true
	}
	sh.c.metrics.policySeeds.Add(1)
	return sh.issueDirective(ns, np)
}

// issueDirective encodes the node's desired set and, if it differs from
// the last issued directive, bumps the revision and persists it so a
// restarted collector re-issues the same policy. Returns the frame to
// send, nil when the policy is unchanged.
func (sh *shard) issueDirective(ns *nodeState, np *nodePolicy) *ctlFrame {
	d := instrument.Directive{Default: instrument.ModeCoarse}
	names := make([]string, 0, len(np.detail))
	for name := range np.detail {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		d.Funcs = append(d.Funcs, instrument.FuncMode{Name: name, Mode: instrument.ModeDetail})
	}
	payload := encodeControl(d)
	if np.payload != nil && string(np.payload) == string(payload) {
		return nil // unchanged; connections re-send the cached frame as needed
	}
	np.rev++
	np.payload = payload
	sh.c.metrics.policyDirectives.Add(1)
	// Persist the directive before any connection can send it: a
	// directive a shipper acted on must survive a collector restart.
	sh.persistPolicy(ns, np)
	return &ctlFrame{rev: np.rev, payload: payload}
}

// persistPolicy stores the node's current directive (FlagPolicy, Seq =
// revision). Failures degrade the shard exactly like batch persistence.
func (sh *shard) persistPolicy(ns *nodeState, np *nodePolicy) {
	if !sh.durable {
		return
	}
	err := sh.store.Append(store.Batch{
		Node:     ns.id,
		Rank:     ns.rank,
		Seq:      np.rev,
		Flags:    store.FlagPolicy,
		WallNano: sh.c.opts.Now().UnixNano(),
		Payload:  np.payload,
	})
	if err != nil {
		sh.c.opts.Logger.Error("policy append failed; shard degraded to memory-only ingest",
			"shard", sh.id, "node", ns.id, "err", err)
		sh.store.Close()
		sh.store = store.Memory{}
		sh.durable = false
		sh.c.noteDegrade()
	}
}

// currentDirective returns the node's cached directive frame for
// re-issue (reconnect handshakes), nil when none has been issued.
func (np *nodePolicy) currentDirective() *ctlFrame {
	if np == nil || np.payload == nil {
		return nil
	}
	return &ctlFrame{rev: np.rev, payload: np.payload}
}

// PolicyFunc is one detail-nominated function in a policy status.
type PolicyFunc struct {
	Name  string  `json:"name"`
	Score float64 `json:"score"`
}

// PolicyStatus is one node's policy-engine state, served by /api/policy.
type PolicyStatus struct {
	NodeID uint32 `json:"node"`
	// Rev is the latest issued directive revision (0 = none yet).
	Rev uint64 `json:"rev"`
	// Detail lists the currently nominated detail set with scores.
	Detail []PolicyFunc `json:"detail"`
	// Allowed is the budget-adjusted detail capacity; Rounds counts
	// completed evaluation rounds; Tracked counts scored functions.
	Allowed int    `json:"allowed"`
	Rounds  uint64 `json:"rounds"`
	Tracked int    `json:"tracked"`
	// Seeded reports whether this node's scores were cold-started from
	// static priors.
	Seeded bool `json:"seeded"`
}

// policyStatus snapshots one node's policy state for the API.
func (ns *nodeState) policyStatus() PolicyStatus {
	st := PolicyStatus{NodeID: ns.id, Detail: []PolicyFunc{}}
	np := ns.policy
	if np == nil {
		return st
	}
	st.Rev = np.rev
	st.Allowed = np.allowed
	st.Rounds = np.rounds
	st.Tracked = len(np.scores)
	st.Seeded = np.seeded
	for name := range np.detail {
		st.Detail = append(st.Detail, PolicyFunc{Name: name, Score: np.scores[name]})
	}
	sort.Slice(st.Detail, func(i, j int) bool {
		if st.Detail[i].Score != st.Detail[j].Score {
			return st.Detail[i].Score > st.Detail[j].Score
		}
		return st.Detail[i].Name < st.Detail[j].Name
	})
	return st
}
