package collect

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"tempest/instrument"
	"tempest/internal/introspect"
	"tempest/internal/trace"
)

// ErrQueueFull reports that a shipped batch was dropped because the
// bounded send queue was at capacity (the collector link is down or
// slower than the node produces events).
var ErrQueueFull = errors.New("collect: ship queue full, batch dropped")

// ErrShipperClosed reports a Ship call after Close.
var ErrShipperClosed = errors.New("collect: shipper closed")

// ShipperOptions tunes the node-side shipping client. The zero value
// selects the defaults noted per field.
type ShipperOptions struct {
	// QueueLen bounds the unacknowledged chunk queue (default 256).
	// When the queue is full, Ship drops the batch and accounts for it
	// (Stats().DroppedSegments / DroppedEvents) instead of blocking the
	// instrumented program — backpressure never propagates into the
	// profiled code path.
	QueueLen int
	// DialTimeout bounds one dial attempt (default 2s).
	DialTimeout time.Duration
	// DialBackoffBase/DialBackoffMax shape the jitterless reconnect
	// backoff: the delay starts at base and doubles up to max (defaults
	// 20ms / 1s). The shipper redials forever; only Close stops it.
	DialBackoffBase time.Duration
	DialBackoffMax  time.Duration
	// HandshakeTimeout bounds the hello/resume exchange (default 5s).
	HandshakeTimeout time.Duration
	// WriteTimeout is the per-frame write deadline (default 10s).
	WriteTimeout time.Duration
	// FlushTimeout bounds how long Close waits for the queue to drain
	// (default 5s).
	FlushTimeout time.Duration
	// Dial overrides the dial function — the fault-injection hook
	// (default net.DialTimeout; matches faultinject.Dialer).
	Dial func(network, addr string, timeout time.Duration) (net.Conn, error)
	// Sleep overrides backoff sleeping (default time.Sleep).
	Sleep func(time.Duration)
	// OnControl receives control directives the collector piggybacks on
	// the downstream channel — full desired instrumentation sets, already
	// deduplicated by revision (stale or repeated revisions never reach
	// the callback). It runs on the shipper's downstream reader
	// goroutine; tempest-live wires LiveSession.ApplyControl here, which
	// only queues, so the reader is never blocked. Nil ignores control
	// frames (they are still revision-tracked and counted).
	OnControl func(instrument.Directive)
	// Introspect receives the shipper's self-observability metrics (queue
	// depth, resend/reconnect counters, ack round-trip latency). Nil means
	// the process-wide introspect.Default() registry.
	Introspect *introspect.Registry
}

func (o ShipperOptions) withDefaults() ShipperOptions {
	if o.QueueLen == 0 {
		o.QueueLen = 256
	}
	if o.DialTimeout == 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.DialBackoffBase == 0 {
		o.DialBackoffBase = 20 * time.Millisecond
	}
	if o.DialBackoffMax == 0 {
		o.DialBackoffMax = time.Second
	}
	if o.HandshakeTimeout == 0 {
		o.HandshakeTimeout = 5 * time.Second
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.FlushTimeout == 0 {
		o.FlushTimeout = 5 * time.Second
	}
	if o.Dial == nil {
		o.Dial = net.DialTimeout
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	return o
}

// ShipperStats is the shipper's cumulative accounting.
type ShipperStats struct {
	// EnqueuedSegments/EnqueuedEvents made it into the send queue.
	EnqueuedSegments uint64
	EnqueuedEvents   uint64
	// AckedSegments were confirmed delivered by the collector.
	AckedSegments uint64
	// DroppedSegments/DroppedEvents were lost: rejected by a full queue,
	// or still undelivered when Close's flush deadline expired.
	DroppedSegments uint64
	DroppedEvents   uint64
	// Resends counts frames rewritten after a connection died.
	Resends uint64
	// Reconnects counts connection (re-)establishments after the first.
	Reconnects uint64
	// DialFailures counts failed dial attempts.
	DialFailures uint64
	// CoarseSegments counts coarse bucket reports accepted into the queue.
	CoarseSegments uint64
	// ControlFrames counts control directives received on the downstream
	// channel; ControlStale counts those dropped as duplicate/stale
	// revisions (reconnect re-issues, reordered frames).
	ControlFrames uint64
	ControlStale  uint64
}

// chunk is one queued, already-encoded frame payload.
type chunk struct {
	seq     uint64
	kind    byte
	payload []byte
	events  int
	sent    bool      // sent at least once on some connection
	sentAt  time.Time // when the latest send hit the wire (for ack RTT)
}

// Shipper streams trace batches from one node to a collector. It is the
// node side of fleet mode: Ship encodes a drained event batch into a
// self-contained chunk and enqueues it; a background sender maintains
// the connection (dial backoff, reconnect, resend from the collector's
// resume cursor) and retires chunks as the collector acknowledges them.
// Chunks survive in the queue until acknowledged, so a link that dies
// mid-frame loses nothing — the collector's sequence cursor drops the
// duplicate halves.
//
// Shutdown contract: Close flushes the bounded queue with a deadline
// (ShipperOptions.FlushTimeout). It blocks until every enqueued chunk is
// acknowledged or the deadline expires, then reports loss explicitly:
// a nil error means the collector holds everything that was ever
// enqueued; otherwise the error wraps ErrQueueFull drops and/or the
// flush-deadline remainder, and Stats().DroppedSegments/DroppedEvents
// hold the exact counts. A tempest-live exit therefore never loses
// shipped data silently.
type Shipper struct {
	addr   string
	nodeID uint32
	rank   uint32
	opts   ShipperOptions

	mu         sync.Mutex
	cond       *sync.Cond
	queue      []chunk // unacked, FIFO by seq
	cursor     int     // index into queue of the next chunk to send
	nextSeq    uint64
	symsSent   int
	pendingDrp uint64 // events dropped but not yet accounted in a shipped KindDrop
	closing    bool   // Ship rejects new work; sender drains then exits
	stopped    bool   // sender must exit now; undelivered chunks are lost
	connBroken bool   // current connection died; sender must redial
	conn       net.Conn
	stats      ShipperStats
	lastRev    uint64 // highest control revision seen (dedup/reorder guard)

	ackRTT *introspect.Distribution // send-to-ack latency per retired chunk

	done chan struct{}
}

// NewShipper starts a shipper for one node's stream to the collector at
// addr. The background sender runs until Close.
func NewShipper(addr string, nodeID, rank uint32, opts ShipperOptions) *Shipper {
	s := &Shipper{
		addr:   addr,
		nodeID: nodeID,
		rank:   rank,
		opts:   opts.withDefaults(),
		done:   make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.registerIntrospect()
	go s.run()
	return s
}

// registerIntrospect wires the shipper's accounting into its introspect
// registry. Counters are sampled from Stats at render time (FuncCounter),
// so a re-created shipper in the same process rebinds the series rather
// than double-counting.
func (s *Shipper) registerIntrospect() {
	ir := s.opts.Introspect
	if ir == nil {
		ir = introspect.Default()
	}
	s.ackRTT = ir.Distribution("tempest_ship_ack_rtt_seconds", "Send-to-ack round trip per acknowledged chunk.")
	ir.Func("tempest_ship_queue_depth", "Unacknowledged chunks in the shipper's bounded send queue.",
		func() float64 { return float64(s.Queued()) })
	for _, m := range []struct {
		name, help string
		get        func(ShipperStats) uint64
	}{
		{"tempest_ship_enqueued_segments_total", "Chunks accepted into the send queue.", func(st ShipperStats) uint64 { return st.EnqueuedSegments }},
		{"tempest_ship_acked_segments_total", "Chunks the collector confirmed delivered.", func(st ShipperStats) uint64 { return st.AckedSegments }},
		{"tempest_ship_dropped_segments_total", "Chunks lost to a full queue or the close deadline.", func(st ShipperStats) uint64 { return st.DroppedSegments }},
		{"tempest_ship_resends_total", "Frames rewritten after a connection died.", func(st ShipperStats) uint64 { return st.Resends }},
		{"tempest_ship_reconnects_total", "Connection re-establishments after the first.", func(st ShipperStats) uint64 { return st.Reconnects }},
		{"tempest_ship_dial_failures_total", "Failed dial attempts.", func(st ShipperStats) uint64 { return st.DialFailures }},
		{"tempest_ship_coarse_segments_total", "Coarse bucket reports accepted into the send queue.", func(st ShipperStats) uint64 { return st.CoarseSegments }},
		{"tempest_ship_control_frames_total", "Control directives received from the collector.", func(st ShipperStats) uint64 { return st.ControlFrames }},
		{"tempest_ship_control_stale_total", "Control directives dropped as stale/duplicate revisions.", func(st ShipperStats) uint64 { return st.ControlStale }},
	} {
		get := m.get
		ir.FuncCounter(m.name, m.help, func() float64 { return float64(get(s.Stats())) })
	}
}

// Ship encodes one drained batch (plus any symbols registered since the
// previous call) and enqueues it. It never blocks on the network: when
// the bounded queue is full the batch is dropped, accounted in Stats,
// and ErrQueueFull returned; the next accepted batch carries a KindDrop
// event so the collector-side profile records the loss too. Batches must
// arrive in record order (per-lane order is the Builder's contract);
// LiveSession's drain loop guarantees this.
func (s *Shipper) Ship(events []trace.Event, sym *trace.SymTab) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		s.stats.DroppedSegments++
		s.stats.DroppedEvents += uint64(len(events))
		return ErrShipperClosed
	}
	if len(events) == 0 && (sym == nil || sym.Len() == s.symsSent) {
		return nil
	}
	if len(s.queue) >= s.opts.QueueLen {
		s.stats.DroppedSegments++
		s.stats.DroppedEvents += uint64(len(events))
		s.pendingDrp += uint64(len(events))
		return ErrQueueFull
	}
	if s.pendingDrp > 0 && len(events) > 0 {
		// Account the loss inside the stream itself: the collector's
		// Builder folds this into the profile's DroppedEvents.
		drop := trace.Event{Kind: trace.KindDrop, TS: events[0].TS, Lane: events[0].Lane, Aux: s.pendingDrp}
		events = append([]trace.Event{drop}, events...)
		s.pendingDrp = 0
	}
	payload, symCount, err := encodeChunk(events, sym, s.symsSent)
	if err != nil {
		s.stats.DroppedSegments++
		s.stats.DroppedEvents += uint64(len(events))
		return err
	}
	s.symsSent = symCount
	s.queue = append(s.queue, chunk{seq: s.nextSeq, kind: frameData, payload: payload, events: len(events)})
	s.nextSeq++
	s.stats.EnqueuedSegments++
	s.stats.EnqueuedEvents += uint64(len(events))
	s.cond.Broadcast()
	return nil
}

// ShipCoarse enqueues one coarse instrumentation bucket report (the
// output of instrument.FlushCoarse) for the collector's policy engine.
// Coarse reports ride the same sequenced, checksummed, deduplicated
// frame stream as event chunks, so the durable store's replay stays
// gap-free, but they are advisory: a full queue drops the report (the
// buckets' next flush re-accumulates) and the collector never lets a
// bad coarse frame poison the node's profile.
func (s *Shipper) ShipCoarse(stats []instrument.CoarseStat) error {
	if len(stats) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return ErrShipperClosed
	}
	if len(s.queue) >= s.opts.QueueLen {
		s.stats.DroppedSegments++
		return ErrQueueFull
	}
	s.queue = append(s.queue, chunk{seq: s.nextSeq, kind: frameCoarse, payload: encodeCoarse(stats)})
	s.nextSeq++
	s.stats.EnqueuedSegments++
	s.stats.CoarseSegments++
	s.cond.Broadcast()
	return nil
}

// Stats returns a snapshot of the shipper's accounting.
func (s *Shipper) Stats() ShipperStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Queued reports the number of unacknowledged chunks.
func (s *Shipper) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Close flushes and stops the shipper. It blocks until every enqueued
// chunk is acknowledged by the collector or FlushTimeout expires —
// whichever comes first — then tears the connection down. The returned
// error is nil only if nothing was ever dropped: otherwise it reports
// the queue-full drops accumulated while running and any chunks the
// flush deadline abandoned (also visible in Stats). Close is idempotent;
// concurrent Ship calls return ErrShipperClosed.
func (s *Shipper) Close() error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		<-s.done
		return s.closeErr()
	}
	s.closing = true
	s.cond.Broadcast()
	deadline := time.AfterFunc(s.opts.FlushTimeout, func() {
		s.mu.Lock()
		s.abortLocked()
		s.mu.Unlock()
	})
	for len(s.queue) > 0 && !s.stopped {
		s.cond.Wait()
	}
	s.abortLocked()
	s.mu.Unlock()
	deadline.Stop()
	<-s.done
	return s.closeErr()
}

// abortLocked forces the sender to exit, counting undelivered chunks as
// dropped. Callers hold s.mu.
func (s *Shipper) abortLocked() {
	if s.stopped {
		return
	}
	s.stopped = true
	for _, c := range s.queue {
		s.stats.DroppedSegments++
		s.stats.DroppedEvents += uint64(c.events)
	}
	s.queue = nil
	s.cursor = 0
	if s.conn != nil {
		s.conn.Close()
	}
	s.cond.Broadcast()
}

// closeErr summarises loss after shutdown.
func (s *Shipper) closeErr() error {
	s.mu.Lock()
	st := s.stats
	s.mu.Unlock()
	if st.DroppedSegments == 0 {
		return nil
	}
	return fmt.Errorf("%w: %d segments (%d events) undelivered", ErrQueueFull, st.DroppedSegments, st.DroppedEvents)
}

// run is the background sender: connect, handshake, stream frames,
// repeat on failure until stopped.
func (s *Shipper) run() {
	defer close(s.done)
	first := true
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closing && !s.stopped {
			s.cond.Wait()
		}
		if s.stopped || (s.closing && len(s.queue) == 0) {
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()

		conn := s.connect()
		if conn == nil {
			return // stopped while dialling
		}
		if !first {
			s.mu.Lock()
			s.stats.Reconnects++
			s.mu.Unlock()
		}
		first = false
		resume, err := s.handshake(conn)
		if err != nil {
			conn.Close()
			// A dial that succeeds but whose handshake dies (a proxy that
			// accepts and drops, a collector mid-restart) must not spin.
			s.opts.Sleep(s.opts.DialBackoffBase)
			continue
		}
		s.mu.Lock()
		s.conn = conn
		s.connBroken = false
		// Trim everything the collector already has.
		for len(s.queue) > 0 && s.queue[0].seq < resume {
			s.retireHeadLocked()
		}
		s.cursor = 0
		s.mu.Unlock()

		ackDone := make(chan struct{})
		go s.readDownstream(conn, ackDone)
		s.sendLoop(conn)
		conn.Close()
		<-ackDone
		s.mu.Lock()
		s.conn = nil
		s.cursor = 0 // resend unacked chunks on the next connection
		s.mu.Unlock()
	}
}

// retireHeadLocked pops the acknowledged queue head. Callers hold s.mu.
func (s *Shipper) retireHeadLocked() {
	if at := s.queue[0].sentAt; !at.IsZero() {
		s.ackRTT.Observe(time.Since(at).Seconds())
	}
	s.queue = s.queue[1:]
	if s.cursor > 0 {
		s.cursor--
	}
	s.stats.AckedSegments++
}

// connect dials with capped exponential backoff until it succeeds or the
// shipper is stopped (returns nil).
func (s *Shipper) connect() net.Conn {
	backoff := s.opts.DialBackoffBase
	for attempt := 0; ; attempt++ {
		s.mu.Lock()
		stopped := s.stopped
		s.mu.Unlock()
		if stopped {
			return nil
		}
		if attempt > 0 {
			s.opts.Sleep(backoff)
			if backoff *= 2; backoff > s.opts.DialBackoffMax {
				backoff = s.opts.DialBackoffMax
			}
		}
		conn, err := s.opts.Dial("tcp", s.addr, s.opts.DialTimeout)
		if err != nil {
			s.mu.Lock()
			s.stats.DialFailures++
			s.mu.Unlock()
			continue
		}
		return conn
	}
}

// handshake sends the hello and reads the collector's resume cursor —
// a downstream ack frame. The collector may follow it immediately with
// its current control directive; that (and everything after) belongs to
// the downstream reader, which starts once the handshake returns.
func (s *Shipper) handshake(conn net.Conn) (uint64, error) {
	if s.opts.HandshakeTimeout > 0 {
		conn.SetDeadline(time.Now().Add(s.opts.HandshakeTimeout))
		defer conn.SetDeadline(time.Time{})
	}
	if err := writeHello(conn, hello{NodeID: s.nodeID, Rank: s.rank}); err != nil {
		return 0, err
	}
	df, _, err := readDown(conn, nil)
	if err != nil {
		return 0, err
	}
	if df.kind != downAck {
		return 0, fmt.Errorf("%w: handshake expected resume ack, got kind %d", errWire, df.kind)
	}
	return df.next, nil
}

// sendLoop streams queued frames over one connection until it breaks,
// the shipper stops, or a graceful close finishes draining.
func (s *Shipper) sendLoop(conn net.Conn) {
	for {
		s.mu.Lock()
		for s.cursor >= len(s.queue) && !s.stopped && !s.connBroken {
			if s.closing && len(s.queue) == 0 {
				break
			}
			s.cond.Wait()
		}
		if s.stopped || s.connBroken || (s.closing && len(s.queue) == 0) {
			s.mu.Unlock()
			return
		}
		c := s.queue[s.cursor]
		resend := c.sent
		s.queue[s.cursor].sent = true
		s.queue[s.cursor].sentAt = time.Now()
		s.cursor++
		if resend {
			s.stats.Resends++
		}
		s.mu.Unlock()

		if s.opts.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
		}
		if err := writeFrame(conn, c.seq, c.kind, c.payload); err != nil {
			return
		}
		conn.SetWriteDeadline(time.Time{})
	}
}

// readDownstream consumes the collector→shipper channel: acks retire
// queue heads, control frames carry instrumentation directives. Any
// read or decode error — including a checksum-corrupt control frame —
// flags the sender to redial rather than guessing at stream state; the
// forward queue is untouched, so exactly-once delivery is preserved and
// the collector re-issues its policy on the reconnect handshake.
func (s *Shipper) readDownstream(conn net.Conn, done chan<- struct{}) {
	defer close(done)
	var buf []byte
	for {
		df, nbuf, err := readDown(conn, buf)
		if err != nil {
			s.mu.Lock()
			s.connBroken = true
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		buf = nbuf
		switch df.kind {
		case downAck:
			s.mu.Lock()
			for len(s.queue) > 0 && s.queue[0].seq < df.next {
				s.retireHeadLocked()
			}
			s.cond.Broadcast()
			s.mu.Unlock()
		case downCtl:
			s.mu.Lock()
			s.stats.ControlFrames++
			stale := df.rev <= s.lastRev
			if stale {
				s.stats.ControlStale++
			} else {
				s.lastRev = df.rev
			}
			cb := s.opts.OnControl
			s.mu.Unlock()
			if !stale && cb != nil {
				cb(df.ctl)
			}
		}
	}
}
