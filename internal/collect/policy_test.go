package collect

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"tempest/instrument"
)

// fakeClock is an injectable Options.Now for deterministic policy rounds.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func TestControlRoundTrip(t *testing.T) {
	d := instrument.Directive{
		Default: instrument.ModeCoarse,
		Funcs: []instrument.FuncMode{
			{Name: "pkg.Hot", Mode: instrument.ModeDetail},
			{Name: "pkg.Muted", Mode: instrument.ModeOff},
		},
	}
	got, err := decodeControl(encodeControl(d))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, d)
	}
	// The empty desired set must round-trip too (a directive that demotes
	// everything back to the default).
	empty := instrument.Directive{Default: instrument.ModeDetail}
	got, err = decodeControl(encodeControl(empty))
	if err != nil {
		t.Fatal(err)
	}
	if got.Default != instrument.ModeDetail || len(got.Funcs) != 0 {
		t.Fatalf("empty round trip mismatch: %+v", got)
	}
}

func TestControlDecodeRejectsMalformed(t *testing.T) {
	good := encodeControl(instrument.Directive{
		Default: instrument.ModeCoarse,
		Funcs:   []instrument.FuncMode{{Name: "f", Mode: instrument.ModeDetail}},
	})
	if _, err := decodeControl(append(append([]byte(nil), good...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, err := decodeControl(good[:len(good)-1]); err == nil {
		t.Fatal("truncated payload accepted")
	}
	bad := append([]byte(nil), good...)
	bad[0] = byte(instrument.ModeOff) + 1 // default mode out of range
	if _, err := decodeControl(bad); err == nil {
		t.Fatal("out-of-range default mode accepted")
	}
}

func TestCoarseRoundTrip(t *testing.T) {
	stats := []instrument.CoarseStat{
		{Name: "pkg.A", Calls: 12, Nanos: 34_000_000},
		{Name: "pkg.B", Calls: 1, Nanos: 0},
	}
	got, err := decodeCoarse(encodeCoarse(stats))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, stats) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, stats)
	}
	if _, err := decodeCoarse(append(encodeCoarse(stats), 0xff)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestReadDownAckAndCorruptControl(t *testing.T) {
	var buf bytes.Buffer
	if err := writeAck(&buf, 42); err != nil {
		t.Fatal(err)
	}
	df, _, err := readDown(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if df.kind != downAck || df.next != 42 {
		t.Fatalf("ack round trip: %+v", df)
	}

	payload := encodeControl(instrument.Directive{Default: instrument.ModeCoarse})
	buf.Reset()
	if err := writeControl(&buf, 3, payload); err != nil {
		t.Fatal(err)
	}
	df, _, err = readDown(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if df.kind != downCtl || df.rev != 3 || df.ctl.Rev != 3 {
		t.Fatalf("control round trip: %+v", df)
	}

	// A corrupt control frame must be an error, not a guess: the shipper
	// drops the connection and the collector re-issues on reconnect.
	buf.Reset()
	writeControl(&buf, 4, payload)
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0x80 // flip a payload bit; stored crc no longer matches
	if _, _, err := readDown(bytes.NewReader(raw), nil); err == nil {
		t.Fatal("corrupt control frame accepted")
	}

	if _, _, err := readDown(bytes.NewReader([]byte{0x7f}), nil); err == nil {
		t.Fatal("unknown downstream kind accepted")
	}
}

// drive sends one coarse report through the node's shard at the next
// sequence number and returns any piggybacked directive.
type policyDriver struct {
	t    *testing.T
	sh   *shard
	node uint32
	seq  uint64
}

func (pd *policyDriver) coarse(stats []instrument.CoarseStat) *ctlFrame {
	pd.t.Helper()
	resp := pd.sh.call(shardReq{op: opCoarse, node: pd.node, seq: pd.seq, chunk: encodeCoarse(stats)})
	if resp.err != nil {
		pd.t.Fatalf("opCoarse seq %d: %v", pd.seq, resp.err)
	}
	pd.seq++
	return resp.ctl
}

func TestPolicyNominatesTopKAndConverges(t *testing.T) {
	clk := newFakeClock()
	c := New(Options{Shards: 1, Now: clk.Now, Policy: PolicyOptions{
		Enabled: true, TopK: 1, Interval: 100 * time.Millisecond, HysteresisRounds: 2,
	}})
	defer c.Close()
	const node = 7
	sh := c.shardFor(node)
	if resp := sh.call(shardReq{op: opResume, node: node}); resp.ctl != nil {
		t.Fatal("directive re-issued before any policy exists")
	}
	pd := &policyDriver{t: t, sh: sh, node: node}

	hot := []instrument.CoarseStat{{Name: "hot", Calls: 10, Nanos: int64(500 * time.Millisecond)}}
	cold := []instrument.CoarseStat{{Name: "cold", Calls: 10, Nanos: int64(2 * time.Second)}}

	// First sighting only starts the round clock — scoring needs one full
	// interval of accumulation.
	if ctl := pd.coarse(hot); ctl != nil {
		t.Fatalf("directive on first sighting: rev %d", ctl.rev)
	}
	clk.Advance(150 * time.Millisecond)
	ctl := pd.coarse(hot)
	if ctl == nil {
		t.Fatal("no directive after a full round of hot time")
	}
	if ctl.rev != 1 {
		t.Fatalf("first directive rev = %d, want 1", ctl.rev)
	}
	d, err := decodeControl(ctl.payload)
	if err != nil {
		t.Fatal(err)
	}
	if d.Default != instrument.ModeCoarse {
		t.Fatalf("directive default = %v, want coarse", d.Default)
	}
	if len(d.Funcs) != 1 || d.Funcs[0].Name != "hot" || d.Funcs[0].Mode != instrument.ModeDetail {
		t.Fatalf("round 1 detail set = %+v, want [hot detail]", d.Funcs)
	}

	// The workload shifts: cold now dominates. Promotion is immediate, so
	// round 2 carries both (hot rides out its hysteresis window)…
	clk.Advance(150 * time.Millisecond)
	ctl = pd.coarse(cold)
	if ctl == nil || ctl.rev != 2 {
		t.Fatalf("round 2 directive = %+v, want rev 2", ctl)
	}
	d, _ = decodeControl(ctl.payload)
	if names := funcNames(d); !reflect.DeepEqual(names, []string{"cold", "hot"}) {
		t.Fatalf("round 2 detail set = %v, want [cold hot]", names)
	}

	// …and round 3 demotes hot after its second consecutive round outside
	// the top K.
	clk.Advance(150 * time.Millisecond)
	ctl = pd.coarse(cold)
	if ctl == nil || ctl.rev != 3 {
		t.Fatalf("round 3 directive = %+v, want rev 3", ctl)
	}
	d, _ = decodeControl(ctl.payload)
	if names := funcNames(d); !reflect.DeepEqual(names, []string{"cold"}) {
		t.Fatalf("round 3 detail set = %v, want [cold]", names)
	}

	// A stable workload produces no further directives: unchanged desired
	// sets never bump the revision.
	clk.Advance(150 * time.Millisecond)
	if ctl := pd.coarse(cold); ctl != nil {
		t.Fatalf("unchanged policy re-issued as rev %d", ctl.rev)
	}

	sts := c.PolicyStatuses()
	if len(sts) != 1 {
		t.Fatalf("policy statuses = %d nodes, want 1", len(sts))
	}
	st := sts[0]
	if st.NodeID != node || st.Rev != 3 || st.Rounds != 4 {
		t.Fatalf("status = %+v, want node %d rev 3 rounds 4", st, node)
	}
	if len(st.Detail) != 1 || st.Detail[0].Name != "cold" {
		t.Fatalf("status detail = %+v, want [cold]", st.Detail)
	}
	// On reconnect the handshake re-issues the latest directive.
	resp := sh.call(shardReq{op: opResume, node: node})
	if resp.ctl == nil || resp.ctl.rev != 3 {
		t.Fatalf("resume re-issue = %+v, want rev 3", resp.ctl)
	}
}

func funcNames(d instrument.Directive) []string {
	names := make([]string, 0, len(d.Funcs))
	for _, f := range d.Funcs {
		names = append(names, f.Name)
	}
	return names
}

func TestPolicyEventBudgetThrottles(t *testing.T) {
	clk := newFakeClock()
	c := New(Options{Shards: 1, Now: clk.Now, Policy: PolicyOptions{
		Enabled: true, TopK: 4, Interval: 100 * time.Millisecond, EventBudget: 10,
	}})
	defer c.Close()
	const node = 3
	sh := c.shardFor(node)
	sh.call(shardReq{op: opResume, node: node})
	pd := &policyDriver{t: t, sh: sh, node: node}

	report := []instrument.CoarseStat{
		{Name: "hot1", Calls: 10, Nanos: int64(4 * time.Second)},
		{Name: "hot2", Calls: 10, Nanos: int64(3 * time.Second)},
		{Name: "hot3", Calls: 10, Nanos: int64(2 * time.Second)},
		{Name: "hot4", Calls: 10, Nanos: int64(1 * time.Second)},
	}
	pd.coarse(report) // first sighting starts the clock

	// A detail chunk with ~30 events: well over the 10-event round budget.
	tr := buildTrace(t, node, []string{"a", "b"}, 10)
	payload, _, err := encodeChunk(tr.Events, tr.Sym, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp := sh.call(shardReq{op: opChunk, node: node, seq: pd.seq, chunk: payload}); resp.err != nil {
		t.Fatal(resp.err)
	}
	pd.seq++

	clk.Advance(150 * time.Millisecond)
	ctl := pd.coarse(report)
	if ctl == nil {
		t.Fatal("no directive from the throttled round")
	}
	d, _ := decodeControl(ctl.payload)
	// Over budget: allowed halves from TopK 4 to 2, and the detail set is
	// cut to the two highest-scored functions.
	if names := funcNames(d); !reflect.DeepEqual(names, []string{"hot1", "hot2"}) {
		t.Fatalf("throttled detail set = %v, want [hot1 hot2]", names)
	}
	if st := c.PolicyStatuses()[0]; st.Allowed != 2 {
		t.Fatalf("allowed after throttle = %d, want 2", st.Allowed)
	}
	if got := c.metrics.policyThrottles.Value(); got != 1 {
		t.Fatalf("throttle counter = %d, want 1", got)
	}

	// A quiet round (no detail events) recovers one slot.
	clk.Advance(150 * time.Millisecond)
	pd.coarse(report)
	if st := c.PolicyStatuses()[0]; st.Allowed != 3 {
		t.Fatalf("allowed after recovery round = %d, want 3", st.Allowed)
	}
}

func TestPolicyDirectivePersistedAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	opts := Options{Shards: 2, Now: clk.Now, StoreDir: dir, Policy: PolicyOptions{
		Enabled: true, TopK: 1, Interval: 100 * time.Millisecond,
	}}
	c := New(opts)
	const node = 5
	sh := c.shardFor(node)
	sh.call(shardReq{op: opResume, node: node})
	pd := &policyDriver{t: t, sh: sh, node: node}
	hot := []instrument.CoarseStat{{Name: "hot", Calls: 4, Nanos: int64(time.Second)}}
	pd.coarse(hot)
	clk.Advance(150 * time.Millisecond)
	ctl := pd.coarse(hot)
	if ctl == nil || ctl.rev != 1 {
		t.Fatalf("directive = %+v, want rev 1", ctl)
	}
	wantPayload := append([]byte(nil), ctl.payload...)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// The reborn collector must re-issue exactly what its predecessor
	// last told the node, from the durable store alone.
	c2 := New(opts)
	defer c2.Close()
	if n := c2.DegradedStoreShards(); n != 0 {
		t.Fatalf("%d shards degraded on reopen", n)
	}
	resp := c2.shardFor(node).call(shardReq{op: opResume, node: node})
	if resp.ctl == nil {
		t.Fatal("no directive re-issued after restart")
	}
	if resp.ctl.rev != 1 || !bytes.Equal(resp.ctl.payload, wantPayload) {
		t.Fatalf("restart re-issue rev %d payload %x, want rev 1 payload %x",
			resp.ctl.rev, resp.ctl.payload, wantPayload)
	}
	// The ship cursor also survived: both coarse reports were persisted.
	if resp.resume != pd.seq {
		t.Fatalf("resume cursor after restart = %d, want %d", resp.resume, pd.seq)
	}
	sts := c2.PolicyStatuses()
	if len(sts) != 1 || len(sts[0].Detail) != 1 || sts[0].Detail[0].Name != "hot" {
		t.Fatalf("restored policy status = %+v, want detail [hot]", sts)
	}
}

// fakeShipServer accepts one shipper connection, completes the handshake
// and hands the connection to fn.
func fakeShipServer(t *testing.T, fn func(conn net.Conn, br *bufio.Reader) error) (addr string, done chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	done = make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		var magic [4]byte
		if _, err := io.ReadFull(br, magic[:]); err != nil {
			done <- err
			return
		}
		if _, err := readHelloTail(br); err != nil {
			done <- err
			return
		}
		if err := writeAck(conn, 0); err != nil {
			done <- err
			return
		}
		done <- fn(conn, br)
	}()
	return ln.Addr().String(), done
}

func TestShipperControlDedupedByRevision(t *testing.T) {
	d := instrument.Directive{
		Default: instrument.ModeCoarse,
		Funcs:   []instrument.FuncMode{{Name: "hot", Mode: instrument.ModeDetail}},
	}
	payload := encodeControl(d)
	addr, done := fakeShipServer(t, func(conn net.Conn, br *bufio.Reader) error {
		// One live directive, one duplicate revision, one stale revision:
		// exactly one may reach the callback.
		if err := writeControl(conn, 1, payload); err != nil {
			return err
		}
		if err := writeControl(conn, 1, payload); err != nil {
			return err
		}
		if err := writeControl(conn, 0, payload); err != nil {
			return err
		}
		seq, _, _, _, err := readFrame(br, nil)
		if err != nil {
			return err
		}
		return writeAck(conn, seq+1)
	})

	var mu sync.Mutex
	var got []instrument.Directive
	s := NewShipper(addr, 9, 0, ShipperOptions{
		FlushTimeout: 10 * time.Second,
		OnControl: func(d instrument.Directive) {
			mu.Lock()
			got = append(got, d)
			mu.Unlock()
		},
	})
	tr := buildTrace(t, 9, []string{"f"}, 4)
	if err := s.Ship(tr.Events, tr.Sym); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("fake server: %v", err)
	}
	st := s.Stats()
	if st.ControlFrames != 3 || st.ControlStale != 2 {
		t.Fatalf("control stats = %d frames / %d stale, want 3 / 2", st.ControlFrames, st.ControlStale)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("OnControl fired %d times, want 1: %+v", len(got), got)
	}
	if got[0].Rev != 1 || !reflect.DeepEqual(funcNames(got[0]), []string{"hot"}) {
		t.Fatalf("delivered directive = %+v, want rev 1 [hot]", got[0])
	}
}

func TestShipperCorruptControlRedialsWithoutLosingFrames(t *testing.T) {
	payload := encodeControl(instrument.Directive{Default: instrument.ModeCoarse})
	// First connection: handshake, then a checksum-corrupt control frame.
	// The shipper must drop the link rather than guess at stream state.
	firstAddr, firstDone := fakeShipServer(t, func(conn net.Conn, br *bufio.Reader) error {
		frame := make([]byte, downHdrLen+len(payload))
		frame[0] = downCtl
		rev := uint64(1)
		binary.LittleEndian.PutUint64(frame[1:9], rev)
		binary.LittleEndian.PutUint32(frame[9:13], uint32(len(payload)))
		binary.LittleEndian.PutUint32(frame[13:17], crc32.ChecksumIEEE(payload)^0xdeadbeef)
		copy(frame[downHdrLen:], payload)
		_, err := conn.Write(frame)
		return err
	})
	_ = firstAddr

	// The redial lands on a healthy collector: the forward frame must
	// arrive exactly once and the session must drain cleanly.
	c, addr := startCollector(t, Options{})
	dialed := 0
	var dialMu sync.Mutex
	controls := 0
	s := NewShipper(addr, 12, 0, ShipperOptions{
		FlushTimeout:    10 * time.Second,
		DialBackoffBase: time.Millisecond,
		DialBackoffMax:  5 * time.Millisecond,
		OnControl:       func(instrument.Directive) { controls++ },
		Dial: func(network, target string, timeout time.Duration) (net.Conn, error) {
			dialMu.Lock()
			dialed++
			first := dialed == 1
			dialMu.Unlock()
			if first {
				return net.DialTimeout(network, firstAddr, timeout)
			}
			return net.DialTimeout(network, target, timeout)
		},
	})
	tr := buildTrace(t, 12, []string{"compute", "io"}, 30)
	shipTrace(t, s, tr, 5)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	<-firstDone // server exits once its corrupt frame is written
	st := s.Stats()
	if st.Reconnects < 1 {
		t.Fatalf("reconnects = %d, want >= 1 (corrupt control must redial)", st.Reconnects)
	}
	if st.DroppedSegments != 0 {
		t.Fatalf("dropped %d segments across the redial", st.DroppedSegments)
	}
	if controls != 0 {
		t.Fatalf("corrupt control frame reached the callback %d times", controls)
	}
	np, err := c.NodeProfile(12)
	if err != nil {
		t.Fatal(err)
	}
	want := renderNode(t, offlineNodeProfile(t, tr, c.opts.Unit))
	if got := renderNode(t, np); got != want {
		t.Fatalf("profile diverged after corrupt-control redial:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestPolicyStaticPriorSeeding pins the cold-start fix: with static
// priors configured, a node's very first sighting yields an immediate
// directive putting the predicted-hot set in detail mode, and real
// measurement rounds then take over from the decayed priors.
func TestPolicyStaticPriorSeeding(t *testing.T) {
	clk := newFakeClock()
	c := New(Options{Shards: 1, Now: clk.Now, Policy: PolicyOptions{
		Enabled: true, TopK: 2, Interval: 100 * time.Millisecond, HysteresisRounds: 1,
		StaticPriors: map[string]float64{
			"predictedHot":  9.5e8,
			"predictedWarm": 3.2e8,
			"predictedCold": 1.1e5,
		},
	}})
	defer c.Close()
	const node = 3
	sh := c.shardFor(node)
	pd := &policyDriver{t: t, sh: sh, node: node}

	// First sighting: no measurements yet, but the priors produce rev 1
	// with the predicted top-2 in detail mode.
	ctl := pd.coarse(nil)
	if ctl == nil {
		t.Fatal("no directive on first sighting despite static priors")
	}
	if ctl.rev != 1 {
		t.Fatalf("seed directive rev = %d, want 1", ctl.rev)
	}
	d, err := decodeControl(ctl.payload)
	if err != nil {
		t.Fatal(err)
	}
	if names := funcNames(d); !reflect.DeepEqual(names, []string{"predictedHot", "predictedWarm"}) {
		t.Fatalf("seeded detail set = %v, want [predictedHot predictedWarm]", names)
	}

	st := c.PolicyStatuses()[0]
	if !st.Seeded {
		t.Fatalf("status not marked seeded: %+v", st)
	}

	// The workload disagrees with the prediction: one unpredicted
	// function dominates. Normalized priors (peak 1.0) decay under real
	// degree-seconds, so measurement wins within the hysteresis window.
	measured := []instrument.CoarseStat{{Name: "actualHot", Calls: 50, Nanos: int64(4 * time.Second)}}
	var last instrument.Directive
	for i := 0; i < 4; i++ {
		clk.Advance(150 * time.Millisecond)
		if ctl := pd.coarse(measured); ctl != nil {
			if last, err = decodeControl(ctl.payload); err != nil {
				t.Fatal(err)
			}
		}
	}
	names := funcNames(last)
	if len(names) == 0 || names[0] != "actualHot" {
		t.Fatalf("measurement did not take over from priors: final detail set %v", names)
	}
	for _, n := range names {
		if n == "predictedCold" {
			t.Fatalf("low prior promoted to detail: %v", names)
		}
	}

	// A second sighting of the same node must not re-seed.
	if got := c.metrics.policySeeds.Value(); got != 1 {
		t.Fatalf("policySeeds = %d, want 1", got)
	}
}
