package collect

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"tempest/internal/hotspot"
	"tempest/internal/parser"
	"tempest/internal/store"
	"tempest/internal/trace"
)

// The checkpoint archive: what retention compaction keeps of raw batches
// it deletes. Per node it records the ingest cursors a restarted
// collector needs (resume sequence, cumulative symbol table, segment and
// event counts). The folded hot-spot heat lives in a separate window
// section: compaction buckets aged-out batches by commit wall clock into
// granule-aligned windows and ranks each bucket independently, so
// compacted history still answers time-ranged hot-spot queries at that
// granularity instead of collapsing into one all-time fold per pass.
// Folds are associative — merging any set of windows with the same
// time-weighted math MergeHotFunctions uses reproduces the all-time
// ranking — so however many compactions history passes through, Hotspots
// answers as if every event were still raw. Full per-sample profiles are
// the price of retention: /api/profile only reflects events still in raw
// segments.

const (
	archiveVersion   = 2
	archiveVersionV1 = 1
	// archiveMaxCount bounds every decoded collection so a corrupt blob
	// cannot demand absurd allocations.
	archiveMaxCount = 1 << 24
)

// archiveNode is one node's compacted ingest cursors.
type archiveNode struct {
	node      uint32
	rank      uint32
	nextSeq   uint64 // ship resume cursor after the compacted prefix
	segments  uint64
	events    uint64 // events folded into heat (no longer replayable)
	truncated bool
	syms      []string // cumulative symbol table, dense ids
}

// archiveWindowNode is one node's contribution to one folded window.
type archiveWindowNode struct {
	node   uint32
	events uint64
	heat   [][]hotspot.FunctionHeat // per sensor id
}

// archiveWindow is the folded heat of one wall-clock granule
// [fromWall, toWall). A window with both bounds zero is legacy v1 heat
// whose bounds were never recorded: it overlaps every query range.
type archiveWindow struct {
	fromWall int64
	toWall   int64
	nodes    []archiveWindowNode
}

// legacy reports whether the window predates recorded bounds.
func (w *archiveWindow) legacy() bool { return w.fromWall == 0 && w.toWall == 0 }

// overlaps reports whether the window intersects the half-open query
// range [from, to). Legacy windows overlap everything — claiming too
// much history beats silently dropping it.
func (w *archiveWindow) overlaps(from, to int64) bool {
	if w.legacy() {
		return true
	}
	return w.fromWall < to && w.toWall > from
}

// fleetArchive is a whole shard's compacted history: per-node cursors,
// nodes ascending, plus folded heat windows ascending by start time.
type fleetArchive struct {
	nodes   []*archiveNode
	windows []archiveWindow
}

// node finds or creates one node's entry.
func (a *fleetArchive) node(id, rank uint32) *archiveNode {
	for _, ent := range a.nodes {
		if ent.node == id {
			return ent
		}
	}
	ent := &archiveNode{node: id, rank: rank}
	a.nodes = append(a.nodes, ent)
	sort.Slice(a.nodes, func(i, j int) bool { return a.nodes[i].node < a.nodes[j].node })
	return ent
}

// find returns one node's entry, nil when the archive never saw it.
func (a *fleetArchive) find(id uint32) *archiveNode {
	for _, ent := range a.nodes {
		if ent.node == id {
			return ent
		}
	}
	return nil
}

// addWindow folds one window into the archive. Two compaction passes can
// legitimately produce the same granule (a bucket split across segments
// folded at different times); their heat merges associatively instead of
// duplicating the window.
func (a *fleetArchive) addWindow(w archiveWindow) {
	if len(w.nodes) == 0 {
		return
	}
	for i := range a.windows {
		ex := &a.windows[i]
		if ex.fromWall != w.fromWall || ex.toWall != w.toWall {
			continue
		}
		for _, wn := range w.nodes {
			merged := false
			for j := range ex.nodes {
				en := &ex.nodes[j]
				if en.node != wn.node {
					continue
				}
				en.events += wn.events
				for len(en.heat) < len(wn.heat) {
					en.heat = append(en.heat, nil)
				}
				for sid := range wn.heat {
					en.heat[sid] = foldFunctionHeat(en.heat[sid], wn.heat[sid])
				}
				merged = true
				break
			}
			if !merged {
				ex.nodes = append(ex.nodes, wn)
			}
		}
		sort.Slice(ex.nodes, func(i, j int) bool { return ex.nodes[i].node < ex.nodes[j].node })
		return
	}
	sort.Slice(w.nodes, func(i, j int) bool { return w.nodes[i].node < w.nodes[j].node })
	a.windows = append(a.windows, w)
	sort.Slice(a.windows, func(i, j int) bool {
		if a.windows[i].fromWall != a.windows[j].fromWall {
			return a.windows[i].fromWall < a.windows[j].fromWall
		}
		return a.windows[i].toWall < a.windows[j].toWall
	})
}

// nodeHeat folds every window's contribution for one node — the all-time
// archived ranking replayArchive seeds Hotspots with.
func (a *fleetArchive) nodeHeat(id uint32) [][]hotspot.FunctionHeat {
	var out [][]hotspot.FunctionHeat
	for _, w := range a.windows {
		for _, wn := range w.nodes {
			if wn.node != id {
				continue
			}
			for len(out) < len(wn.heat) {
				out = append(out, nil)
			}
			for sid := range wn.heat {
				out[sid] = foldFunctionHeat(out[sid], wn.heat[sid])
			}
		}
	}
	return out
}

// rangeHeat folds every window overlapping [from, to) for one sensor —
// the archived half of a time-ranged hot-spot answer, at the folded
// granularity.
func (a *fleetArchive) rangeHeat(from, to int64, sensor int) []hotspot.FunctionHeat {
	var out []hotspot.FunctionHeat
	for _, w := range a.windows {
		if !w.overlaps(from, to) {
			continue
		}
		for _, wn := range w.nodes {
			if sensor >= 0 && sensor < len(wn.heat) {
				out = foldFunctionHeat(out, wn.heat[sensor])
			}
		}
	}
	return out
}

// nodeRangeArchived reports whether [from, to) touches archived history
// for one node, and how many archived events that overlap covers.
func (a *fleetArchive) nodeRangeArchived(id uint32, from, to int64) (events uint64, overlap bool) {
	for _, w := range a.windows {
		if !w.overlaps(from, to) {
			continue
		}
		for _, wn := range w.nodes {
			if wn.node == id {
				overlap = true
				events += wn.events
			}
		}
	}
	return events, overlap
}

// encodeArchive serialises the archive blob (uvarints and LE float bits).
func encodeArchive(a *fleetArchive) []byte {
	var buf bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	uv := func(v uint64) { buf.Write(scratch[:binary.PutUvarint(scratch[:], v)]) }
	fv := func(v float64) {
		binary.LittleEndian.PutUint64(scratch[:8], math.Float64bits(v))
		buf.Write(scratch[:8])
	}
	str := func(s string) { uv(uint64(len(s))); buf.WriteString(s) }
	heat := func(sensors [][]hotspot.FunctionHeat) {
		uv(uint64(len(sensors)))
		for _, sensor := range sensors {
			uv(uint64(len(sensor)))
			for _, f := range sensor {
				str(f.Name)
				fv(f.AvgTemp)
				fv(f.MaxTemp)
				fv(f.TotalTimeS)
				fv(f.Score)
			}
		}
	}

	uv(archiveVersion)
	uv(uint64(len(a.nodes)))
	for _, ent := range a.nodes {
		uv(uint64(ent.node))
		uv(uint64(ent.rank))
		uv(ent.nextSeq)
		uv(ent.segments)
		uv(ent.events)
		var flags uint64
		if ent.truncated {
			flags = 1
		}
		uv(flags)
		uv(uint64(len(ent.syms)))
		for _, name := range ent.syms {
			str(name)
		}
	}
	uv(uint64(len(a.windows)))
	for _, w := range a.windows {
		uv(uint64(w.fromWall))
		uv(uint64(w.toWall))
		uv(uint64(len(w.nodes)))
		for _, wn := range w.nodes {
			uv(uint64(wn.node))
			uv(wn.events)
			heat(wn.heat)
		}
	}
	return buf.Bytes()
}

// decodeArchive parses an archive blob, v2 or the pre-window v1 layout
// (whose per-node all-time heat becomes one legacy window with unknown
// bounds). A nil or empty blob is an empty archive. The store's hash
// chain already vouches for integrity, but a dropped-then-rebuilt
// archive path exists, so every count is bounded.
func decodeArchive(blob []byte) (*fleetArchive, error) {
	a := &fleetArchive{}
	if len(blob) == 0 {
		return a, nil
	}
	buf := bytes.NewBuffer(blob)
	uv := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(buf)
		if err != nil || v > archiveMaxCount<<8 {
			return 0, fmt.Errorf("collect: archive %s: %v", what, err)
		}
		return v, nil
	}
	fv := func(what string) (float64, error) {
		var b [8]byte
		if _, err := io.ReadFull(buf, b[:]); err != nil {
			return 0, fmt.Errorf("collect: archive %s: %w", what, err)
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
	}
	str := func(what string) (string, error) {
		n, err := uv(what + " length")
		if err != nil || n > maxHelloName {
			return "", fmt.Errorf("collect: archive %s length", what)
		}
		s := make([]byte, n)
		if _, err := io.ReadFull(buf, s); err != nil {
			return "", fmt.Errorf("collect: archive %s: %w", what, err)
		}
		return string(s), nil
	}
	readHeat := func(node uint32) ([][]hotspot.FunctionHeat, error) {
		nsensors, err := uv("sensor count")
		if err != nil || nsensors > archiveMaxCount {
			return nil, fmt.Errorf("collect: archive sensor count")
		}
		heat := make([][]hotspot.FunctionHeat, nsensors)
		for sid := uint64(0); sid < nsensors; sid++ {
			nheat, err := uv("heat count")
			if err != nil || nheat > archiveMaxCount {
				return nil, fmt.Errorf("collect: archive heat count")
			}
			for h := uint64(0); h < nheat; h++ {
				f := hotspot.FunctionHeat{Node: node}
				if f.Name, err = str("heat name"); err != nil {
					return nil, err
				}
				for _, dst := range []*float64{&f.AvgTemp, &f.MaxTemp, &f.TotalTimeS, &f.Score} {
					if *dst, err = fv("heat value"); err != nil {
						return nil, err
					}
				}
				heat[sid] = append(heat[sid], f)
			}
		}
		return heat, nil
	}

	ver, err := binary.ReadUvarint(buf)
	if err != nil || (ver != archiveVersion && ver != archiveVersionV1) {
		return nil, fmt.Errorf("collect: archive version %d", ver)
	}
	nNodes, err := uv("node count")
	if err != nil || nNodes > archiveMaxCount {
		return nil, fmt.Errorf("collect: archive node count")
	}
	var legacy archiveWindow
	for i := uint64(0); i < nNodes; i++ {
		ent := &archiveNode{}
		node, err := uv("node")
		if err != nil {
			return nil, err
		}
		ent.node = uint32(node)
		rank, err := uv("rank")
		if err != nil {
			return nil, err
		}
		ent.rank = uint32(rank)
		// Cursors are unbounded counters, not allocation sizes.
		for _, dst := range []*uint64{&ent.nextSeq, &ent.segments, &ent.events} {
			if *dst, err = binary.ReadUvarint(buf); err != nil {
				return nil, fmt.Errorf("collect: archive cursor: %w", err)
			}
		}
		flags, err := uv("flags")
		if err != nil {
			return nil, err
		}
		ent.truncated = flags&1 != 0
		nsyms, err := uv("symbol count")
		if err != nil || nsyms > archiveMaxCount {
			return nil, fmt.Errorf("collect: archive symbol count")
		}
		for s := uint64(0); s < nsyms; s++ {
			name, err := str("symbol")
			if err != nil {
				return nil, err
			}
			ent.syms = append(ent.syms, name)
		}
		if ver == archiveVersionV1 {
			// v1 carried each node's all-time heat inline; it survives as
			// one shared window whose bounds were never recorded.
			heat, err := readHeat(ent.node)
			if err != nil {
				return nil, err
			}
			if len(heat) > 0 {
				legacy.nodes = append(legacy.nodes, archiveWindowNode{
					node: ent.node, events: ent.events, heat: heat,
				})
			}
		}
		a.nodes = append(a.nodes, ent)
	}
	if ver == archiveVersionV1 {
		if len(legacy.nodes) > 0 {
			a.windows = append(a.windows, legacy)
		}
	} else {
		nWindows, err := uv("window count")
		if err != nil || nWindows > archiveMaxCount {
			return nil, fmt.Errorf("collect: archive window count")
		}
		for i := uint64(0); i < nWindows; i++ {
			var w archiveWindow
			// Bounds are wall-clock nanoseconds — far past uv's allocation
			// bound — so read them raw like the cursor counters.
			from, err := binary.ReadUvarint(buf)
			if err != nil {
				return nil, fmt.Errorf("collect: archive window from: %w", err)
			}
			to, err := binary.ReadUvarint(buf)
			if err != nil {
				return nil, fmt.Errorf("collect: archive window to: %w", err)
			}
			w.fromWall, w.toWall = int64(from), int64(to)
			nwn, err := uv("window node count")
			if err != nil || nwn > archiveMaxCount {
				return nil, fmt.Errorf("collect: archive window node count")
			}
			for j := uint64(0); j < nwn; j++ {
				var wn archiveWindowNode
				node, err := uv("window node")
				if err != nil {
					return nil, err
				}
				wn.node = uint32(node)
				if wn.events, err = binary.ReadUvarint(buf); err != nil {
					return nil, fmt.Errorf("collect: archive window events: %w", err)
				}
				if wn.heat, err = readHeat(wn.node); err != nil {
					return nil, err
				}
				w.nodes = append(w.nodes, wn)
			}
			a.windows = append(a.windows, w)
		}
	}
	if buf.Len() != 0 {
		return nil, fmt.Errorf("collect: %d trailing archive bytes", buf.Len())
	}
	return a, nil
}

// foldFunctionHeat merges two per-(node, function) rankings with the same
// associative math MergeHotFunctions uses per function: scores and times
// sum, averages weight by time, maxima take the max. The result is ranked
// like hotspot.HotFunctions (score desc, node, name), so folding archived
// history into a live ranking yields a valid ranking.
func foldFunctionHeat(a, b []hotspot.FunctionHeat) []hotspot.FunctionHeat {
	type key struct {
		node uint32
		name string
	}
	idx := map[key]int{}
	out := make([]hotspot.FunctionHeat, 0, len(a)+len(b))
	for _, src := range [2][]hotspot.FunctionHeat{a, b} {
		for _, f := range src {
			k := key{f.Node, f.Name}
			i, ok := idx[k]
			if !ok {
				idx[k] = len(out)
				out = append(out, f)
				continue
			}
			g := &out[i]
			if t := g.TotalTimeS + f.TotalTimeS; t > 0 {
				g.AvgTemp = (g.AvgTemp*g.TotalTimeS + f.AvgTemp*f.TotalTimeS) / t
			}
			if f.MaxTemp > g.MaxTemp {
				g.MaxTemp = f.MaxTemp
			}
			g.TotalTimeS += f.TotalTimeS
			g.Score += f.Score
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// NewCompactor returns the store.Compactor the collector installs:
// aged-out raw batches are bucketed by commit wall clock into
// granule-aligned windows, each bucket replayed through a throwaway
// mid-stream Builder per node and ranked by internal/hotspot per sensor,
// and the per-window rankings appended to the previous archive. granule
// <= 0 folds the whole pass into a single window spanning its batches.
// Deterministic; retains nothing.
func NewCompactor(unit parser.Unit, sampleInterval, granule time.Duration) store.Compactor {
	gran := granule.Nanoseconds()
	return func(prevArchive []byte, batches []store.Batch) ([]byte, error) {
		arch, err := decodeArchive(prevArchive)
		if err != nil {
			return nil, err
		}
		type nodeFold struct {
			ent *archiveNode
			sym *trace.SymTab
			// Per-bucket state, reset at each window boundary. dead marks a
			// poisoned builder; decoding continues for the symbol table.
			b     *parser.Builder
			dead  bool
			fresh uint64
		}
		folds := map[uint32]*nodeFold{}
		var order []uint32
		var scratch []trace.Event

		// curStart/curEnd bound the bucket being folded; flush finishes its
		// builders into one archiveWindow and resets per-bucket state.
		var curStart, curEnd int64
		haveBucket := false
		flush := func() error {
			if !haveBucket {
				return nil
			}
			w := archiveWindow{fromWall: curStart, toWall: curEnd}
			sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
			for _, id := range order {
				nf := folds[id]
				if nf.b == nil {
					continue
				}
				np, err := nf.b.Finish()
				nf.b = nil
				if err != nil || nf.dead {
					// A bucket whose builder poisoned contributes cursors but
					// no heat — the same events poisoned the live builder too.
					nf.dead = false
					nf.fresh = 0
					continue
				}
				nf.ent.events += nf.fresh
				wn := archiveWindowNode{node: id, events: nf.fresh}
				nf.fresh = 0
				p := &parser.Profile{Unit: unit, Nodes: []parser.NodeProfile{*np}}
				wn.heat = make([][]hotspot.FunctionHeat, len(np.Samples))
				for sid := range np.Samples {
					hf, err := HotFunctions(p, sid, 0)
					if err != nil || len(hf) == 0 {
						continue
					}
					wn.heat[sid] = hf
				}
				if wn.events > 0 || len(wn.heat) > 0 {
					w.nodes = append(w.nodes, wn)
				}
			}
			arch.addWindow(w)
			return nil
		}

		for _, wb := range batches {
			if wb.Flags&store.FlagPolicy != 0 {
				// Policy directives age out with their retention window:
				// the engine re-converges from live traffic, and a
				// checkpoint has nowhere to resume a revision counter from.
				continue
			}
			// Window boundary: commit clocks are nondecreasing, so crossing
			// into a new granule closes the previous bucket.
			bs, be := wb.WallNano, wb.WallNano+1
			if gran > 0 {
				bs = wb.WallNano - wb.WallNano%gran
				be = bs + gran
			}
			switch {
			case !haveBucket:
				curStart, curEnd = bs, be
				haveBucket = true
			case gran > 0 && bs != curStart:
				if err := flush(); err != nil {
					return nil, err
				}
				curStart, curEnd = bs, be
			case gran <= 0:
				// Single-window pass: the bucket grows to cover every batch.
				if bs < curStart {
					curStart = bs
				}
				if be > curEnd {
					curEnd = be
				}
			}
			nf, ok := folds[wb.Node]
			if !ok {
				ent := arch.node(wb.Node, wb.Rank)
				sym := trace.NewSymTab()
				for _, name := range ent.syms {
					sym.Register(name)
				}
				nf = &nodeFold{ent: ent, sym: sym}
				folds[wb.Node] = nf
				order = append(order, wb.Node)
			}
			if wb.Flags&store.FlagCoarse != 0 {
				// A coarse report consumed a ship sequence number but holds
				// no events: advance the cursor, count the segment, and
				// leave the builder alone.
				if wb.Seq >= nf.ent.nextSeq {
					nf.ent.nextSeq = wb.Seq + 1
				}
				nf.ent.segments++
				continue
			}
			ev, err := decodeChunk(wb.Payload, nf.sym, scratch)
			if err != nil {
				return nil, fmt.Errorf("collect: compact node %d: %w", wb.Node, err)
			}
			scratch = ev[:0]
			if wb.Flags&store.FlagBulk == 0 && wb.Seq >= nf.ent.nextSeq {
				nf.ent.nextSeq = wb.Seq + 1
			}
			nf.ent.segments++
			if wb.Flags&store.FlagTruncated != 0 {
				nf.ent.truncated = true
			}
			if nf.dead {
				continue
			}
			if nf.b == nil {
				nf.b = parser.NewBuilder(wb.Node, nf.sym, parser.Options{
					Unit: unit, SampleInterval: sampleInterval, MidStream: true,
				})
			}
			if err := nf.b.Add(ev); err != nil {
				nf.dead = true
			} else {
				nf.fresh += uint64(len(ev))
			}
		}
		if err := flush(); err != nil {
			return nil, err
		}
		sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
		for _, id := range order {
			folds[id].ent.syms = folds[id].sym.Names()
		}
		return encodeArchive(arch), nil
	}
}
