package collect

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"tempest/internal/hotspot"
	"tempest/internal/parser"
	"tempest/internal/store"
	"tempest/internal/trace"
)

// The checkpoint archive: what retention compaction keeps of raw batches
// it deletes. Per node it records the ingest cursors a restarted
// collector needs (resume sequence, cumulative symbol table, segment and
// event counts) plus the node's per-sensor hot-spot contributions folded
// over the compacted history. Folds are associative — each compaction
// merges a window's rankings into the previous archive with the same
// time-weighted math MergeHotFunctions uses — so however many compactions
// history passes through, Hotspots answers as if every event were still
// raw. Full per-sample profiles are the price of retention: /api/profile
// only reflects events still in raw segments.

const (
	archiveVersion = 1
	// archiveMaxCount bounds every decoded collection so a corrupt blob
	// cannot demand absurd allocations.
	archiveMaxCount = 1 << 24
)

// archiveNode is one node's compacted state.
type archiveNode struct {
	node      uint32
	rank      uint32
	nextSeq   uint64 // ship resume cursor after the compacted prefix
	segments  uint64
	events    uint64 // events folded into heat (no longer replayable)
	truncated bool
	syms      []string                 // cumulative symbol table, dense ids
	heat      [][]hotspot.FunctionHeat // per sensor id
}

// fleetArchive is a whole shard's compacted history, nodes ascending.
type fleetArchive struct {
	nodes []*archiveNode
}

// node finds or creates one node's entry.
func (a *fleetArchive) node(id, rank uint32) *archiveNode {
	for _, ent := range a.nodes {
		if ent.node == id {
			return ent
		}
	}
	ent := &archiveNode{node: id, rank: rank}
	a.nodes = append(a.nodes, ent)
	sort.Slice(a.nodes, func(i, j int) bool { return a.nodes[i].node < a.nodes[j].node })
	return ent
}

// encodeArchive serialises the archive blob (uvarints and LE float bits).
func encodeArchive(a *fleetArchive) []byte {
	var buf bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	uv := func(v uint64) { buf.Write(scratch[:binary.PutUvarint(scratch[:], v)]) }
	fv := func(v float64) {
		binary.LittleEndian.PutUint64(scratch[:8], math.Float64bits(v))
		buf.Write(scratch[:8])
	}
	str := func(s string) { uv(uint64(len(s))); buf.WriteString(s) }

	uv(archiveVersion)
	uv(uint64(len(a.nodes)))
	for _, ent := range a.nodes {
		uv(uint64(ent.node))
		uv(uint64(ent.rank))
		uv(ent.nextSeq)
		uv(ent.segments)
		uv(ent.events)
		var flags uint64
		if ent.truncated {
			flags = 1
		}
		uv(flags)
		uv(uint64(len(ent.syms)))
		for _, name := range ent.syms {
			str(name)
		}
		uv(uint64(len(ent.heat)))
		for _, sensor := range ent.heat {
			uv(uint64(len(sensor)))
			for _, f := range sensor {
				str(f.Name)
				fv(f.AvgTemp)
				fv(f.MaxTemp)
				fv(f.TotalTimeS)
				fv(f.Score)
			}
		}
	}
	return buf.Bytes()
}

// decodeArchive parses an archive blob. A nil or empty blob is an empty
// archive. The store's hash chain already vouches for integrity, but a
// dropped-then-rebuilt archive path exists, so every count is bounded.
func decodeArchive(blob []byte) (*fleetArchive, error) {
	a := &fleetArchive{}
	if len(blob) == 0 {
		return a, nil
	}
	buf := bytes.NewBuffer(blob)
	uv := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(buf)
		if err != nil || v > archiveMaxCount<<8 {
			return 0, fmt.Errorf("collect: archive %s: %v", what, err)
		}
		return v, nil
	}
	fv := func(what string) (float64, error) {
		var b [8]byte
		if _, err := io.ReadFull(buf, b[:]); err != nil {
			return 0, fmt.Errorf("collect: archive %s: %w", what, err)
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
	}
	str := func(what string) (string, error) {
		n, err := uv(what + " length")
		if err != nil || n > maxHelloName {
			return "", fmt.Errorf("collect: archive %s length", what)
		}
		s := make([]byte, n)
		if _, err := io.ReadFull(buf, s); err != nil {
			return "", fmt.Errorf("collect: archive %s: %w", what, err)
		}
		return string(s), nil
	}

	ver, err := binary.ReadUvarint(buf)
	if err != nil || ver != archiveVersion {
		return nil, fmt.Errorf("collect: archive version %d", ver)
	}
	nNodes, err := uv("node count")
	if err != nil || nNodes > archiveMaxCount {
		return nil, fmt.Errorf("collect: archive node count")
	}
	for i := uint64(0); i < nNodes; i++ {
		ent := &archiveNode{}
		node, err := uv("node")
		if err != nil {
			return nil, err
		}
		ent.node = uint32(node)
		rank, err := uv("rank")
		if err != nil {
			return nil, err
		}
		ent.rank = uint32(rank)
		// Cursors are unbounded counters, not allocation sizes.
		for _, dst := range []*uint64{&ent.nextSeq, &ent.segments, &ent.events} {
			if *dst, err = binary.ReadUvarint(buf); err != nil {
				return nil, fmt.Errorf("collect: archive cursor: %w", err)
			}
		}
		flags, err := uv("flags")
		if err != nil {
			return nil, err
		}
		ent.truncated = flags&1 != 0
		nsyms, err := uv("symbol count")
		if err != nil || nsyms > archiveMaxCount {
			return nil, fmt.Errorf("collect: archive symbol count")
		}
		for s := uint64(0); s < nsyms; s++ {
			name, err := str("symbol")
			if err != nil {
				return nil, err
			}
			ent.syms = append(ent.syms, name)
		}
		nsensors, err := uv("sensor count")
		if err != nil || nsensors > archiveMaxCount {
			return nil, fmt.Errorf("collect: archive sensor count")
		}
		ent.heat = make([][]hotspot.FunctionHeat, nsensors)
		for sid := uint64(0); sid < nsensors; sid++ {
			nheat, err := uv("heat count")
			if err != nil || nheat > archiveMaxCount {
				return nil, fmt.Errorf("collect: archive heat count")
			}
			for h := uint64(0); h < nheat; h++ {
				f := hotspot.FunctionHeat{Node: ent.node}
				if f.Name, err = str("heat name"); err != nil {
					return nil, err
				}
				for _, dst := range []*float64{&f.AvgTemp, &f.MaxTemp, &f.TotalTimeS, &f.Score} {
					if *dst, err = fv("heat value"); err != nil {
						return nil, err
					}
				}
				ent.heat[sid] = append(ent.heat[sid], f)
			}
		}
		a.nodes = append(a.nodes, ent)
	}
	if buf.Len() != 0 {
		return nil, fmt.Errorf("collect: %d trailing archive bytes", buf.Len())
	}
	return a, nil
}

// foldFunctionHeat merges two per-(node, function) rankings with the same
// associative math MergeHotFunctions uses per function: scores and times
// sum, averages weight by time, maxima take the max. The result is ranked
// like hotspot.HotFunctions (score desc, node, name), so folding archived
// history into a live ranking yields a valid ranking.
func foldFunctionHeat(a, b []hotspot.FunctionHeat) []hotspot.FunctionHeat {
	type key struct {
		node uint32
		name string
	}
	idx := map[key]int{}
	out := make([]hotspot.FunctionHeat, 0, len(a)+len(b))
	for _, src := range [2][]hotspot.FunctionHeat{a, b} {
		for _, f := range src {
			k := key{f.Node, f.Name}
			i, ok := idx[k]
			if !ok {
				idx[k] = len(out)
				out = append(out, f)
				continue
			}
			g := &out[i]
			if t := g.TotalTimeS + f.TotalTimeS; t > 0 {
				g.AvgTemp = (g.AvgTemp*g.TotalTimeS + f.AvgTemp*f.TotalTimeS) / t
			}
			if f.MaxTemp > g.MaxTemp {
				g.MaxTemp = f.MaxTemp
			}
			g.TotalTimeS += f.TotalTimeS
			g.Score += f.Score
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// NewCompactor returns the store.Compactor the collector installs:
// aged-out raw batches are replayed through a throwaway mid-stream
// Builder per node, ranked by internal/hotspot per sensor, and folded
// into the previous archive. Deterministic; retains nothing.
func NewCompactor(unit parser.Unit, sampleInterval time.Duration) store.Compactor {
	return func(prevArchive []byte, batches []store.Batch) ([]byte, error) {
		arch, err := decodeArchive(prevArchive)
		if err != nil {
			return nil, err
		}
		type nodeFold struct {
			ent   *archiveNode
			sym   *trace.SymTab
			b     *parser.Builder
			dead  bool // builder poisoned; keep decoding for the symbol table
			fresh uint64
		}
		folds := map[uint32]*nodeFold{}
		var order []uint32
		var scratch []trace.Event
		for _, wb := range batches {
			if wb.Flags&store.FlagPolicy != 0 {
				// Policy directives age out with their retention window:
				// the engine re-converges from live traffic, and a
				// checkpoint has nowhere to resume a revision counter from.
				continue
			}
			nf, ok := folds[wb.Node]
			if !ok {
				ent := arch.node(wb.Node, wb.Rank)
				sym := trace.NewSymTab()
				for _, name := range ent.syms {
					sym.Register(name)
				}
				nf = &nodeFold{
					ent: ent,
					sym: sym,
					b: parser.NewBuilder(wb.Node, sym, parser.Options{
						Unit: unit, SampleInterval: sampleInterval, MidStream: true,
					}),
				}
				folds[wb.Node] = nf
				order = append(order, wb.Node)
			}
			if wb.Flags&store.FlagCoarse != 0 {
				// A coarse report consumed a ship sequence number but holds
				// no events: advance the cursor, count the segment, and
				// leave the builder alone.
				if wb.Seq >= nf.ent.nextSeq {
					nf.ent.nextSeq = wb.Seq + 1
				}
				nf.ent.segments++
				continue
			}
			ev, err := decodeChunk(wb.Payload, nf.sym, scratch)
			if err != nil {
				return nil, fmt.Errorf("collect: compact node %d: %w", wb.Node, err)
			}
			scratch = ev[:0]
			if wb.Flags&store.FlagBulk == 0 && wb.Seq >= nf.ent.nextSeq {
				nf.ent.nextSeq = wb.Seq + 1
			}
			nf.ent.segments++
			if wb.Flags&store.FlagTruncated != 0 {
				nf.ent.truncated = true
			}
			if !nf.dead {
				if err := nf.b.Add(ev); err != nil {
					nf.dead = true
				} else {
					nf.fresh += uint64(len(ev))
				}
			}
		}
		sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
		for _, id := range order {
			nf := folds[id]
			nf.ent.syms = nf.sym.Names()
			np, err := nf.b.Finish()
			if err != nil {
				// A window whose builder poisoned contributes cursors but no
				// heat — the same events poisoned the live builder too.
				continue
			}
			nf.ent.events += nf.fresh
			p := &parser.Profile{Unit: unit, Nodes: []parser.NodeProfile{*np}}
			if len(np.Samples) > len(nf.ent.heat) {
				grown := make([][]hotspot.FunctionHeat, len(np.Samples))
				copy(grown, nf.ent.heat)
				nf.ent.heat = grown
			}
			for sid := range np.Samples {
				hf, err := HotFunctions(p, sid, 0)
				if err != nil || len(hf) == 0 {
					continue
				}
				nf.ent.heat[sid] = foldFunctionHeat(nf.ent.heat[sid], hf)
			}
		}
		return encodeArchive(arch), nil
	}
}
