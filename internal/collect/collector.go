package collect

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"tempest/instrument"
	"tempest/internal/critpath"
	"tempest/internal/hotspot"
	"tempest/internal/introspect"
	"tempest/internal/parser"
	"tempest/internal/store"
	"tempest/internal/trace"
)

// critTrackCap bounds each node's per-lane timeline to a fixed segment
// budget: a collector serves long-lived fleets, so per-node critical-path
// state must stay O(lanes + functions), never O(events). Overflowing
// tracks coarsen (adjacent segments merge) instead of growing.
const critTrackCap = 512

// Options configures a Collector. The zero value selects the defaults
// noted per field.
type Options struct {
	// Unit of aggregated statistics (default Fahrenheit, like the paper).
	Unit parser.Unit
	// SampleInterval overrides tempd-period auto-detection in per-node
	// profiles (0 = auto-detect, the offline parser's behaviour).
	SampleInterval time.Duration
	// Shards is the number of ingest shards (default 4). Nodes are
	// hashed across shards by node ID; each shard's worker goroutine
	// exclusively owns its nodes' Builders, so ingest and query
	// serialise per shard and never lock across shards.
	Shards int
	// QueueLen bounds each shard's ingest queue (default 128); its
	// instantaneous depth is the shard's lag, exported on /metrics.
	QueueLen int
	// Now overrides the clock used for per-node last-seen tracking
	// (default time.Now) — injectable for deterministic tests.
	Now func() time.Time
	// Logger receives structured warnings for conditions that would
	// otherwise be invisible (response encode failures, aborted
	// streams). Default: slog.Default().
	Logger *slog.Logger
	// StoreDir, when set, makes ingest durable: each shard appends every
	// accepted batch to an on-disk store under this directory before
	// acking it, and New replays the store into warm builders so acked
	// data survives a crash. Empty = memory-only (the pre-store behavior).
	StoreDir string
	// StoreOptions tunes the durable store (Window, MaxSegmentBytes,
	// Retention, SyncEvery). Metrics, Logger, Now and — unless overridden —
	// Compact are wired by the collector itself.
	StoreOptions store.Options
	// ArchiveGranule is the wall-clock bucket width retention compaction
	// folds aged-out batches into (default: the store's segment Window).
	// Finer granules keep compacted history answerable for narrower
	// /api/hotspots?window= queries at the cost of a larger archive.
	ArchiveGranule time.Duration
	// WindowCache bounds the per-shard LRU of decoded historical windows
	// (default 16 entries) so dashboard scrubbing doesn't re-decode the
	// same raw segments per request.
	WindowCache int
	// Policy configures the adaptive-sampling policy engine: when enabled,
	// the collector ranks each node's coarse instrumentation buckets and
	// piggybacks per-function enable/disable directives on ship-stream
	// acks, closing the loop from ranking back to instrumentation.
	Policy PolicyOptions
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.QueueLen <= 0 {
		o.QueueLen = 128
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	if o.WindowCache <= 0 {
		o.WindowCache = 16
	}
	o.Policy = o.Policy.withDefaults()
	return o
}

// NodeStatus is one node's ingest-side state, as served by /api/nodes.
type NodeStatus struct {
	NodeID    uint32    `json:"node"`
	Rank      uint32    `json:"rank"`
	Events    uint64    `json:"events"`
	Segments  uint64    `json:"segments"`
	DurationS float64   `json:"duration_s"`
	Truncated bool      `json:"truncated"`
	LastSeen  time.Time `json:"last_seen"`
	Err       string    `json:"error,omitempty"`
	// ArchivedEvents counts events retention compacted out of raw history
	// into folded hot-spot archives — still in Hotspots, gone from
	// /api/profile.
	ArchivedEvents uint64 `json:"archived_events,omitempty"`
}

// nodeState is one node's ingest state, owned by exactly one shard
// worker.
type nodeState struct {
	id       uint32
	rank     uint32
	sym      *trace.SymTab
	builder  *parser.Builder
	nextSeq  uint64
	segments uint64
	lastSeen time.Time
	batch    []trace.Event // reused chunk decode buffer
	err      error         // poisoned: gap in the stream or Builder failure

	// crit is the node's streaming critical-path analyzer: it consumes the
	// same accepted batches as builder and answers /api/critpath and
	// /api/timeline. Tolerant by design — it keeps counting through streams
	// the builder would reject — but it is only fed what the builder took,
	// so both views describe the same event history.
	crit *critpath.Analyzer

	// symsStored is how much of sym the durable chunk stream already
	// carries; the bulk path encodes fresh symbols from this cursor so
	// every stored batch stays densely decodable on replay.
	symsStored int
	// archEvents and archHeat are the node's compacted history, replayed
	// from the store's checkpoint archive at startup.
	archEvents uint64
	archHeat   [][]hotspot.FunctionHeat // per sensor id

	// policy is the node's adaptive-sampling state (nil until the policy
	// engine first touches the node; see policy.go).
	policy *nodePolicy
}

// shardReq is one request into a shard worker. Exactly one of the
// operation fields is used; reply always receives one shardResp.
type shardReq struct {
	op     shardOp
	node   uint32
	rank   uint32
	seq    uint64
	chunk  []byte        // opChunk: frame payload
	batch  []trace.Event // opEvents: decoded events (bulk mode)
	sym    *trace.SymTab // opEvents: table the batch's FuncIDs resolve in
	trunc  bool          // opFinishBulk
	sensor int           // opArchHeat, opWindowHeat
	from   int64         // opWindowHeat, opWindowProfile: wall-clock range
	to     int64
	reply  chan shardResp
}

type shardOp int

const (
	opResume shardOp = iota
	opChunk
	opCoarse
	opEvents
	opFinishBulk
	opSnapshot
	opStatus
	opArchHeat
	opPolicyStatus
	opCritPath
	opWindowHeat
	opWindowProfile
	opWindows
)

// shardResp carries a shard worker's answer.
type shardResp struct {
	resume   uint64
	dup      bool
	err      error
	profiles []*parser.NodeProfile
	statuses []NodeStatus
	heat     []hotspot.FunctionHeat
	// ctl, when non-nil, is a policy directive for the node this request
	// concerned; the connection handler piggybacks it after the ack.
	ctl      *ctlFrame
	policies []PolicyStatus
	// crit fields answer opCritPath: a fresh Summary and copied Tracks, so
	// handing them across the reply never races the worker's next fold.
	crit       *critpath.Summary
	critTracks []critpath.Track
	critDur    time.Duration
	// History fields answer opWindowHeat/opWindowProfile/opWindows.
	windows    []WindowEntry
	archEvents uint64
	archived   bool // the queried range touches folded archive windows
	durable    bool
}

// shard owns a disjoint subset of the fleet's nodes. Its worker
// goroutine is the only code that touches the nodes map, Builders and
// the shard's durable store.
type shard struct {
	id    int
	work  chan shardReq
	nodes map[uint32]*nodeState
	c     *Collector

	// store is never nil: Memory when durability is off or after the
	// shard degraded. Owned by the worker goroutine (like nodes), except
	// during New's single-threaded open/replay phase.
	store   store.Store
	durable bool // disk-backed and not degraded

	// hist is the shard's historical-query state: the decoded checkpoint
	// archive plus an LRU of decoded raw windows. Worker-owned, lazily
	// built on the first time-ranged query (see window.go).
	hist shardHistory
}

// Collector is the fleet ingest service: it accepts shipped chunk
// streams and bulk trace uploads from many nodes concurrently, folds
// each node's events into a streaming parser.Builder on one of N
// hash-partitioned shards, and serves cluster-wide profiles, hot-spot
// rankings and self-observability through Handler's HTTP API.
type Collector struct {
	opts    Options
	shards  []*shard
	metrics *Metrics

	mu     sync.Mutex
	ln     net.Listener          // guarded by mu
	conns  map[net.Conn]struct{} // guarded by mu
	closed bool                  // guarded by mu
	wg     sync.WaitGroup

	// callMu fences shard calls against shutdown: callers hold the read
	// side for the duration of one worker round-trip; Close takes the
	// write side before closing the work channels, so no request is
	// ever sent to a dead worker.
	callMu sync.RWMutex
	down   bool // guarded by callMu

	scanners sync.Pool // *trace.Scanner, Reset per bulk connection
}

// errCollectorClosed reports a query or ingest call after Close.
var errCollectorClosed = errors.New("collect: collector closed")

// New returns a running collector (its shard workers are live); attach
// ingest listeners with Serve and the HTTP API with Handler. With
// Options.StoreDir set, New first recovers the durable store — salvaging
// any crash-torn tail — and replays acked history into warm builders, so
// the collector resumes where the last process died.
func New(opts Options) *Collector {
	opts = opts.withDefaults()
	c := &Collector{
		opts:    opts,
		metrics: newMetrics(opts.Shards),
		conns:   make(map[net.Conn]struct{}),
	}
	c.shards = make([]*shard, opts.Shards)
	for i := range c.shards {
		c.shards[i] = &shard{
			id:    i,
			work:  make(chan shardReq, opts.QueueLen),
			nodes: make(map[uint32]*nodeState),
			c:     c,
			store: store.Memory{},
		}
	}
	if opts.StoreDir != "" {
		c.openStores()
	}
	// Workers start only after replay: recovery owns the node maps
	// single-threaded, exactly like the workers will.
	for _, sh := range c.shards {
		c.wg.Add(1)
		go sh.run(&c.wg)
	}
	// Registered after the shard segment counters so the /metrics family
	// order matches the original hand-rolled exposition byte for byte.
	for i, sh := range c.shards {
		sh := sh
		c.metrics.reg.FuncL("tempest_collect_shard_queue_depth", fmt.Sprintf("shard=%q", fmt.Sprint(i)),
			"Requests waiting in each shard's ingest queue (lag).",
			func() float64 { return float64(len(sh.work)) })
	}
	return c
}

// openStores opens one disk store per shard and replays recovered
// history into warm node states. A shard whose store cannot open or
// replay runs degraded (memory-only) instead of failing the collector:
// ingest availability outranks durability, and the degradation is loud —
// logged, counted on the debug registry, and surfaced on /healthz.
func (c *Collector) openStores() {
	so := c.opts.StoreOptions
	so.Metrics = store.NewMetrics(c.metrics.debug)
	so.Logger = c.opts.Logger
	so.Now = c.opts.Now
	if so.Compact == nil {
		granule := c.opts.ArchiveGranule
		if granule <= 0 {
			granule = so.Window
		}
		if granule <= 0 {
			granule = time.Hour // store.Options' own Window default
		}
		so.Compact = NewCompactor(c.opts.Unit, c.opts.SampleInterval, granule)
	}
	for i, sh := range c.shards {
		dir := filepath.Join(c.opts.StoreDir, store.ShardDirName(i))
		st, err := store.Open(dir, so)
		if err != nil {
			c.opts.Logger.Error("store open failed; shard ingests memory-only",
				"shard", i, "dir", dir, "err", err)
			c.noteDegrade()
			continue
		}
		sh.store = st
		sh.durable = true
		if err := st.Replay(sh.replayArchive, sh.replayBatch); err != nil {
			// Replay already salvaged what it could; the store itself still
			// accepts appends, so stay durable with partial history.
			c.opts.Logger.Error("store replay incomplete", "shard", i, "err", err)
		}
	}
}

// noteDegrade records one shard's fall to memory-only ingest.
func (c *Collector) noteDegrade() {
	c.metrics.storeDegrades.Add(1)
	c.metrics.storeDegradedShards.Add(1)
}

// DegradedStoreShards reports how many shards are ingesting memory-only
// after a store failure (0 = fully durable, or durability not enabled).
func (c *Collector) DegradedStoreShards() int {
	return int(c.metrics.storeDegradedShards.Value())
}

// shardFor hashes a node ID onto its owning shard (FNV-1a, stable
// across restarts so dashboards keep their shard attribution).
func (c *Collector) shardFor(node uint32) *shard {
	h := uint32(2166136261)
	for i := 0; i < 4; i++ {
		h ^= (node >> (8 * i)) & 0xff
		h *= 16777619
	}
	return c.shards[h%uint32(len(c.shards))]
}

// call routes one request to a shard worker and waits for its reply.
func (sh *shard) call(req shardReq) shardResp {
	sh.c.callMu.RLock()
	defer sh.c.callMu.RUnlock()
	if sh.c.down {
		return shardResp{err: errCollectorClosed}
	}
	req.reply = make(chan shardResp, 1)
	sh.work <- req
	return <-req.reply
}

// run is the shard worker loop: the single goroutine that owns this
// shard's builders. On exit it closes the shard's store, which flushes —
// so by the time Close returns, everything acked is on disk.
func (sh *shard) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for req := range sh.work {
		req.reply <- sh.handle(req)
	}
	if err := sh.store.Close(); err != nil {
		sh.c.opts.Logger.Error("store close failed", "shard", sh.id, "err", err)
	}
}

// persist appends one accepted batch to the shard's store before the
// caller acks it. A failed append degrades the shard to memory-only
// ingest — loudly — instead of wedging the fleet on a dying disk.
func (sh *shard) persist(ns *nodeState, seq uint64, flags uint8, payload []byte) {
	if !sh.durable {
		return
	}
	wall := sh.c.opts.Now().UnixNano()
	err := sh.store.Append(store.Batch{
		Node:     ns.id,
		Rank:     ns.rank,
		Seq:      seq,
		Flags:    flags,
		WallNano: wall,
		Payload:  payload,
	})
	if err != nil {
		sh.c.opts.Logger.Error("store append failed; shard degraded to memory-only ingest",
			"shard", sh.id, "node", ns.id, "err", err)
		sh.store.Close()
		sh.store = store.Memory{}
		sh.durable = false
		sh.c.noteDegrade()
		return
	}
	ns.symsStored = ns.sym.Len()
	// Cached window decodes whose range extends past this commit are now
	// missing a batch; drop them so the next query re-decodes.
	sh.hist.invalidateAppend(wall)
}

// persistBulk re-encodes one bulk-path batch as a self-contained chunk —
// the symbols registered since the last stored batch plus the events —
// so the durable stream replays through the same dense-id chunk decoder
// as shipped frames. Flags always carry FlagBulk: replayed bulk batches
// must not advance the ship resume cursor.
func (sh *shard) persistBulk(ns *nodeState, flags uint8, events []trace.Event) {
	if !sh.durable {
		return
	}
	payload, _, err := encodeChunk(events, ns.sym, ns.symsStored)
	if err != nil {
		// Events that just folded into the builder failed to re-encode:
		// a codec invariant broke. Degrade rather than persist a gap.
		sh.c.opts.Logger.Error("bulk batch re-encode failed; shard degraded to memory-only ingest",
			"shard", sh.id, "node", ns.id, "err", err)
		sh.store.Close()
		sh.store = store.Memory{}
		sh.durable = false
		sh.c.noteDegrade()
		return
	}
	sh.persist(ns, 0, store.FlagBulk|flags, payload)
}

// replayArchive seeds node states from the store's checkpoint archive:
// compacted history whose raw batches are gone. Builders attach
// mid-stream (the archive's symbol table carries the dense-id prefix),
// and folded hot-spot rankings go to archHeat for Hotspots to merge.
func (sh *shard) replayArchive(blob []byte) error {
	arch, err := decodeArchive(blob)
	if err != nil {
		sh.c.opts.Logger.Error("store archive undecodable; compacted history dropped",
			"shard", sh.id, "err", err)
		return nil // raw segments still replay
	}
	for _, ent := range arch.nodes {
		sym := trace.NewSymTab()
		for _, name := range ent.syms {
			sym.Register(name)
		}
		ns := &nodeState{
			id:   ent.node,
			rank: ent.rank,
			sym:  sym,
			builder: parser.NewBuilder(ent.node, sym, parser.Options{
				Unit:           sh.c.opts.Unit,
				SampleInterval: sh.c.opts.SampleInterval,
				MidStream:      true,
			}),
			nextSeq:    ent.nextSeq,
			segments:   ent.segments,
			lastSeen:   sh.c.opts.Now(),
			symsStored: sym.Len(),
			archEvents: ent.events,
			archHeat:   arch.nodeHeat(ent.node),
			crit:       critpath.New(critpath.Options{Timeline: true, MaxTrackSegments: critTrackCap}),
		}
		if ent.truncated {
			ns.builder.SetTruncated(true)
		}
		sh.nodes[ent.node] = ns
		sh.c.metrics.nodes.Add(1)
	}
	return nil
}

// replayBatch folds one recovered raw batch back into its node — the
// same cursor and decode discipline as live ingest, minus the wire
// metrics (nothing was read off a connection this process).
func (sh *shard) replayBatch(b store.Batch) error {
	ns := sh.node(b.Node, b.Rank)
	ns.lastSeen = time.Unix(0, b.WallNano)
	if b.Flags&store.FlagPolicy != 0 {
		// A persisted directive: Seq carries the policy revision, not a
		// ship sequence number. Restore the latest so the reborn collector
		// re-issues exactly what its predecessor last told the node.
		np := ns.policyState()
		if b.Seq >= np.rev {
			np.rev = b.Seq
			np.payload = append([]byte(nil), b.Payload...)
			np.detail = map[string]bool{}
			if d, err := decodeControl(b.Payload); err == nil {
				for _, f := range d.Funcs {
					if f.Mode == instrument.ModeDetail {
						np.detail[f.Name] = true
					}
				}
			}
		}
		return nil
	}
	if b.Flags&store.FlagBulk == 0 {
		if b.Seq < ns.nextSeq {
			return nil // duplicate ack survived a historic race; drop like live ingest
		}
		if b.Seq > ns.nextSeq {
			ns.err = fmt.Errorf("collect: node %d: durable history gap (%d..%d lost)", ns.id, ns.nextSeq, b.Seq-1)
			ns.nextSeq = b.Seq + 1
			return nil
		}
		ns.nextSeq = b.Seq + 1
	}
	ns.segments++
	if b.Flags&store.FlagTruncated != 0 {
		ns.builder.SetTruncated(true)
	}
	if ns.err != nil {
		return nil
	}
	if b.Flags&store.FlagCoarse != 0 {
		// Coarse reports hold no events: the cursor already advanced
		// above; re-warm the policy ranking and leave the builder alone.
		if sh.c.opts.Policy.Enabled {
			if stats, err := decodeCoarse(b.Payload); err == nil {
				ns.policyState().accumulateCoarse(stats)
			}
		}
		return nil
	}
	batch, err := decodeChunk(b.Payload, ns.sym, ns.batch)
	if err != nil {
		ns.err = err
		return nil
	}
	ns.batch = batch[:0]
	ns.symsStored = ns.sym.Len()
	if err := ns.builder.Add(batch); err != nil {
		ns.err = err
		return nil
	}
	_ = ns.crit.Add(ns.id, ns.sym, batch)
	return nil
}

// node returns (creating if needed) the state for one node.
func (sh *shard) node(id, rank uint32) *nodeState {
	ns, ok := sh.nodes[id]
	if !ok {
		sym := trace.NewSymTab()
		ns = &nodeState{
			id:      id,
			rank:    rank,
			sym:     sym,
			builder: parser.NewBuilder(id, sym, parser.Options{Unit: sh.c.opts.Unit, SampleInterval: sh.c.opts.SampleInterval}),
			crit:    critpath.New(critpath.Options{Timeline: true, MaxTrackSegments: critTrackCap}),
		}
		sh.nodes[id] = ns
		sh.c.metrics.nodes.Add(1)
	}
	return ns
}

// handle executes one request against shard-owned state.
func (sh *shard) handle(req shardReq) shardResp {
	switch req.op {
	case opResume:
		ns := sh.node(req.node, req.rank)
		ns.lastSeen = sh.c.opts.Now()
		// A (re)connecting node gets its current directive re-issued:
		// control frames lost with a dead link are recovered here, not
		// retried individually — full-set semantics make that safe.
		return shardResp{resume: ns.nextSeq, ctl: ns.policy.currentDirective()}

	case opChunk:
		ns := sh.node(req.node, req.rank)
		ns.lastSeen = sh.c.opts.Now()
		if req.seq < ns.nextSeq {
			// Duplicate of a chunk that arrived before the link died;
			// ack it again so the shipper retires it.
			return shardResp{resume: ns.nextSeq, dup: true}
		}
		if req.seq > ns.nextSeq {
			// A gap can only mean this collector lost state the shipper
			// already had acknowledged (restart mid-stream). The symbols
			// in the hole are unrecoverable, so the node is poisoned
			// rather than mis-attributed; acking keeps the shipper from
			// resending forever.
			ns.err = fmt.Errorf("collect: node %d: sequence gap (%d..%d lost to a collector restart?)", ns.id, ns.nextSeq, req.seq-1)
			ns.nextSeq = req.seq + 1
			return shardResp{resume: ns.nextSeq, err: ns.err}
		}
		ns.nextSeq = req.seq + 1
		ns.segments++
		sh.c.metrics.shardSegments[sh.id].Add(1)
		if ns.err != nil {
			return shardResp{resume: ns.nextSeq, err: ns.err}
		}
		decodeStart := time.Now()
		batch, err := decodeChunk(req.chunk, ns.sym, ns.batch)
		sh.c.metrics.decodeSeconds.ObserveSince(decodeStart)
		if err != nil {
			ns.err = err
			return shardResp{resume: ns.nextSeq, err: err}
		}
		ns.batch = batch[:0]
		// Durable commit before the ack this response triggers: once the
		// shipper retires the chunk, only the store remembers it.
		sh.persist(ns, req.seq, 0, req.chunk)
		foldStart := time.Now()
		err = ns.builder.Add(batch)
		sh.c.metrics.foldSeconds.ObserveSince(foldStart)
		if err != nil {
			ns.err = err
			return shardResp{resume: ns.nextSeq, err: err}
		}
		_ = ns.crit.Add(ns.id, ns.sym, batch)
		sh.c.metrics.events.Add(uint64(len(batch)))
		var ctl *ctlFrame
		if sh.c.opts.Policy.Enabled {
			// Detail events are the overhead the budget throttles on.
			ns.policyState().roundEvents += uint64(len(batch))
			ctl = sh.evalPolicy(ns)
		}
		return shardResp{resume: ns.nextSeq, ctl: ctl}

	case opCoarse:
		// A coarse bucket report: shares the ship sequence space (and its
		// dedup/gap discipline) with ordinary chunks, but the payload feeds
		// the policy engine, not the profile builder. Decode problems are
		// advisory — count, drop, ack — a malformed report must never
		// poison the forward event stream.
		ns := sh.node(req.node, req.rank)
		ns.lastSeen = sh.c.opts.Now()
		if req.seq < ns.nextSeq {
			return shardResp{resume: ns.nextSeq, dup: true}
		}
		if req.seq > ns.nextSeq {
			ns.err = fmt.Errorf("collect: node %d: sequence gap (%d..%d lost to a collector restart?)", ns.id, ns.nextSeq, req.seq-1)
			ns.nextSeq = req.seq + 1
			return shardResp{resume: ns.nextSeq, err: ns.err}
		}
		ns.nextSeq = req.seq + 1
		ns.segments++
		sh.c.metrics.shardSegments[sh.id].Add(1)
		sh.c.metrics.coarseSegments.Add(1)
		if ns.err != nil {
			return shardResp{resume: ns.nextSeq, err: ns.err}
		}
		// Persist before the ack even though the payload is advisory: the
		// report consumed a sequence number, and replay must walk the
		// cursor through it or recovery would see a gap and poison the node.
		sh.persist(ns, req.seq, store.FlagCoarse, req.chunk)
		stats, err := decodeCoarse(req.chunk)
		if err != nil {
			sh.c.metrics.coarseErrors.Add(1)
			return shardResp{resume: ns.nextSeq}
		}
		var ctl *ctlFrame
		if sh.c.opts.Policy.Enabled {
			ns.policyState().accumulateCoarse(stats)
			ctl = sh.evalPolicy(ns)
		}
		return shardResp{resume: ns.nextSeq, ctl: ctl}

	case opEvents:
		ns := sh.node(req.node, req.rank)
		ns.lastSeen = sh.c.opts.Now()
		ns.segments++
		sh.c.metrics.shardSegments[sh.id].Add(1)
		if ns.err != nil {
			return shardResp{err: ns.err}
		}
		// Bulk batches carry the upload's own symbol ids; fold them into
		// the node's cumulative table (idempotent by name) and rewrite in
		// place — the batch buffer is the caller's, synchronously lent.
		for i := range req.batch {
			e := &req.batch[i]
			switch e.Kind {
			case trace.KindEnter, trace.KindExit, trace.KindMarker:
				name, err := req.sym.Name(e.FuncID)
				if err != nil {
					ns.err = err
					return shardResp{err: err}
				}
				e.FuncID = ns.sym.Register(name)
			}
		}
		sh.persistBulk(ns, 0, req.batch)
		foldStart := time.Now()
		err := ns.builder.Add(req.batch)
		sh.c.metrics.foldSeconds.ObserveSince(foldStart)
		if err != nil {
			ns.err = err
			return shardResp{err: err}
		}
		_ = ns.crit.Add(ns.id, ns.sym, req.batch)
		sh.c.metrics.events.Add(uint64(len(req.batch)))
		return shardResp{}

	case opFinishBulk:
		ns := sh.node(req.node, req.rank)
		ns.lastSeen = sh.c.opts.Now()
		if req.trunc {
			ns.builder.SetTruncated(true)
			// An empty flagged chunk records the truncation durably.
			sh.persistBulk(ns, store.FlagTruncated, nil)
		}
		return shardResp{}

	case opSnapshot:
		ids := make([]uint32, 0, len(sh.nodes))
		for id := range sh.nodes {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		resp := shardResp{}
		for _, id := range ids {
			ns := sh.nodes[id]
			np, err := ns.builder.Snapshot()
			if err != nil {
				// A poisoned builder still has a last-good story to tell
				// via status; skip it in fleet profiles.
				continue
			}
			resp.profiles = append(resp.profiles, np)
		}
		return resp

	case opStatus:
		resp := shardResp{}
		for _, ns := range sh.nodes {
			st := NodeStatus{
				NodeID:         ns.id,
				Rank:           ns.rank,
				Events:         ns.builder.Events(),
				Segments:       ns.segments,
				DurationS:      ns.builder.Duration().Seconds(),
				LastSeen:       ns.lastSeen,
				ArchivedEvents: ns.archEvents,
			}
			if ns.err != nil {
				st.Err = ns.err.Error()
			}
			resp.statuses = append(resp.statuses, st)
		}
		return resp

	case opPolicyStatus:
		resp := shardResp{}
		for _, ns := range sh.nodes {
			if ns.policy != nil {
				resp.policies = append(resp.policies, ns.policyStatus())
			}
		}
		return resp

	case opCritPath:
		// One node's critical-path answer. Summary() is a fresh value and
		// Tracks() copies its segments, so the reply shares nothing with
		// worker-owned analyzer state. Queries never create nodes.
		ns, ok := sh.nodes[req.node]
		if !ok {
			return shardResp{err: fmt.Errorf("collect: unknown node %d", req.node)}
		}
		return shardResp{crit: ns.crit.Summary(), critTracks: ns.crit.Tracks(), critDur: ns.crit.Duration()}

	case opArchHeat:
		// Compacted history's contribution to one sensor's ranking. The
		// slices are startup-immutable (only replayArchive writes them), so
		// handing them across the reply is safe.
		resp := shardResp{}
		for _, ns := range sh.nodes {
			if req.sensor >= 0 && req.sensor < len(ns.archHeat) {
				resp.heat = append(resp.heat, ns.archHeat[req.sensor]...)
			}
		}
		return resp

	case opWindowHeat:
		return sh.handleWindowHeat(req)

	case opWindowProfile:
		return sh.handleWindowProfile(req)

	case opWindows:
		return sh.handleWindows(req)
	}
	return shardResp{err: fmt.Errorf("collect: unknown shard op %d", req.op)}
}

// Serve accepts ingest connections on ln until the collector is closed
// or the listener fails. Each connection is either a shipped chunk
// stream (hello magic) or a bulk trace upload (TPST magic).
func (c *Collector) Serve(ln net.Listener) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errors.New("collect: collector closed")
	}
	c.ln = ln
	c.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			conn.Close()
			return nil
		}
		c.conns[conn] = struct{}{}
		c.wg.Add(1)
		c.mu.Unlock()
		go func() {
			defer c.wg.Done()
			c.serveConn(conn)
			c.mu.Lock()
			delete(c.conns, conn)
			c.mu.Unlock()
		}()
	}
}

// serveConn dispatches one ingest connection by its magic.
func (c *Collector) serveConn(conn net.Conn) {
	defer conn.Close()
	c.metrics.connections.Add(1)
	br := bufio.NewReader(newCountingReader(conn, c.metrics.bytes))
	magic, err := br.Peek(4)
	if err != nil {
		return
	}
	switch binary.LittleEndian.Uint32(magic) {
	case helloMagic:
		br.Discard(4)
		c.serveShipStream(conn, br)
	default:
		// Anything else is handed to the trace scanner, which enforces
		// the TPST magic itself and yields a precise error.
		c.serveBulk(conn, br)
	}
}

// serveShipStream handles one shipper connection: resume handshake, then
// frames, each acked with the node's next expected sequence number.
// Control directives from the policy engine piggyback on the downstream
// channel right after the ack that triggered them; a fresh connection
// re-issues the node's current directive during the handshake, which is
// how control frames lost with a dead link are recovered.
func (c *Collector) serveShipStream(conn net.Conn, br *bufio.Reader) {
	h, err := readHelloTail(br)
	if err != nil {
		c.metrics.ingestErrors.Add(1)
		return
	}
	sh := c.shardFor(h.NodeID)
	resp := sh.call(shardReq{op: opResume, node: h.NodeID, rank: h.Rank})
	if err := writeAck(conn, resp.resume); err != nil {
		return
	}
	var sentRev uint64
	if !c.sendControl(conn, resp.ctl, &sentRev) {
		return
	}
	var frameBuf []byte
	for {
		seq, kind, payload, buf, err := readFrame(br, frameBuf)
		frameBuf = buf
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				c.metrics.ingestErrors.Add(1)
			}
			return
		}
		c.metrics.segments.Add(1)
		op := opChunk
		if kind == frameCoarse {
			op = opCoarse
		}
		resp := sh.call(shardReq{op: op, node: h.NodeID, rank: h.Rank, seq: seq, chunk: payload})
		if resp.dup {
			c.metrics.dedupDrops.Add(1)
		}
		if resp.err != nil {
			c.metrics.ingestErrors.Add(1)
		}
		if err := writeAck(conn, resp.resume); err != nil {
			return
		}
		if !c.sendControl(conn, resp.ctl, &sentRev) {
			return
		}
	}
}

// sendControl writes ctl down the connection when it advances the
// connection's last-sent revision; reports whether the link survived.
// Stale frames (a directive the connection already carried) are skipped,
// not errors — the shipper's own revision dedup would drop them anyway.
func (c *Collector) sendControl(conn net.Conn, ctl *ctlFrame, sentRev *uint64) bool {
	if ctl == nil || ctl.rev <= *sentRev {
		return true
	}
	if err := writeControl(conn, ctl.rev, ctl.payload); err != nil {
		return false
	}
	*sentRev = ctl.rev
	c.metrics.controlFramesSent.Add(1)
	return true
}

// serveBulk ingests one complete trace stream (the offline file format,
// v1 or v2) from the connection — `tempest-collectd -upload` and piped
// tempd output use this path. The per-connection scanner comes from a
// pool and is Reset onto the stream, so bulk ingest reuses decode
// buffers across connections instead of reallocating them.
func (c *Collector) serveBulk(conn net.Conn, br *bufio.Reader) {
	var sc *trace.Scanner
	if pooled := c.scanners.Get(); pooled != nil {
		sc = pooled.(*trace.Scanner)
		if err := sc.Reset(br); err != nil {
			c.metrics.ingestErrors.Add(1)
			c.scanners.Put(sc)
			return
		}
	} else {
		var err error
		sc, err = trace.NewScanner(br)
		if err != nil {
			c.metrics.ingestErrors.Add(1)
			return
		}
	}
	defer c.scanners.Put(sc)
	sh := c.shardFor(sc.NodeID())
	failed := false
	for {
		batch, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			c.metrics.ingestErrors.Add(1)
			return
		}
		c.metrics.segments.Add(1)
		// The worker call is synchronous, so handing it the scanner's
		// reused batch buffer is safe: the builder retains nothing.
		resp := sh.call(shardReq{op: opEvents, node: sc.NodeID(), rank: sc.Rank(), batch: batch, sym: sc.Sym()})
		if resp.err != nil {
			c.metrics.ingestErrors.Add(1)
			failed = true
			break
		}
	}
	if !failed {
		sh.call(shardReq{op: opFinishBulk, node: sc.NodeID(), rank: sc.Rank(), trunc: sc.Truncated()})
	}
}

// IngestTrace folds a whole in-memory trace into the collector through
// the same shard path as network ingest — the programmatic loader for
// tests and local files.
func (c *Collector) IngestTrace(tr *trace.Trace) error {
	if tr == nil {
		return errors.New("collect: nil trace")
	}
	sh := c.shardFor(tr.NodeID)
	// Re-encode through a chunk so symbol registration follows the same
	// dense-id path as shipped streams.
	payload, _, err := encodeChunk(tr.Events, tr.Sym, 0)
	if err != nil {
		return err
	}
	resp := sh.call(shardReq{op: opResume, node: tr.NodeID, rank: tr.Rank})
	c.metrics.segments.Add(1)
	resp = sh.call(shardReq{op: opChunk, node: tr.NodeID, rank: tr.Rank, seq: resp.resume, chunk: payload})
	if resp.err != nil {
		return resp.err
	}
	c.metrics.bytes.Add(uint64(len(payload)) + frameHdrLen)
	if tr.Truncated {
		sh.call(shardReq{op: opFinishBulk, node: tr.NodeID, rank: tr.Rank, trunc: true})
	}
	return nil
}

// Nodes lists every known node's ingest status, sorted by node ID.
func (c *Collector) Nodes() []NodeStatus {
	var out []NodeStatus
	for _, sh := range c.shards {
		out = append(out, sh.call(shardReq{op: opStatus}).statuses...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].NodeID < out[j].NodeID })
	if out == nil {
		out = []NodeStatus{}
	}
	return out
}

// Profile assembles the fleet-wide profile from a live snapshot of every
// node's builder, nodes sorted by ID — the online equivalent of
// parser.ParseAll over the same traces.
func (c *Collector) Profile() *parser.Profile {
	var nps []*parser.NodeProfile
	for _, sh := range c.shards {
		nps = append(nps, sh.call(shardReq{op: opSnapshot}).profiles...)
	}
	sort.Slice(nps, func(i, j int) bool { return nps[i].NodeID < nps[j].NodeID })
	p := &parser.Profile{Unit: c.opts.Unit}
	for _, np := range nps {
		p.Nodes = append(p.Nodes, *np)
	}
	return p
}

// NodeProfile snapshots one node's in-progress profile.
func (c *Collector) NodeProfile(id uint32) (*parser.NodeProfile, error) {
	resp := c.shardFor(id).call(shardReq{op: opSnapshot})
	for _, np := range resp.profiles {
		if np.NodeID == id {
			return np, nil
		}
	}
	return nil, fmt.Errorf("collect: unknown node %d", id)
}

// CritPath snapshots one node's streaming critical-path analysis: the
// serialization/wait summary, the bounded per-lane timeline tracks, and
// the analyzed duration. The snapshot is non-destructive — ingest keeps
// folding and later calls see strictly more history.
func (c *Collector) CritPath(id uint32) (*critpath.Summary, []critpath.Track, time.Duration, error) {
	resp := c.shardFor(id).call(shardReq{op: opCritPath, node: id})
	if resp.err != nil {
		return nil, nil, 0, resp.err
	}
	return resp.crit, resp.critTracks, resp.critDur, nil
}

// PolicyStatuses reports the adaptive-sampling policy state for every
// node the engine has touched, sorted by node ID — the /api/policy
// payload.
func (c *Collector) PolicyStatuses() []PolicyStatus {
	out := []PolicyStatus{}
	for _, sh := range c.shards {
		out = append(out, sh.call(shardReq{op: opPolicyStatus}).policies...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].NodeID < out[j].NodeID })
	return out
}

// archivedHeat collects every shard's compacted hot-spot contributions
// for one sensor.
func (c *Collector) archivedHeat(sensor int) []hotspot.FunctionHeat {
	var out []hotspot.FunctionHeat
	for _, sh := range c.shards {
		out = append(out, sh.call(shardReq{op: opArchHeat, sensor: sensor}).heat...)
	}
	return out
}

// Metrics exposes the collector's self-observability counters.
func (c *Collector) Metrics() *Metrics { return c.metrics }

// Close shuts the collector down: the ingest listener stops, open
// connections are torn down, and shard workers exit after draining
// in-flight requests. Close is idempotent.
func (c *Collector) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	ln := c.ln
	conns := make([]net.Conn, 0, len(c.conns))
	for conn := range c.conns {
		conns = append(conns, conn)
	}
	c.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, conn := range conns {
		conn.Close()
	}
	// Connection handlers exit once their conns die; only then is it
	// safe to close the shard queues they feed.
	c.connWait()
	c.callMu.Lock()
	c.down = true
	for _, sh := range c.shards {
		close(sh.work)
	}
	c.callMu.Unlock()
	c.wg.Wait()
	return nil
}

// connWait blocks until all connection handlers have returned. Shard
// workers are still live here, so handlers never block on a dead queue.
func (c *Collector) connWait() {
	for {
		c.mu.Lock()
		n := len(c.conns)
		c.mu.Unlock()
		if n == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// countingReader tallies bytes read into an ingest byte counter.
type countingReader struct {
	r io.Reader
	n *introspect.Counter
}

func newCountingReader(r io.Reader, n *introspect.Counter) *countingReader {
	return &countingReader{r: r, n: n}
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n.Add(uint64(n))
	return n, err
}
