package collect

import (
	"bytes"
	"testing"
	"time"

	"tempest/internal/trace"
)

// validFrame builds a well-formed frame around a real encoded chunk, so
// the fuzzer starts from inputs that reach the decoder's deep paths.
func validFrame(t testing.TB) []byte {
	sym := trace.NewSymTab()
	sym.Register("pkg.hot")
	sym.Register("pkg.cold")
	events := []trace.Event{
		{Kind: trace.KindEnter, Lane: 0, TS: 10 * time.Microsecond, FuncID: 0},
		{Kind: trace.KindSample, Lane: 1, TS: 15 * time.Microsecond, SensorID: 0, ValueC: 48.125},
		{Kind: trace.KindExit, Lane: 0, TS: 20 * time.Microsecond, FuncID: 0},
		{Kind: trace.KindDrop, Lane: 0, TS: 25 * time.Microsecond, Aux: 3},
	}
	payload, _, err := encodeChunk(events, sym, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeFrame(&buf, 7, frameData, payload); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzFrame drives the ship-mode wire decoder with arbitrary bytes:
// readFrame and decodeChunk must never panic, and any single-byte
// payload corruption of an accepted frame must be rejected by the
// checksum (the §3.3 integrity property the frame CRC exists for).
func FuzzFrame(f *testing.F) {
	f.Add(validFrame(f))
	f.Add([]byte{})
	f.Add(validFrame(f)[:frameHdrLen])    // header only, torn payload
	f.Add(validFrame(f)[:frameHdrLen/2])  // torn header
	f.Add(bytes.Repeat([]byte{0xFF}, 64)) // insane length + checksum
	f.Add(append(validFrame(f), 0, 1, 2)) // trailing garbage after frame

	f.Fuzz(func(t *testing.T, data []byte) {
		seq, kind, payload, _, err := readFrame(bytes.NewReader(data), nil)
		if err != nil {
			return // malformed input rejected cleanly: that is the contract
		}
		_, _ = seq, kind
		// The checksum accepted this frame: decoding may fail (the payload
		// is still arbitrary) but must never panic, and must leave no
		// partial symbols usable for a second, inconsistent decode.
		sym := trace.NewSymTab()
		if batch, derr := decodeChunk(payload, sym, nil); derr == nil {
			// A chunk that decodes must decode identically a second time
			// against a fresh table (chunks are self-contained).
			again, aerr := decodeChunk(payload, trace.NewSymTab(), nil)
			if aerr != nil {
				t.Fatalf("second decode of accepted chunk failed: %v", aerr)
			}
			if len(again) != len(batch) {
				t.Fatalf("decode not deterministic: %d vs %d events", len(batch), len(again))
			}
		}

		// Corruption property: flip one payload byte and the frame must
		// not survive the CRC.
		if len(payload) > 0 {
			mut := append([]byte(nil), data...)
			mut[frameHdrLen] ^= 0xFF
			if _, _, _, _, err := readFrame(bytes.NewReader(mut), nil); err == nil {
				t.Fatal("frame with corrupted payload passed the checksum")
			}
		}
	})
}
