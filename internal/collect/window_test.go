package collect

import (
	"errors"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"tempest/internal/store"
	"tempest/internal/trace"
)

// windowFixture builds the deterministic mixed-history collector the
// endpoint goldens query: one shard, 1-minute segments and archive
// granules, 5-minute retention. Node 1's events are ingested at t0 and
// aged out into the folded archive when node 2's ingest at t0+8m rolls
// the segment; node 2 stays raw. The returned walls are the two commit
// instants.
func windowFixture(t *testing.T) (*Collector, time.Time, time.Time) {
	t.Helper()
	clk := newStoreClock()
	opts := Options{
		StoreDir: t.TempDir(),
		Shards:   1,
		Logger:   quietLogger(),
		Now:      clk.now,
		StoreOptions: store.Options{
			Window:    time.Minute,
			Retention: 5 * time.Minute,
		},
	}
	c := New(opts)
	t.Cleanup(func() { c.Close() })
	t0 := clk.now()
	if err := c.IngestTrace(buildTrace(t, 1, []string{"compute", "exchange"}, 50)); err != nil {
		t.Fatal(err)
	}
	clk.advance(8 * time.Minute)
	t1 := clk.now()
	if err := c.IngestTrace(buildTrace(t, 2, []string{"compute", "io"}, 60)); err != nil {
		t.Fatal(err)
	}
	return c, t0, t1
}

func rfc3339(ts time.Time) string { return ts.UTC().Format(time.RFC3339Nano) }

func TestHTTPWindowEndpointsGolden(t *testing.T) {
	c, t0, t1 := windowFixture(t)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	// Node 1's history is fully archived, node 2's fully raw: the window
	// listing shows both granularities.
	code, body, _ := get(t, srv, "/api/windows/1")
	if code != 200 {
		t.Fatalf("/api/windows/1 status %d:\n%s", code, body)
	}
	checkGolden(t, "windows_archived_node", body)
	code, body, _ = get(t, srv, "/api/windows/2")
	if code != 200 {
		t.Fatalf("/api/windows/2 status %d:\n%s", code, body)
	}
	checkGolden(t, "windows_raw_node", body)

	// A trailing window wide enough for both nodes folds archived heat
	// (node 1) with the on-demand raw decode (node 2).
	code, body, _ = get(t, srv, "/api/hotspots?window=30m&k=5")
	if code != 200 {
		t.Fatalf("hotspots window status %d:\n%s", code, body)
	}
	if !strings.Contains(body, `"window": "30m0s"`) {
		t.Errorf("response does not echo the window:\n%s", body)
	}
	checkGolden(t, "hotspots_window_mixed", body)

	// Range spanning raw history only: rows plus the window comment.
	code, body, hdr := get(t, srv, fmt.Sprintf("/api/series/2?from=%s&to=%s",
		rfc3339(t1), rfc3339(t1.Add(time.Minute))))
	if code != 200 || !strings.HasPrefix(hdr.Get("Content-Type"), "text/csv") {
		t.Fatalf("raw-range series: status %d type %q", code, hdr.Get("Content-Type"))
	}
	checkGolden(t, "series_window_raw", body)

	// Range spanning only compacted history: 200 with the explicit
	// truncation marker, never a silent empty series.
	code, body, _ = get(t, srv, fmt.Sprintf("/api/series/1?from=%s&to=%s",
		rfc3339(t0.Add(-time.Minute)), rfc3339(t0.Add(time.Minute))))
	if code != 200 {
		t.Fatalf("archived-range series status %d:\n%s", code, body)
	}
	if !strings.Contains(body, "# truncated:") {
		t.Fatalf("archived-range series lacks truncation marker:\n%s", body)
	}
	checkGolden(t, "series_window_archived", body)

	// Empty range: an answer (headers, no rows), not an error.
	code, body, _ = get(t, srv, fmt.Sprintf("/api/series/2?from=%s&to=%s",
		rfc3339(t1), rfc3339(t1)))
	if code != 200 {
		t.Fatalf("empty-range series status %d:\n%s", code, body)
	}
	checkGolden(t, "series_window_empty", body)

	// Range entirely before the first stored record: clean empty series.
	code, body, _ = get(t, srv, fmt.Sprintf("/api/series/1?from=%s&to=%s",
		rfc3339(t0.Add(-2*time.Hour)), rfc3339(t0.Add(-time.Hour))))
	if code != 200 {
		t.Fatalf("before-history series status %d:\n%s", code, body)
	}
	if strings.Contains(body, "# truncated:") {
		t.Errorf("range before history claims truncation:\n%s", body)
	}
	checkGolden(t, "series_window_before", body)

	// Parameter and existence failures.
	for path, want := range map[string]int{
		// Reversed range: from after to.
		fmt.Sprintf("/api/series/2?from=%s&to=%s", rfc3339(t1.Add(time.Hour)), rfc3339(t1)): 400,
		"/api/series/2?from=2026-01-01T00:00:00Z":                                           400, // from without to
		"/api/series/2?to=2026-01-01T00:00:00Z":                                             400, // to without from
		"/api/series/2?from=nonsense&to=2026-01-01T00:00:00Z":                               400,
		"/api/series/99?from=0&to=1":                                                        404, // unknown node, well-formed range
		"/api/windows/99":                                                                   404,
		"/api/windows/bad":                                                                  400,
	} {
		if code, _, _ := get(t, srv, path); code != want {
			t.Errorf("%s status = %d, want %d", path, code, want)
		}
	}
}

// TestWindowQueriesWithoutStore pins the memory-only contract: the
// historical endpoints answer 503 (not 404, not empty 200) when there is
// no durable store to query.
func TestWindowQueriesWithoutStore(t *testing.T) {
	c := goldenCollector(t, 2)
	if _, err := c.WindowHotspots(0, 10, 0, 1); !errors.Is(err, ErrHistoryUnavailable) {
		t.Fatalf("WindowHotspots without store: %v, want ErrHistoryUnavailable", err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	for _, path := range []string{
		"/api/hotspots?window=30m",
		"/api/series/1?from=0&to=100",
	} {
		if code, _, _ := get(t, srv, path); code != 503 {
			t.Errorf("%s status = %d, want 503", path, code)
		}
	}
	// The window listing still answers: it reports durable=false.
	code, body, _ := get(t, srv, "/api/windows/1")
	if code != 200 || !strings.Contains(body, `"durable": false`) {
		t.Errorf("/api/windows/1 without store: status %d body %s", code, body)
	}
}

// TestWindowHotspotsMatchesOracle is the acceptance property: over any
// range covered by raw windows, the time-ranged answer is exactly what
// an uncompacted oracle collector replaying only the in-range events
// produces — function set, heat ordering, and node rankings.
func TestWindowHotspotsMatchesOracle(t *testing.T) {
	clk := newStoreClock()
	opts := Options{StoreDir: t.TempDir(), Shards: 1, Logger: quietLogger(), Now: clk.now}
	c := New(opts)
	defer c.Close()

	specs := [][]string{
		{"compute", "exchange"},
		{"compute", "io"},
		{"idle_wait", "compute"},
		{"reduce", "compute"},
		{"io", "exchange"},
	}
	var traces []*traceFixture
	for i, fn := range specs {
		tf := &traceFixture{tr: buildTrace(t, uint32(i+1), fn, 30+10*i), wall: clk.now()}
		if err := c.IngestTrace(tf.tr); err != nil {
			t.Fatal(err)
		}
		traces = append(traces, tf)
		clk.advance(time.Minute)
	}
	end := traces[len(traces)-1].wall.UnixNano() + 1

	for _, rng := range [][2]int{{0, 5}, {0, 1}, {1, 4}, {2, 3}, {4, 5}, {1, 5}, {2, 2}} {
		from := traces[rng[0]].wall.UnixNano()
		to := end
		if rng[1] < len(traces) {
			to = traces[rng[1]].wall.UnixNano()
		}
		oracle := New(Options{Logger: quietLogger()})
		for i := rng[0]; i < rng[1]; i++ {
			if err := oracle.IngestTrace(traces[i].tr); err != nil {
				t.Fatal(err)
			}
		}
		want, err := oracle.Hotspots(0, 10)
		oracle.Close()
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.WindowHotspots(0, 10, from, to)
		if err != nil {
			t.Fatalf("WindowHotspots[%d,%d): %v", rng[0], rng[1], err)
		}
		if !reflect.DeepEqual(got.Functions, want.Functions) {
			t.Errorf("range [%d,%d): functions diverged from oracle:\n got %+v\nwant %+v", rng[0], rng[1], got.Functions, want.Functions)
		}
		if !reflect.DeepEqual(got.Merged, want.Merged) {
			t.Errorf("range [%d,%d): merged diverged from oracle:\n got %+v\nwant %+v", rng[0], rng[1], got.Merged, want.Merged)
		}
		if !reflect.DeepEqual(got.Nodes, want.Nodes) {
			t.Errorf("range [%d,%d): nodes diverged from oracle:\n got %+v\nwant %+v", rng[0], rng[1], got.Nodes, want.Nodes)
		}
	}
}

type traceFixture struct {
	tr   *trace.Trace
	wall time.Time
}

// TestWindowHotspotsCompactedMatchesOracle checks the archived side of
// the acceptance property: after retention folds raw history into
// granule windows, a range covering those windows still answers exactly
// like the uncompacted oracle (function set and ordering) — the fold is
// associative, so the granularity loss never changes a covered ranking.
func TestWindowHotspotsCompactedMatchesOracle(t *testing.T) {
	clk := newStoreClock()
	dir := t.TempDir()
	opts := Options{
		StoreDir: dir,
		Shards:   1,
		Logger:   quietLogger(),
		Now:      clk.now,
		StoreOptions: store.Options{
			Window:    time.Minute,
			Retention: 5 * time.Minute,
		},
		ArchiveGranule: time.Minute,
	}
	oracle := New(Options{Logger: quietLogger()})
	defer oracle.Close()

	c1 := New(opts)
	t0 := clk.now()
	for i, fn := range [][]string{{"compute", "exchange"}, {"compute", "io"}} {
		tr := buildTrace(t, uint32(i+1), fn, 50+10*i)
		if err := c1.IngestTrace(tr); err != nil {
			t.Fatal(err)
		}
		if err := oracle.IngestTrace(tr); err != nil {
			t.Fatal(err)
		}
		clk.advance(time.Minute)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	want, err := oracle.Hotspots(0, 10)
	if err != nil {
		t.Fatal(err)
	}

	// Reopen far past retention: everything folds into per-minute archive
	// windows; raw history is gone.
	clk.advance(10 * time.Minute)
	c2 := New(opts)
	defer c2.Close()
	got, err := c2.WindowHotspots(0, 10, t0.Add(-time.Hour).UnixNano(), clk.now().UnixNano())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Functions, want.Functions) {
		t.Errorf("archived-range functions diverged from oracle:\n got %+v\nwant %+v", got.Functions, want.Functions)
	}
	if !reflect.DeepEqual(got.Merged, want.Merged) {
		t.Errorf("archived-range merged diverged from oracle:\n got %+v\nwant %+v", got.Merged, want.Merged)
	}
}

// TestWindowDecodeCacheAndInvalidation pins the LRU contract: a repeated
// range is served from cache, and an append landing inside a cached
// range evicts it so the next query sees the new events.
func TestWindowDecodeCacheAndInvalidation(t *testing.T) {
	clk := newStoreClock()
	opts := Options{StoreDir: t.TempDir(), Shards: 1, Logger: quietLogger(), Now: clk.now}
	c := New(opts)
	defer c.Close()
	if err := c.IngestTrace(buildTrace(t, 1, []string{"compute"}, 20)); err != nil {
		t.Fatal(err)
	}
	from := clk.now().Add(-time.Minute).UnixNano()
	to := clk.now().Add(time.Hour).UnixNano()

	q1, err := c.WindowHotspots(0, 10, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if q, h := c.metrics.windowQueries.Value(), c.metrics.windowCacheHits.Value(); q != 1 || h != 0 {
		t.Fatalf("after first query: queries=%d hits=%d, want 1/0", q, h)
	}
	q2, err := c.WindowHotspots(0, 10, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if q, h := c.metrics.windowQueries.Value(), c.metrics.windowCacheHits.Value(); q != 2 || h != 1 {
		t.Fatalf("after repeat query: queries=%d hits=%d, want 2/1", q, h)
	}
	if !reflect.DeepEqual(q1, q2) {
		t.Fatalf("cached answer diverged:\n got %+v\nwant %+v", q2, q1)
	}

	// A commit inside the cached range must evict it — and the re-decode
	// must see the new node.
	clk.advance(time.Minute)
	if err := c.IngestTrace(buildTrace(t, 2, []string{"fresh_func"}, 20)); err != nil {
		t.Fatal(err)
	}
	q3, err := c.WindowHotspots(0, 10, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if q, h := c.metrics.windowQueries.Value(), c.metrics.windowCacheHits.Value(); q != 3 || h != 1 {
		t.Fatalf("after invalidating append: queries=%d hits=%d, want 3/1", q, h)
	}
	found := false
	for _, f := range q3.Functions {
		if f.Name == "fresh_func" {
			found = true
		}
	}
	if !found {
		t.Fatalf("stale cache: post-append query misses the new node's function: %+v", q3.Functions)
	}
}
