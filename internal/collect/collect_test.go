package collect

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"tempest/internal/parser"
	"tempest/internal/report"
	"tempest/internal/trace"
	"tempest/internal/vclock"
)

// buildTrace produces a deterministic single-node trace: calls cycles of
// enter/sample/exit across the named functions on a virtual clock.
// Sample values are exact in milli-degrees so the ship-mode quantisation
// round-trips them bit-for-bit, like the trace file codec does.
func buildTrace(t testing.TB, node uint32, funcs []string, calls int) *trace.Trace {
	t.Helper()
	clk := vclock.NewVirtualClock()
	tr, err := trace.NewTracer(trace.Config{Clock: clk, NodeID: node, Rank: node, LaneBufferCap: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	lane := tr.NewLane()
	ids := make([]uint32, len(funcs))
	for i, name := range funcs {
		ids[i] = tr.RegisterFunc(name)
	}
	for i := 0; i < calls; i++ {
		f := ids[i%len(ids)]
		clk.Advance(time.Millisecond)
		lane.Enter(f)
		clk.Advance(time.Millisecond)
		tr.Sample(0, 40+float64(node)+0.25*float64(i%8)+float64(i%len(ids)))
		clk.Advance(time.Duration(1+i%3) * time.Millisecond)
		if err := lane.Exit(f); err != nil {
			t.Fatal(err)
		}
	}
	return tr.Finish()
}

// offlineNodeProfile parses a trace exactly like tempest-parse does:
// through the file codec (write + read back), then parser.Parse.
func offlineNodeProfile(t testing.TB, tr *trace.Trace, u parser.Unit) *parser.NodeProfile {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	rt, err := trace.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	np, err := parser.Parse(rt, parser.Options{Unit: u})
	if err != nil {
		t.Fatal(err)
	}
	return np
}

// renderNode is the byte-level equivalence oracle: two profiles are "the
// same" iff the paper-format report renders identically.
func renderNode(t testing.TB, np *parser.NodeProfile) string {
	t.Helper()
	var buf bytes.Buffer
	if err := report.WriteNode(&buf, np, report.Options{Labels: true}); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// startCollector returns a collector serving a real TCP listener.
func startCollector(t testing.TB, opts Options) (*Collector, string) {
	t.Helper()
	c := New(opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go c.Serve(ln)
	t.Cleanup(func() { c.Close() })
	return c, ln.Addr().String()
}

// shipTrace streams a trace's events through a Shipper in small batches,
// exactly as a live session's drain loop would.
func shipTrace(t testing.TB, s *Shipper, tr *trace.Trace, batchLen int) {
	t.Helper()
	for i := 0; i < len(tr.Events); i += batchLen {
		end := i + batchLen
		if end > len(tr.Events) {
			end = len(tr.Events)
		}
		if err := s.Ship(tr.Events[i:end], tr.Sym); err != nil {
			t.Fatalf("Ship batch at %d: %v", i, err)
		}
	}
}

func TestShipCollectorMatchesOfflineParse(t *testing.T) {
	tr := buildTrace(t, 1, []string{"compute", "exchange", "io"}, 60)
	c, addr := startCollector(t, Options{})

	s := NewShipper(addr, tr.NodeID, tr.Rank, ShipperOptions{})
	shipTrace(t, s, tr, 7)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := s.Stats()
	if st.DroppedSegments != 0 || st.AckedSegments == 0 || st.AckedSegments != st.EnqueuedSegments {
		t.Fatalf("stats: %+v", st)
	}

	np, err := c.NodeProfile(tr.NodeID)
	if err != nil {
		t.Fatal(err)
	}
	got := renderNode(t, np)
	want := renderNode(t, offlineNodeProfile(t, tr, parser.Fahrenheit))
	if got != want {
		t.Errorf("shipped profile differs from offline parse:\n--- shipped ---\n%s--- offline ---\n%s", got, want)
	}
	if c.Metrics().Segments() == 0 || c.Metrics().Events() == 0 || c.Metrics().Bytes() == 0 {
		t.Errorf("metrics not counting: segments=%d events=%d bytes=%d",
			c.Metrics().Segments(), c.Metrics().Events(), c.Metrics().Bytes())
	}
}

func TestBulkUploadMatchesOfflineParse(t *testing.T) {
	tr := buildTrace(t, 4, []string{"solve", "halo"}, 40)
	var raw bytes.Buffer
	if err := tr.WriteSegmented(&raw, 16); err != nil {
		t.Fatal(err)
	}
	c, addr := startCollector(t, Options{})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(raw.Bytes()); err != nil {
		t.Fatal(err)
	}
	conn.(*net.TCPConn).CloseWrite()
	io.Copy(io.Discard, conn) // returns when the collector finished and closed
	conn.Close()

	np, err := c.NodeProfile(tr.NodeID)
	if err != nil {
		t.Fatal(err)
	}
	got := renderNode(t, np)
	want := renderNode(t, offlineNodeProfile(t, tr, parser.Fahrenheit))
	if got != want {
		t.Errorf("bulk-uploaded profile differs from offline parse:\n--- uploaded ---\n%s--- offline ---\n%s", got, want)
	}
}

func TestShipperFlushDeadlineReportsDrops(t *testing.T) {
	// A listener that accepts and answers the handshake but never acks:
	// Close must give up at FlushTimeout and report the loss explicitly.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				var resume [9]byte // downAck kind + next = 0
				io.ReadFull(conn, make([]byte, 8)) // swallow the 8-byte hello
				conn.Write(resume[:])              // resume = 0
				io.Copy(io.Discard, conn)          // read frames, never ack
			}(conn)
		}
	}()

	tr := buildTrace(t, 2, []string{"f"}, 10)
	s := NewShipper(ln.Addr().String(), tr.NodeID, tr.Rank, ShipperOptions{
		FlushTimeout: 50 * time.Millisecond,
	})
	shipTrace(t, s, tr, 5)
	start := time.Now()
	err = s.Close()
	if err == nil {
		t.Fatal("Close reported clean delivery with no acks ever received")
	}
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Close error = %v, want ErrQueueFull wrap", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Close blocked %v, deadline not applied", elapsed)
	}
	st := s.Stats()
	if st.DroppedSegments != st.EnqueuedSegments || st.DroppedSegments == 0 {
		t.Fatalf("drop accounting: %+v", st)
	}
	if _, serr := fmt.Sscanf(err.Error(), ""); serr != nil && !strings.Contains(err.Error(), "undelivered") {
		t.Errorf("error does not mention undelivered segments: %v", err)
	}
}

func TestShipperQueueFullDropsAndAccounts(t *testing.T) {
	// No collector at all: the dial fails forever, the bounded queue
	// fills, and further batches are dropped with explicit accounting.
	dialErr := errors.New("down")
	s := NewShipper("127.0.0.1:1", 9, 0, ShipperOptions{
		QueueLen:     2,
		FlushTimeout: 20 * time.Millisecond,
		Dial: func(network, addr string, timeout time.Duration) (net.Conn, error) {
			return nil, dialErr
		},
		Sleep: func(time.Duration) {},
	})
	tr := buildTrace(t, 9, []string{"g"}, 20)
	var full int
	for i := 0; i < len(tr.Events); i += 4 {
		err := s.Ship(tr.Events[i:i+4], tr.Sym)
		if errors.Is(err, ErrQueueFull) {
			full++
		} else if err != nil {
			t.Fatalf("Ship: %v", err)
		}
	}
	if full == 0 {
		t.Fatal("bounded queue never reported full")
	}
	err := s.Close()
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Close = %v, want ErrQueueFull wrap", err)
	}
	st := s.Stats()
	// Every batch was lost: rejected by the full queue, or accepted and
	// then abandoned by the flush deadline (those count as both enqueued
	// and dropped — accepted is not delivered).
	if st.DroppedSegments != uint64(len(tr.Events)/4) || st.AckedSegments != 0 {
		t.Fatalf("drop accounting: %+v", st)
	}
	if st.DroppedEvents != uint64(len(tr.Events)) {
		t.Fatalf("dropped events = %d, want %d", st.DroppedEvents, len(tr.Events))
	}
	// Shipping after Close is an explicit error, still accounted.
	if err := s.Ship(tr.Events[:1], tr.Sym); !errors.Is(err, ErrShipperClosed) {
		t.Fatalf("Ship after Close = %v", err)
	}
}

// rawShipClient speaks the wire protocol by hand for deterministic
// server-side tests.
type rawShipClient struct {
	t    *testing.T
	conn net.Conn
}

func dialShip(t *testing.T, addr string, node, rank uint32) *rawShipClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if err := writeHello(conn, hello{NodeID: node, Rank: rank}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readDown(conn, nil); err != nil {
		t.Fatal(err)
	}
	return &rawShipClient{t: t, conn: conn}
}

func (rc *rawShipClient) send(seq uint64, payload []byte) uint64 {
	rc.t.Helper()
	if err := writeFrame(rc.conn, seq, frameData, payload); err != nil {
		rc.t.Fatal(err)
	}
	for {
		df, _, err := readDown(rc.conn, nil)
		if err != nil {
			rc.t.Fatal(err)
		}
		if df.kind == downAck {
			return df.next
		}
	}
}

func TestDuplicateFrameDedupedExactlyOnce(t *testing.T) {
	tr := buildTrace(t, 3, []string{"dup"}, 8)
	payload, _, err := encodeChunk(tr.Events, tr.Sym, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, addr := startCollector(t, Options{})
	rc := dialShip(t, addr, tr.NodeID, tr.Rank)
	if ack := rc.send(0, payload); ack != 1 {
		t.Fatalf("first ack = %d", ack)
	}
	if ack := rc.send(0, payload); ack != 1 {
		t.Fatalf("duplicate ack = %d, want re-ack of 1", ack)
	}
	if got := c.Metrics().DedupDrops(); got != 1 {
		t.Fatalf("dedupDrops = %d, want 1", got)
	}
	np, err := c.NodeProfile(tr.NodeID)
	if err != nil {
		t.Fatal(err)
	}
	// The duplicate must not have doubled anything: byte-identical to the
	// offline parse of the same events.
	if got, want := renderNode(t, np), renderNode(t, offlineNodeProfile(t, tr, parser.Fahrenheit)); got != want {
		t.Errorf("profile after duplicate differs from offline parse")
	}
}

func TestSequenceGapPoisonsNodeButKeepsAcking(t *testing.T) {
	tr := buildTrace(t, 5, []string{"gap"}, 8)
	payload, _, err := encodeChunk(tr.Events, tr.Sym, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, addr := startCollector(t, Options{})
	rc := dialShip(t, addr, tr.NodeID, tr.Rank)
	rc.send(0, payload)
	// Skip ahead: the collector can't have chunks 1..4, so the node is
	// poisoned — but the ack must still advance so the client stops.
	if ack := rc.send(5, payload); ack != 6 {
		t.Fatalf("post-gap ack = %d, want 6", ack)
	}
	nodes := c.Nodes()
	if len(nodes) != 1 {
		t.Fatalf("nodes = %d", len(nodes))
	}
	if nodes[0].Err == "" || !strings.Contains(nodes[0].Err, "gap") {
		t.Fatalf("node not marked poisoned: %+v", nodes[0])
	}
	if c.Metrics().IngestErrors() == 0 {
		t.Error("gap not counted as ingest error")
	}
}

func TestCollectorShardingSpreadsNodes(t *testing.T) {
	c, _ := startCollector(t, Options{Shards: 4})
	hit := map[int]bool{}
	for node := uint32(0); node < 64; node++ {
		for i, sh := range c.shards {
			if sh == c.shardFor(node) {
				hit[i] = true
			}
		}
	}
	if len(hit) != 4 {
		t.Errorf("64 node ids landed on %d of 4 shards", len(hit))
	}
}

func TestCollectorClosedRejectsQueries(t *testing.T) {
	c := New(Options{})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := c.IngestTrace(buildTrace(t, 1, []string{"x"}, 2)); err == nil {
		t.Fatal("IngestTrace after Close succeeded")
	}
	if n := c.Nodes(); len(n) != 0 {
		t.Fatalf("Nodes after Close = %v", n)
	}
}

func TestIngestTraceMatchesShipPath(t *testing.T) {
	tr := buildTrace(t, 8, []string{"a", "b"}, 30)
	c := New(Options{})
	defer c.Close()
	if err := c.IngestTrace(tr); err != nil {
		t.Fatal(err)
	}
	np, err := c.NodeProfile(tr.NodeID)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderNode(t, np), renderNode(t, offlineNodeProfile(t, tr, parser.Fahrenheit)); got != want {
		t.Errorf("IngestTrace profile differs from offline parse:\n%s\nvs\n%s", got, want)
	}
}

func TestChunkRoundTripIncrementalSymbols(t *testing.T) {
	// Two chunks, the second introducing a new symbol: decode must
	// continue the cumulative table densely and reject regressions.
	clk := vclock.NewVirtualClock()
	tr, err := trace.NewTracer(trace.Config{Clock: clk, NodeID: 1})
	if err != nil {
		t.Fatal(err)
	}
	lane := tr.NewLane()
	f1 := tr.RegisterFunc("first")
	clk.Advance(time.Millisecond)
	lane.Enter(f1)
	clk.Advance(time.Millisecond)
	lane.Exit(f1)
	ev1, sym := tr.Drain()
	ev1 = append([]trace.Event(nil), ev1...)
	p1, n1, err := encodeChunk(ev1, sym, 0)
	if err != nil {
		t.Fatal(err)
	}

	f2 := tr.RegisterFunc("second")
	clk.Advance(time.Millisecond)
	lane.Enter(f2)
	clk.Advance(time.Millisecond)
	lane.Exit(f2)
	ev2, sym2 := tr.Drain()
	p2, _, err := encodeChunk(ev2, sym2, n1)
	if err != nil {
		t.Fatal(err)
	}

	dst := trace.NewSymTab()
	got1, err := decodeChunk(p1, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got1) != len(ev1) || got1[0].TS != ev1[0].TS {
		t.Fatalf("chunk1 decode: %+v vs %+v", got1, ev1)
	}
	got2, err := decodeChunk(p2, dst, got1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != len(ev2) || got2[0].TS != ev2[0].TS || got2[0].FuncID != f2 {
		t.Fatalf("chunk2 decode: %+v vs %+v", got2, ev2)
	}
	if want := []string{"first", "second"}; !equalStrings(dst.Names(), want) {
		t.Fatalf("symbols = %v, want %v", dst.Names(), want)
	}
	// Replaying chunk2 against the same table must fail loudly: its
	// symbols would re-register at new ids and mis-attribute every event.
	if _, err := decodeChunk(p2, dst, nil); err == nil {
		t.Fatal("replayed chunk with stale symbol cursor decoded cleanly")
	}
}

func TestFrameChecksumRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, 1, frameData, []byte("payload-bytes")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xFF
	if _, _, _, _, err := readFrame(bytes.NewReader(raw), nil); err == nil {
		t.Fatal("corrupt frame accepted")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
