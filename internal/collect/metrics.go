package collect

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Metrics is the collector's self-observability: ingest counters
// exported in Prometheus text exposition format on /metrics. All fields
// are monotonic counters except the nodes gauge and the per-shard queue
// depths (sampled live at render time).
type Metrics struct {
	segments     atomic.Uint64 // frames + bulk event segments accepted off the wire
	events       atomic.Uint64 // events folded into builders
	bytes        atomic.Uint64 // ingest bytes read off connections
	dedupDrops   atomic.Uint64 // duplicate chunks dropped by sequence cursor
	ingestErrors atomic.Uint64 // malformed frames, stream gaps, builder poisonings
	connections  atomic.Uint64 // ingest connections accepted
	nodes        atomic.Uint64 // distinct nodes ever seen (gauge, grows only)

	shardSegments []atomic.Uint64 // segments processed per shard
}

func newMetrics(shards int) *Metrics {
	return &Metrics{shardSegments: make([]atomic.Uint64, shards)}
}

// Segments reports total segments ingested.
func (m *Metrics) Segments() uint64 { return m.segments.Load() }

// Events reports total events folded into builders.
func (m *Metrics) Events() uint64 { return m.events.Load() }

// Bytes reports total ingest bytes read.
func (m *Metrics) Bytes() uint64 { return m.bytes.Load() }

// DedupDrops reports duplicate chunks dropped after reconnect resends.
func (m *Metrics) DedupDrops() uint64 { return m.dedupDrops.Load() }

// IngestErrors reports malformed or unprocessable ingest data.
func (m *Metrics) IngestErrors() uint64 { return m.ingestErrors.Load() }

// WriteMetrics renders the collector's self-observability in Prometheus
// text exposition format: ingest volume (segments, events, bytes),
// reliability counters (dedup drops, errors), fleet size, and per-shard
// throughput and instantaneous queue depth (lag).
func (c *Collector) WriteMetrics(w io.Writer) error {
	m := c.metrics
	type row struct {
		name, help, typ string
		value           uint64
	}
	rows := []row{
		{"tempest_collect_segments_total", "Trace segments (shipped chunks and bulk batches) ingested.", "counter", m.segments.Load()},
		{"tempest_collect_events_total", "Trace events folded into per-node profiles.", "counter", m.events.Load()},
		{"tempest_collect_bytes_total", "Bytes read from ingest connections.", "counter", m.bytes.Load()},
		{"tempest_collect_dedup_dropped_total", "Duplicate chunks dropped by the per-node sequence cursor.", "counter", m.dedupDrops.Load()},
		{"tempest_collect_ingest_errors_total", "Malformed frames, stream gaps and poisoned-node ingest failures.", "counter", m.ingestErrors.Load()},
		{"tempest_collect_connections_total", "Ingest connections accepted.", "counter", m.connections.Load()},
		{"tempest_collect_nodes", "Distinct nodes the collector has seen.", "gauge", m.nodes.Load()},
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", r.name, r.help, r.name, r.typ, r.name, r.value); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# HELP tempest_collect_shard_segments_total Segments processed per ingest shard.\n# TYPE tempest_collect_shard_segments_total counter\n"); err != nil {
		return err
	}
	for i := range m.shardSegments {
		if _, err := fmt.Fprintf(w, "tempest_collect_shard_segments_total{shard=\"%d\"} %d\n", i, m.shardSegments[i].Load()); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# HELP tempest_collect_shard_queue_depth Requests waiting in each shard's ingest queue (lag).\n# TYPE tempest_collect_shard_queue_depth gauge\n"); err != nil {
		return err
	}
	for i, sh := range c.shards {
		if _, err := fmt.Fprintf(w, "tempest_collect_shard_queue_depth{shard=\"%d\"} %d\n", i, len(sh.work)); err != nil {
			return err
		}
	}
	return nil
}
