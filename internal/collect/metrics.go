package collect

import (
	"fmt"
	"io"

	"tempest/internal/introspect"
)

// Metrics is the collector's self-observability, backed by two
// introspect registries:
//
//   - reg holds the public /metrics families, registered in the exact
//     order the original hand-rolled exposition printed them, so the
//     Prometheus text output is byte-compatible with earlier releases
//     (the golden tests pin it); and
//   - debug holds the finer-grained instrumentation added later —
//     builder fold latency, response encode failures, series stream
//     aborts — exposed only on the opt-in debug surfaces
//     (/debug/introspect, /debug/vars) so the public contract never
//     grows by accident.
//
// All fields are monotonic counters except the nodes gauge and the
// per-shard queue depths (sampled live at render time).
type Metrics struct {
	reg   *introspect.Registry
	debug *introspect.Registry

	segments     *introspect.Counter // frames + bulk event segments accepted off the wire
	events       *introspect.Counter // events folded into builders
	bytes        *introspect.Counter // ingest bytes read off connections
	dedupDrops   *introspect.Counter // duplicate chunks dropped by sequence cursor
	ingestErrors *introspect.Counter // malformed frames, stream gaps, builder poisonings
	connections  *introspect.Counter // ingest connections accepted
	nodes        *introspect.Counter // distinct nodes ever seen (gauge, grows only)

	shardSegments []*introspect.Counter // segments processed per shard

	// Debug-surface metrics (not on /metrics).
	foldSeconds   *introspect.Distribution // builder fold latency per segment
	encodeErrors  *introspect.Counter      // JSON response encode/write failures
	streamErrors  *introspect.Counter      // mid-stream response failures (aborted connections)
	decodeSeconds *introspect.Distribution // chunk decode latency

	storeDegrades       *introspect.Counter // shard falls to memory-only ingest
	storeDegradedShards *introspect.Gauge   // shards currently memory-only (also drives /healthz)

	// Historical read path (debug surface only).
	windowQueries       *introspect.Counter      // time-ranged window decodes requested
	windowCacheHits     *introspect.Counter      // window decodes served from the per-shard LRU
	windowDecodeSeconds *introspect.Distribution // latency of cache-miss window decodes

	// Adaptive-sampling control plane (debug surface only).
	coarseSegments    *introspect.Counter // coarse bucket reports accepted off the wire
	coarseErrors      *introspect.Counter // coarse reports that failed to decode (acked and dropped)
	policyRounds      *introspect.Counter // policy evaluation rounds run across all nodes
	policyDirectives  *introspect.Counter // directives issued (instrumentation set changed)
	policyThrottles   *introspect.Counter // rounds where the event budget halved the detail allowance
	policySeeds       *introspect.Counter // nodes cold-started from static priors
	controlFramesSent *introspect.Counter // control frames written down ship connections
}

func newMetrics(shards int) *Metrics {
	r := introspect.New()
	m := &Metrics{reg: r, debug: introspect.New()}
	m.segments = r.Counter("tempest_collect_segments_total", "Trace segments (shipped chunks and bulk batches) ingested.")
	m.events = r.Counter("tempest_collect_events_total", "Trace events folded into per-node profiles.")
	m.bytes = r.Counter("tempest_collect_bytes_total", "Bytes read from ingest connections.")
	m.dedupDrops = r.Counter("tempest_collect_dedup_dropped_total", "Duplicate chunks dropped by the per-node sequence cursor.")
	m.ingestErrors = r.Counter("tempest_collect_ingest_errors_total", "Malformed frames, stream gaps and poisoned-node ingest failures.")
	m.connections = r.Counter("tempest_collect_connections_total", "Ingest connections accepted.")
	m.nodes = r.CounterGauge("tempest_collect_nodes", "Distinct nodes the collector has seen.")
	m.shardSegments = make([]*introspect.Counter, shards)
	for i := range m.shardSegments {
		m.shardSegments[i] = r.CounterL("tempest_collect_shard_segments_total",
			fmt.Sprintf("shard=%q", fmt.Sprint(i)), "Segments processed per ingest shard.")
	}
	m.foldSeconds = m.debug.Distribution("tempest_collect_fold_seconds", "Builder fold latency per ingested segment.")
	m.decodeSeconds = m.debug.Distribution("tempest_collect_decode_seconds", "Chunk decode latency per shipped frame.")
	m.encodeErrors = m.debug.Counter("tempest_collect_response_encode_errors_total", "JSON API responses whose encode or write failed.")
	m.streamErrors = m.debug.Counter("tempest_collect_stream_abort_total", "Streaming API responses aborted after the first byte.")
	m.storeDegrades = m.debug.Counter("tempest_collect_store_degrade_events_total", "Shards that fell from durable to memory-only ingest.")
	m.storeDegradedShards = m.debug.Gauge("tempest_collect_store_degraded_shards", "Shards currently ingesting memory-only after a store failure.")
	m.windowQueries = m.debug.Counter("tempest_collect_window_queries_total", "Time-ranged historical window decodes requested.")
	m.windowCacheHits = m.debug.Counter("tempest_collect_window_cache_hits_total", "Historical window decodes served from the per-shard LRU cache.")
	m.windowDecodeSeconds = m.debug.Distribution("tempest_collect_window_decode_seconds", "Latency of cache-miss historical window decodes.")
	m.coarseSegments = m.debug.Counter("tempest_collect_coarse_segments_total", "Coarse instrumentation bucket reports accepted off the wire.")
	m.coarseErrors = m.debug.Counter("tempest_collect_coarse_decode_errors_total", "Coarse reports that failed to decode (acknowledged and dropped).")
	m.policyRounds = m.debug.Counter("tempest_collect_policy_rounds_total", "Adaptive-sampling policy evaluation rounds.")
	m.policyDirectives = m.debug.Counter("tempest_collect_policy_directives_total", "Policy directives issued (per-node instrumentation set changed).")
	m.policyThrottles = m.debug.Counter("tempest_collect_policy_throttles_total", "Policy rounds where the event budget halved the detail allowance.")
	m.policySeeds = m.debug.Counter("tempest_collect_policy_seeds_total", "Nodes whose policy was cold-started from static priors.")
	m.controlFramesSent = m.debug.Counter("tempest_collect_control_frames_sent_total", "Control frames written down ship connections.")
	return m
}

// Segments reports total segments ingested.
func (m *Metrics) Segments() uint64 { return m.segments.Value() }

// Events reports total events folded into builders.
func (m *Metrics) Events() uint64 { return m.events.Value() }

// Bytes reports total ingest bytes read.
func (m *Metrics) Bytes() uint64 { return m.bytes.Value() }

// DedupDrops reports duplicate chunks dropped after reconnect resends.
func (m *Metrics) DedupDrops() uint64 { return m.dedupDrops.Value() }

// IngestErrors reports malformed or unprocessable ingest data.
func (m *Metrics) IngestErrors() uint64 { return m.ingestErrors.Value() }

// EncodeErrors reports JSON API responses whose encode or write failed.
func (m *Metrics) EncodeErrors() uint64 { return m.encodeErrors.Value() }

// StreamAborts reports streaming responses aborted mid-body.
func (m *Metrics) StreamAborts() uint64 { return m.streamErrors.Value() }

// WriteMetrics renders the collector's public self-observability in
// Prometheus text exposition format: ingest volume (segments, events,
// bytes), reliability counters (dedup drops, errors), fleet size, and
// per-shard throughput and instantaneous queue depth (lag). The output
// is the public registry's exposition; finer-grained debug metrics live
// on /debug/introspect.
func (c *Collector) WriteMetrics(w io.Writer) error {
	return c.metrics.reg.WritePrometheus(w)
}

// IntrospectRegistries exposes the collector's metric registries, public
// first — the daemon mounts these on its -debug-addr surfaces.
func (c *Collector) IntrospectRegistries() []*introspect.Registry {
	return []*introspect.Registry{c.metrics.reg, c.metrics.debug}
}
