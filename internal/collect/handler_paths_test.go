package collect

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"
)

// TestHandlersWriteOnAllReturnPaths statically checks every HTTP handler
// registered in this package: along every return path (including falling
// off the end), the handler must have touched the ResponseWriter — a
// write, a status, or a call that was handed the writer — or ended in a
// panic. This is the class of bug the silent-200 /api/series regression
// belonged to: an early `return` leaving the client a well-formed empty
// response that lies about success.
func TestHandlersWriteOnAllReturnPaths(t *testing.T) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "HandleFunc" || len(call.Args) != 2 {
				return true
			}
			lit, ok := call.Args[1].(*ast.FuncLit)
			if !ok || len(lit.Type.Params.List) != 2 {
				return true
			}
			wName := lit.Type.Params.List[0].Names[0].Name
			checked++
			for _, v := range checkHandlerPaths(lit.Body, wName) {
				t.Errorf("%s: handler return path without a response write", fset.Position(v))
			}
			return true
		})
	}
	if checked < 6 {
		t.Fatalf("found only %d registered handlers; the scan is broken", checked)
	}
}

// checkHandlerPaths walks a handler body and returns the positions of
// exits (returns or fall-through) not preceded by a write to the
// response writer. Writer taint spreads through assignments (wrapping w
// in another writer keeps it tracked); w.Header() alone is not a write.
func checkHandlerPaths(body *ast.BlockStmt, wName string) []token.Pos {
	tainted := map[string]bool{wName: true}
	var violations []token.Pos
	written := checkStmts(body.List, false, tainted, &violations)
	if !written {
		violations = append(violations, body.Rbrace)
	}
	return violations
}

// checkStmts scans a statement list with the "has written yet" state,
// recording violating exits. It returns the state at the end of the list.
func checkStmts(stmts []ast.Stmt, written bool, tainted map[string]bool, out *[]token.Pos) bool {
	for _, st := range stmts {
		switch s := st.(type) {
		case *ast.ReturnStmt:
			if !written {
				*out = append(*out, s.Pos())
			}
			return true // the list terminates here; no fall-through
		case *ast.ExprStmt:
			if isPanic(s.X) {
				return true // panic is an accepted terminator
			}
			written = written || stmtWrites(s, tainted)
		case *ast.AssignStmt:
			written = written || stmtWrites(s, tainted)
			propagateTaint(s, tainted)
		case *ast.IfStmt:
			entry := written || stmtWrites(s.Init, tainted) || exprWrites(s.Cond, tainted)
			checkStmts(s.Body.List, entry, tainted, out)
			if s.Else != nil {
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					checkStmts(e.List, entry, tainted, out)
				case *ast.IfStmt:
					checkStmts([]ast.Stmt{e}, entry, tainted, out)
				}
			}
			written = entry
		case *ast.BlockStmt:
			written = checkStmts(s.List, written, tainted, out)
		case *ast.ForStmt:
			checkStmts(s.Body.List, written || stmtWrites(s, tainted), tainted, out)
			written = written || stmtWrites(s, tainted)
		case *ast.RangeStmt:
			checkStmts(s.Body.List, written || stmtWrites(s, tainted), tainted, out)
			written = written || stmtWrites(s, tainted)
		case *ast.SwitchStmt, *ast.TypeSwitchStmt:
			entry := written || stmtWrites(st, tainted)
			ast.Inspect(st, func(n ast.Node) bool {
				if cc, ok := n.(*ast.CaseClause); ok {
					checkStmts(cc.Body, entry, tainted, out)
					return false
				}
				return true
			})
			written = entry
		default:
			written = written || stmtWrites(st, tainted)
		}
	}
	return written
}

// propagateTaint marks assignment targets whose right side mentions a
// tainted writer (wrappers around w stay tracked).
func propagateTaint(s *ast.AssignStmt, tainted map[string]bool) {
	rhsTainted := false
	for _, r := range s.Rhs {
		if mentionsTainted(r, tainted) {
			rhsTainted = true
		}
	}
	if !rhsTainted {
		return
	}
	for _, l := range s.Lhs {
		if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
			tainted[id.Name] = true
		}
	}
}

// stmtWrites reports whether the statement contains a call that could
// write the response: any call taking a tainted writer as an argument or
// receiver, except a bare Header() access.
func stmtWrites(n ast.Node, tainted map[string]bool) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(node ast.Node) bool {
		if found {
			return false
		}
		if _, ok := node.(*ast.FuncLit); ok {
			return false // nested handlers are checked separately
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && tainted[id.Name] {
				if sel.Sel.Name != "Header" {
					found = true
				}
				return true
			}
		}
		for _, arg := range call.Args {
			if mentionsTainted(arg, tainted) {
				found = true
			}
		}
		return true
	})
	return found
}

func exprWrites(e ast.Expr, tainted map[string]bool) bool {
	if e == nil {
		return false
	}
	return stmtWrites(&ast.ExprStmt{X: e}, tainted)
}

// mentionsTainted reports whether the expression references a tainted
// writer outside a .Header selector.
func mentionsTainted(e ast.Expr, tainted map[string]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "Header" {
			if id, ok := sel.X.(*ast.Ident); ok && tainted[id.Name] {
				return false
			}
		}
		if id, ok := n.(*ast.Ident); ok && tainted[id.Name] {
			found = true
		}
		return !found
	})
	return found
}

func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// The checker itself must reject the bug shape it exists for: a handler
// that validates, forgets the error write, and returns.
func TestHandlerPathCheckerCatchesSilentReturn(t *testing.T) {
	src := `package p
import "net/http"
func reg(mux *http.ServeMux) {
	mux.HandleFunc("GET /bad", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("k") == "" {
			return // silent 200: no error written
		}
		w.Write([]byte("ok"))
	})
}`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "bad.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	var violations []token.Pos
	ast.Inspect(f, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			violations = checkHandlerPaths(lit.Body, "w")
			return false
		}
		return true
	})
	if len(violations) != 1 {
		t.Fatalf("checker found %d violations in the known-bad handler, want 1: %v",
			len(violations), fmt.Sprint(violations))
	}
	if pos := fset.Position(violations[0]); pos.Line != 6 {
		t.Errorf("violation at %v, want line 6 (the silent return)", pos)
	}
}
