package collect

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"time"

	"tempest/internal/hotspot"
	"tempest/internal/parser"
	"tempest/internal/store"
	"tempest/internal/trace"
)

// The historical read path: time-ranged queries over the durable store.
// Raw segments still on disk are re-decoded on demand — the same
// builder-rebuild machinery the retention compactor uses, driven by
// store.HistoryStore.ReadRange — and ranges older than retention are
// answered from the archive's folded per-granule windows. Each shard
// keeps a small LRU of decoded windows so a dashboard scrubbing back and
// forth doesn't re-scan the same segments per request. All of this state
// is owned by the shard worker goroutine, like every builder.

// ErrHistoryUnavailable reports a time-ranged query against a collector
// (or shard) without a durable store: memory-only ingest has no history
// beyond the live builders.
var ErrHistoryUnavailable = errors.New("collect: durable history not enabled")

// WindowEntry is one stored window a node's history can be queried at,
// as served by /api/windows/{node}.
type WindowEntry struct {
	// Kind is "raw" (batches on disk, queryable at any sub-range) or
	// "archived" (folded heat, queryable only at this granularity).
	Kind string    `json:"kind"`
	From time.Time `json:"from"`
	To   time.Time `json:"to"`
	// Batches counts stored batches in a raw window (whole-shard segment
	// granularity, not per node).
	Batches int `json:"batches,omitempty"`
	// Events counts this node's events folded into an archived window.
	Events uint64 `json:"events,omitempty"`
	// Active marks the raw segment still receiving appends.
	Active bool `json:"active,omitempty"`
}

// WindowsResponse is the /api/windows/{node} body.
type WindowsResponse struct {
	Node    uint32        `json:"node"`
	Durable bool          `json:"durable"`
	Windows []WindowEntry `json:"windows"`
}

// windowDecode is one [from, to) range rebuilt from raw batches: every
// node's finished profile over exactly the in-range events. Cached
// entries are read-only once built — readers shallow-copy the
// NodeProfiles into response Profiles and never write through them.
type windowDecode struct {
	profiles []*parser.NodeProfile // sorted by NodeID
	byNode   map[uint32]*parser.NodeProfile
}

// histCacheEnt is one LRU slot.
type histCacheEnt struct {
	key string
	to  int64 // invalidation bound: a later append inside [from, to) stales it
	dec *windowDecode
}

// shardHistory is a shard's historical-query state: the decoded archive
// (refreshed when the store's compaction generation moves) and the LRU
// of decoded raw windows. Zero value ready; worker-owned.
type shardHistory struct {
	gen    uint64
	genSet bool
	arch   *fleetArchive
	lru    *list.List
	idx    map[string]*list.Element
}

// history returns the shard's store as a HistoryStore when time-ranged
// queries are possible (disk-backed and not degraded).
func (sh *shard) history() (store.HistoryStore, bool) {
	hs, ok := sh.store.(store.HistoryStore)
	return hs, ok && sh.durable
}

// histArchive returns the decoded checkpoint archive, re-decoding when a
// compaction moved the raw/archived split (which also stales every
// cached raw decode: their batches may have been folded away).
func (sh *shard) histArchive(hs store.HistoryStore) *fleetArchive {
	gen := hs.CompactGen()
	if sh.hist.genSet && sh.hist.gen == gen {
		return sh.hist.arch
	}
	arch, err := decodeArchive(hs.ArchiveBlob())
	if err != nil {
		sh.c.opts.Logger.Error("store archive undecodable; historical queries see raw history only",
			"shard", sh.id, "err", err)
		arch = &fleetArchive{}
	}
	sh.hist.gen, sh.hist.genSet = gen, true
	sh.hist.arch = arch
	sh.hist.lru, sh.hist.idx = nil, nil
	return arch
}

// invalidateAppend drops cached decodes whose range extends past a fresh
// commit at wall — they no longer cover every in-range batch.
func (h *shardHistory) invalidateAppend(wall int64) {
	if h.lru == nil {
		return
	}
	var stale []*list.Element
	for el := h.lru.Front(); el != nil; el = el.Next() {
		if el.Value.(*histCacheEnt).to > wall {
			stale = append(stale, el)
		}
	}
	for _, el := range stale {
		delete(h.idx, el.Value.(*histCacheEnt).key)
		h.lru.Remove(el)
	}
}

// decodeWindow rebuilds every node's profile over the raw batches
// committed in [from, to), serving from the LRU when the same range was
// decoded before. The prefix pass replays earlier chunks through each
// node's symbol table only — chunk symbol ids are dense and cumulative,
// so in-range payloads decode correctly no matter where the range starts —
// and the in-range pass folds events into throwaway mid-stream builders.
func (sh *shard) decodeWindow(hs store.HistoryStore, from, to int64) (*windowDecode, error) {
	sh.c.metrics.windowQueries.Add(1)
	key := fmt.Sprintf("%d:%d", from, to)
	if el, ok := sh.hist.idx[key]; ok {
		sh.c.metrics.windowCacheHits.Add(1)
		sh.hist.lru.MoveToFront(el)
		return el.Value.(*histCacheEnt).dec, nil
	}
	start := time.Now()

	type winFold struct {
		ent  *archiveNode // nil when the archive never saw the node
		sym  *trace.SymTab
		b    *parser.Builder
		dead bool
	}
	arch := sh.histArchive(hs)
	folds := map[uint32]*winFold{}
	var order []uint32
	var scratch []trace.Event
	fold := func(b store.Batch) *winFold {
		nf, ok := folds[b.Node]
		if !ok {
			sym := trace.NewSymTab()
			if ent := arch.find(b.Node); ent != nil {
				// Post-compaction raw chunks were encoded against the
				// archive's cumulative table; seed it so ids stay dense.
				for _, name := range ent.syms {
					sym.Register(name)
				}
			}
			nf = &winFold{sym: sym}
			folds[b.Node] = nf
			order = append(order, b.Node)
		}
		return nf
	}
	decode := func(b store.Batch, nf *winFold) ([]trace.Event, bool) {
		ev, err := decodeChunk(b.Payload, nf.sym, scratch)
		if err != nil {
			// The node's symbol continuity is broken from here on; its
			// later batches are unattributable, so the node drops out of
			// this window rather than mis-attributing heat.
			nf.dead = true
			nf.b = nil
			return nil, false
		}
		scratch = ev[:0]
		return ev, true
	}
	err := hs.ReadRange(from, to,
		func(b store.Batch) error { // prefix: symbols only
			if b.Flags&(store.FlagPolicy|store.FlagCoarse) != 0 {
				return nil
			}
			nf := fold(b)
			if !nf.dead {
				decode(b, nf)
			}
			return nil
		},
		func(b store.Batch) error { // in range: symbols + events
			if b.Flags&(store.FlagPolicy|store.FlagCoarse) != 0 {
				return nil
			}
			nf := fold(b)
			if nf.dead {
				return nil
			}
			ev, ok := decode(b, nf)
			if !ok {
				return nil
			}
			if nf.b == nil {
				nf.b = parser.NewBuilder(b.Node, nf.sym, parser.Options{
					Unit:           sh.c.opts.Unit,
					SampleInterval: sh.c.opts.SampleInterval,
					MidStream:      true,
				})
			}
			if b.Flags&store.FlagTruncated != 0 {
				nf.b.SetTruncated(true)
			}
			if err := nf.b.Add(ev); err != nil {
				nf.dead = true
				nf.b = nil
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	dec := &windowDecode{byNode: map[uint32]*parser.NodeProfile{}}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, id := range order {
		nf := folds[id]
		if nf.b == nil || nf.dead {
			continue
		}
		np, err := nf.b.Finish()
		if err != nil {
			continue
		}
		dec.profiles = append(dec.profiles, np)
		dec.byNode[id] = np
	}
	sh.c.metrics.windowDecodeSeconds.ObserveSince(start)

	if sh.hist.lru == nil {
		sh.hist.lru = list.New()
		sh.hist.idx = map[string]*list.Element{}
	}
	sh.hist.idx[key] = sh.hist.lru.PushFront(&histCacheEnt{key: key, to: to, dec: dec})
	for sh.hist.lru.Len() > sh.c.opts.WindowCache {
		el := sh.hist.lru.Back()
		delete(sh.hist.idx, el.Value.(*histCacheEnt).key)
		sh.hist.lru.Remove(el)
	}
	return dec, nil
}

// rangeArchived reports whether [from, to) touches any folded archive
// window on this shard.
func rangeArchived(arch *fleetArchive, from, to int64) bool {
	for _, w := range arch.windows {
		if w.overlaps(from, to) {
			return true
		}
	}
	return false
}

// handleWindowHeat answers opWindowHeat: the shard's contribution to a
// time-ranged hot-spot ranking — rebuilt profiles over in-range raw
// batches, plus the archive's folded heat for every window overlapping
// the range (at the folded granularity).
func (sh *shard) handleWindowHeat(req shardReq) shardResp {
	hs, ok := sh.history()
	if !ok {
		return shardResp{err: ErrHistoryUnavailable}
	}
	arch := sh.histArchive(hs)
	dec, err := sh.decodeWindow(hs, req.from, req.to)
	if err != nil {
		return shardResp{err: err}
	}
	return shardResp{
		durable:  true,
		profiles: dec.profiles,
		heat:     arch.rangeHeat(req.from, req.to, req.sensor),
		archived: rangeArchived(arch, req.from, req.to),
	}
}

// handleWindowProfile answers opWindowProfile: one node's profile over
// the in-range raw batches (profiles empty when the node has none),
// plus how much of its in-range history lives only in folded archives.
func (sh *shard) handleWindowProfile(req shardReq) shardResp {
	hs, ok := sh.history()
	if !ok {
		return shardResp{err: ErrHistoryUnavailable}
	}
	if _, known := sh.nodes[req.node]; !known {
		return shardResp{err: fmt.Errorf("collect: unknown node %d", req.node)}
	}
	arch := sh.histArchive(hs)
	dec, err := sh.decodeWindow(hs, req.from, req.to)
	if err != nil {
		return shardResp{err: err}
	}
	resp := shardResp{durable: true}
	if np := dec.byNode[req.node]; np != nil {
		resp.profiles = []*parser.NodeProfile{np}
	}
	resp.archEvents, resp.archived = arch.nodeRangeArchived(req.node, req.from, req.to)
	return resp
}

// handleWindows answers opWindows: the granularities one node's history
// can be queried at — folded archive windows (this node's slices) and
// the shard's raw segment windows (whole-shard granularity; any
// sub-range of those is decodable on demand).
func (sh *shard) handleWindows(req shardReq) shardResp {
	ns, known := sh.nodes[req.node]
	if !known {
		return shardResp{err: fmt.Errorf("collect: unknown node %d", req.node)}
	}
	resp := shardResp{windows: []WindowEntry{}, archEvents: ns.archEvents}
	hs, ok := sh.history()
	if !ok {
		return resp
	}
	resp.durable = true
	arch := sh.histArchive(hs)
	for _, w := range arch.windows {
		for _, wn := range w.nodes {
			if wn.node != req.node {
				continue
			}
			resp.windows = append(resp.windows, WindowEntry{
				Kind:   "archived",
				From:   time.Unix(0, w.fromWall).UTC(),
				To:     time.Unix(0, w.toWall).UTC(),
				Events: wn.events,
			})
		}
	}
	for _, wi := range hs.Windows() {
		resp.windows = append(resp.windows, WindowEntry{
			Kind: "raw",
			From: time.Unix(0, wi.FirstWall).UTC(),
			// Stored bounds are inclusive observed commits; the API speaks
			// half-open ranges, so the window covers up to LastWall+1.
			To:      time.Unix(0, wi.LastWall+1).UTC(),
			Batches: wi.Batches,
			Active:  wi.Active,
		})
	}
	return resp
}

// WindowHotspots computes a time-ranged /api/hotspots answer over
// [from, to) (wall-clock nanos, half-open): raw-covered history is
// re-decoded exactly, archived history contributes every folded window
// overlapping the range. Shards without durable stores are skipped;
// when no shard has one the error is ErrHistoryUnavailable.
func (c *Collector) WindowHotspots(sensor, k int, from, to int64) (*HotspotsResponse, error) {
	var nps []*parser.NodeProfile
	var arch []hotspot.FunctionHeat
	durable := 0
	for _, sh := range c.shards {
		resp := sh.call(shardReq{op: opWindowHeat, sensor: sensor, from: from, to: to})
		if resp.err != nil {
			if errors.Is(resp.err, ErrHistoryUnavailable) {
				continue
			}
			return nil, resp.err
		}
		durable++
		nps = append(nps, resp.profiles...)
		arch = foldFunctionHeat(arch, resp.heat)
	}
	if durable == 0 {
		return nil, ErrHistoryUnavailable
	}
	sort.Slice(nps, func(i, j int) bool { return nps[i].NodeID < nps[j].NodeID })
	p := &parser.Profile{Unit: c.opts.Unit}
	for _, np := range nps {
		p.Nodes = append(p.Nodes, *np)
	}
	return c.assembleHotspots(p, arch, sensor, k)
}

// WindowSeries rebuilds one node's profile over the raw batches in
// [from, to). np is nil when the node exists but has no raw events in
// range; archEvents/archived report history the range touches that
// survives only as folded archive heat (beyond series granularity).
func (c *Collector) WindowSeries(id uint32, from, to int64) (np *parser.NodeProfile, archEvents uint64, archived bool, err error) {
	resp := c.shardFor(id).call(shardReq{op: opWindowProfile, node: id, from: from, to: to})
	if resp.err != nil {
		return nil, 0, false, resp.err
	}
	if len(resp.profiles) > 0 {
		np = resp.profiles[0]
	}
	return np, resp.archEvents, resp.archived, nil
}

// NodeWindows lists the stored windows one node's history can be
// queried at — the /api/windows/{node} answer.
func (c *Collector) NodeWindows(id uint32) (*WindowsResponse, error) {
	resp := c.shardFor(id).call(shardReq{op: opWindows, node: id})
	if resp.err != nil {
		return nil, resp.err
	}
	return &WindowsResponse{Node: id, Durable: resp.durable, Windows: resp.windows}, nil
}
