package collect

import (
	"bytes"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"tempest/internal/store"
	"tempest/internal/trace"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// storeClock is a deterministic wall clock for retention tests.
type storeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newStoreClock() *storeClock {
	return &storeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *storeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *storeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// uploadBulk streams a trace into the collector's ingest listener over
// TCP — the bulk path — and waits for the collector to finish it.
func uploadBulk(t *testing.T, addr string, tr *trace.Trace) {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseWrite()
		io.Copy(io.Discard, conn)
	}
}

// TestCollectorStoreRecovery is the headline durability property: a
// collector fed over both ingest paths is closed (simulating any death
// after the last ack — the store is synced per append) and a fresh
// collector on the same directory must answer every query as if the
// restart never happened.
func TestCollectorStoreRecovery(t *testing.T) {
	dir := t.TempDir()
	traces := []*trace.Trace{
		buildTrace(t, 1, []string{"compute", "exchange"}, 50),
		buildTrace(t, 2, []string{"compute", "io", "reduce"}, 70),
		buildTrace(t, 3, []string{"idle_wait", "compute"}, 40),
	}
	opts := Options{StoreDir: dir, Logger: quietLogger()}

	// Oracle: the same traces through a collector that never restarts.
	oracle := New(Options{Logger: quietLogger()})
	defer oracle.Close()

	c1, addr := startCollector(t, opts)
	for i, tr := range traces {
		if i == len(traces)-1 {
			uploadBulk(t, addr, tr) // last node exercises the bulk path
		} else if err := c1.IngestTrace(tr); err != nil {
			t.Fatal(err)
		}
		if err := oracle.IngestTrace(tr); err != nil {
			t.Fatal(err)
		}
	}
	wantHot, err := oracle.Hotspots(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	// The store must verify cleanly between runs.
	rep, err := store.VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("store does not verify after clean shutdown: %v", err)
	}

	c2 := New(opts)
	defer c2.Close()
	if got := c2.DegradedStoreShards(); got != 0 {
		t.Fatalf("recovered collector reports %d degraded shards", got)
	}
	for _, tr := range traces {
		np, err := c2.NodeProfile(tr.NodeID)
		if err != nil {
			t.Fatalf("node %d lost across restart: %v", tr.NodeID, err)
		}
		got := renderNode(t, np)
		want := renderNode(t, offlineNodeProfile(t, tr, c2.opts.Unit))
		if got != want {
			t.Errorf("node %d profile diverged across restart:\n--- recovered ---\n%s--- offline ---\n%s", tr.NodeID, got, want)
		}
	}
	gotHot, err := c2.Hotspots(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotHot, wantHot) {
		t.Errorf("hotspots diverged across restart:\n got %+v\nwant %+v", gotHot, wantHot)
	}

	// The recovered collector keeps ingesting: the resume cursor
	// continues where the stored history ends.
	extra := buildTrace(t, 9, []string{"late_joiner"}, 10)
	if err := c2.IngestTrace(extra); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.NodeProfile(9); err != nil {
		t.Fatal(err)
	}
}

// TestCollectorStoreRetention drives time-windowed compaction: raw
// history ages out, folds into the checkpoint archive, and the fleet
// hot-spot answer stays exactly what an uninterrupted, uncompacted run
// would give.
func TestCollectorStoreRetention(t *testing.T) {
	dir := t.TempDir()
	clk := newStoreClock()
	traces := []*trace.Trace{
		buildTrace(t, 1, []string{"compute", "exchange"}, 50),
		buildTrace(t, 2, []string{"compute", "io"}, 60),
	}
	opts := Options{
		StoreDir: dir,
		Logger:   quietLogger(),
		Now:      clk.now,
		StoreOptions: store.Options{
			Window:    time.Minute,
			Retention: 5 * time.Minute,
		},
	}

	oracle := New(Options{Logger: quietLogger()})
	defer oracle.Close()

	c1 := New(opts)
	for _, tr := range traces {
		if err := c1.IngestTrace(tr); err != nil {
			t.Fatal(err)
		}
		if err := oracle.IngestTrace(tr); err != nil {
			t.Fatal(err)
		}
	}
	wantHot, err := oracle.Hotspots(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	// Age everything past retention; reopening compacts at Open.
	clk.advance(10 * time.Minute)
	c2 := New(opts)
	defer c2.Close()

	ckpts, err := filepath.Glob(filepath.Join(dir, "shard-*", "*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ckpts) == 0 {
		t.Fatal("retention produced no checkpoint")
	}
	rep, err := store.VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("store does not verify after compaction: %v", err)
	}

	gotHot, err := c2.Hotspots(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Function rankings survive compaction exactly; per-node sample
	// rankings (Nodes) need raw samples and cover live history only.
	if !reflect.DeepEqual(gotHot.Functions, wantHot.Functions) {
		t.Errorf("functions diverged after compaction:\n got %+v\nwant %+v", gotHot.Functions, wantHot.Functions)
	}
	if !reflect.DeepEqual(gotHot.Merged, wantHot.Merged) {
		t.Errorf("merged ranking diverged after compaction:\n got %+v\nwant %+v", gotHot.Merged, wantHot.Merged)
	}

	// Node status reports the events as archived, not lost.
	for _, st := range c2.Nodes() {
		if st.ArchivedEvents == 0 {
			t.Errorf("node %d reports no archived events after compaction: %+v", st.NodeID, st)
		}
		if st.Err != "" {
			t.Errorf("node %d poisoned by compaction replay: %s", st.NodeID, st.Err)
		}
	}

	// A second restart replays archive + (empty) raw history idempotently.
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	c3 := New(opts)
	defer c3.Close()
	got3, err := c3.Hotspots(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got3.Functions, wantHot.Functions) {
		t.Errorf("functions diverged after second restart:\n got %+v\nwant %+v", got3.Functions, wantHot.Functions)
	}
}

// budgetWriter fails every write after n bytes have passed — the
// mid-run disk-death fault for degraded-mode tests.
type budgetWriter struct {
	w io.Writer
	n *int64
}

func (bw budgetWriter) Write(p []byte) (int, error) {
	if *bw.n <= 0 {
		return 0, os.ErrClosed
	}
	*bw.n -= int64(len(p))
	return bw.w.Write(p)
}

// TestCollectorStoreDegradesMidRun kills the disk under a live collector
// and checks the loud-availability contract: ingest keeps working, the
// degradation is counted, and /healthz says so.
func TestCollectorStoreDegradesMidRun(t *testing.T) {
	budget := int64(2048)
	opts := Options{
		StoreDir: t.TempDir(),
		Shards:   1,
		Logger:   quietLogger(),
		StoreOptions: store.Options{
			WrapWriter: func(w io.Writer) io.Writer { return budgetWriter{w: w, n: &budget} },
		},
	}
	c := New(opts)
	defer c.Close()

	for _, node := range []uint32{1, 2, 3} {
		tr := buildTrace(t, node, []string{"compute", "exchange", "io"}, 80)
		if err := c.IngestTrace(tr); err != nil {
			t.Fatalf("ingest node %d after store death: %v", node, err)
		}
		if _, err := c.NodeProfile(node); err != nil {
			t.Fatalf("node %d profile after store death: %v", node, err)
		}
	}
	if got := c.DegradedStoreShards(); got != 1 {
		t.Fatalf("DegradedStoreShards = %d, want 1", got)
	}

	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("/healthz status %d while degraded (must stay a liveness 200)", res.StatusCode)
	}
	if !strings.HasPrefix(string(body), "degraded\n") || !strings.Contains(string(body), "memory-only") {
		t.Fatalf("/healthz body does not surface degradation:\n%s", body)
	}
}

// TestCollectorStoreOpenFailureDegrades points StoreDir inside a regular
// file: every shard's store fails to open and the collector must come up
// memory-only rather than not at all.
func TestCollectorStoreOpenFailureDegrades(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	opts := Options{StoreDir: filepath.Join(blocker, "store"), Shards: 2, Logger: quietLogger()}
	c := New(opts)
	defer c.Close()
	if got := c.DegradedStoreShards(); got != 2 {
		t.Fatalf("DegradedStoreShards = %d, want 2", got)
	}
	tr := buildTrace(t, 1, []string{"compute"}, 10)
	if err := c.IngestTrace(tr); err != nil {
		t.Fatalf("memory-only ingest failed: %v", err)
	}
}

// TestHealthzOKWhenDurable pins the healthy /healthz body — exactly
// "ok\n" — which scripts/collectd_smoke.sh greps for.
func TestHealthzOKWhenDurable(t *testing.T) {
	c := New(Options{StoreDir: t.TempDir(), Logger: quietLogger()})
	defer c.Close()
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, req)
	if rec.Body.String() != "ok\n" {
		t.Fatalf("/healthz body %q, want \"ok\\n\"", rec.Body.String())
	}
}
