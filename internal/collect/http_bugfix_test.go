package collect

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// failingWriter wraps a ResponseRecorder and fails Write after allowing
// the first `allow` bytes through — the shape of a client hanging up (or
// a row formatter failing) partway into a streaming response.
type failingWriter struct {
	*httptest.ResponseRecorder
	allow   int
	written int
}

func (fw *failingWriter) Write(p []byte) (int, error) {
	if fw.written >= fw.allow {
		return 0, errors.New("stream write failed")
	}
	n := len(p)
	if fw.written+n > fw.allow {
		n = fw.allow - fw.written
	}
	fw.ResponseRecorder.Write(p[:n])
	fw.written += n
	return n, errors.New("stream write failed")
}

// A series request whose very first write fails must produce a real 500,
// not a silent empty 200, and count as a stream error.
func TestSeriesWriteFailureBeforeFirstByteIs500(t *testing.T) {
	c := goldenCollector(t, 1)
	h := c.Handler()
	fw := &failingWriter{ResponseRecorder: httptest.NewRecorder(), allow: 0}
	req := httptest.NewRequest("GET", "/api/series/1", nil)
	h.ServeHTTP(fw, req)
	if fw.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", fw.Code)
	}
	if got := c.Metrics().StreamAborts(); got != 1 {
		t.Errorf("StreamAborts = %d, want 1", got)
	}
}

// After the first body byte the status line is gone; the handler must
// abort the connection (http.ErrAbortHandler) rather than pretend the
// truncated CSV is complete.
func TestSeriesWriteFailureMidStreamAborts(t *testing.T) {
	c := goldenCollector(t, 1)
	h := c.Handler()
	fw := &failingWriter{ResponseRecorder: httptest.NewRecorder(), allow: 10}
	req := httptest.NewRequest("GET", "/api/series/1", nil)
	defer func() {
		if r := recover(); r != http.ErrAbortHandler {
			t.Errorf("recovered %v, want http.ErrAbortHandler", r)
		}
		if got := c.Metrics().StreamAborts(); got != 1 {
			t.Errorf("StreamAborts = %d, want 1", got)
		}
	}()
	h.ServeHTTP(fw, req)
	t.Error("mid-stream failure did not abort")
}

// A healthy series request still streams CSV — the error plumbing must
// not disturb the success path.
func TestSeriesSuccessStillStreams(t *testing.T) {
	c := goldenCollector(t, 1)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	code, body, _ := get(t, srv, "/api/series/1")
	if code != 200 || !strings.HasPrefix(body, "time_s,node,sensor,") {
		t.Fatalf("series success path broke: %d %.60s", code, body)
	}
	if c.Metrics().StreamAborts() != 0 {
		t.Error("clean stream counted as aborted")
	}
}

// writeJSON failures (unencodable value, dead client) must be counted
// rather than silently discarded.
func TestWriteJSONEncodeFailureCounted(t *testing.T) {
	c := goldenCollector(t, 0)
	rec := httptest.NewRecorder()
	c.writeJSON(rec, "/test", make(chan int)) // channels cannot marshal
	if got := c.Metrics().EncodeErrors(); got != 1 {
		t.Errorf("EncodeErrors = %d, want 1", got)
	}
	rec2 := httptest.NewRecorder()
	c.writeJSON(rec2, "/test", map[string]int{"ok": 1})
	if got := c.Metrics().EncodeErrors(); got != 1 {
		t.Errorf("EncodeErrors after clean encode = %d, want 1", got)
	}
}

// Negative k regression: /api/hotspots?k=-5 used to slip past intParam
// and hit the ranking code with a nonsense cut.
func TestHotspotsNegativeKRejected(t *testing.T) {
	c := goldenCollector(t, 1)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	code, body, _ := get(t, srv, "/api/hotspots?k=-5")
	if code != http.StatusBadRequest {
		t.Fatalf("k=-5 status = %d, want 400 (body %.80s)", code, body)
	}
	if !strings.Contains(body, "bad k parameter") {
		t.Errorf("k=-5 body = %.80s", body)
	}
}

// Every malformed /api/hotspots query parameter — non-integer k, the
// time-ranged window included — must 400 with the same "bad <name>
// parameter" body shape as the negative-k path, never silently fall
// back to a default.
func TestHotspotsBadParamsRejected(t *testing.T) {
	c := goldenCollector(t, 1)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	for query, wantBody := range map[string]string{
		"k=abc":            "bad k parameter",
		"k=1.5":            "bad k parameter",
		"sensor=abc":       "bad sensor parameter",
		"window=abc":       "bad window parameter", // not a duration
		"window=30":        "bad window parameter", // unitless
		"window=-5m":       "bad window parameter", // negative
		"window=0s":        "bad window parameter", // empty window
		"k=abc&window=30m": "bad k parameter",      // k checked even with window set
	} {
		code, body, _ := get(t, srv, "/api/hotspots?"+query)
		if code != http.StatusBadRequest {
			t.Errorf("?%s status = %d, want 400 (body %.80s)", query, code, body)
			continue
		}
		if !strings.Contains(body, wantBody) {
			t.Errorf("?%s body = %.80s, want %q", query, body, wantBody)
		}
	}
}
