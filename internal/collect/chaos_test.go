package collect

import (
	"fmt"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"tempest/internal/faultinject"
	"tempest/internal/hotspot"
	"tempest/internal/parser"
	"tempest/internal/trace"
)

// TestChaosShipByteIdenticalToOfflineParse is the fleet-mode end-to-end
// guarantee under seeded link chaos: three nodes ship their traces
// through connections that refuse to come up, die mid-stream and tear
// frames, and once every shipper's queue flushes, each node's collector
// profile must render byte-identical to an offline parse of the same
// trace — the live path may lose connections, never data.
func TestChaosShipByteIdenticalToOfflineParse(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			c, addr := startCollector(t, Options{})

			traces := []*trace.Trace{
				buildTrace(t, 1, []string{"compute", "exchange"}, 50),
				buildTrace(t, 2, []string{"compute", "io", "reduce"}, 70),
				buildTrace(t, 3, []string{"idle_wait", "compute"}, 40),
			}
			shippers := make([]*Shipper, len(traces))
			for i, tr := range traces {
				plan := faultinject.NewPlan(seed + int64(i))
				dial := faultinject.FaultyDialer(plan, faultinject.ConnFaults{
					RefuseFirst:      2,
					CloseAfterWrites: 3,
					PartialWriteRate: 0.15,
					Sleep:            func(time.Duration) {},
				}, nil)
				shippers[i] = NewShipper(addr, tr.NodeID, tr.Rank, ShipperOptions{
					Dial:            dial,
					DialBackoffBase: time.Millisecond,
					DialBackoffMax:  5 * time.Millisecond,
					FlushTimeout:    30 * time.Second,
				})
			}
			var reconnects, resends uint64
			for i, tr := range traces {
				shipTrace(t, shippers[i], tr, 5)
			}
			for i := range shippers {
				if err := shippers[i].Close(); err != nil {
					t.Fatalf("node %d Close: %v", traces[i].NodeID, err)
				}
				st := shippers[i].Stats()
				if st.DroppedSegments != 0 {
					t.Fatalf("node %d dropped %d segments despite clean Close", traces[i].NodeID, st.DroppedSegments)
				}
				reconnects += st.Reconnects
				resends += st.Resends
			}
			// CloseAfterWrites=3 guarantees the links actually died: a run
			// with zero reconnects would mean the chaos never engaged.
			if reconnects == 0 {
				t.Error("chaos plan produced no reconnects — faults not exercised")
			}

			for _, tr := range traces {
				np, err := c.NodeProfile(tr.NodeID)
				if err != nil {
					t.Fatalf("node %d: %v", tr.NodeID, err)
				}
				got := renderNode(t, np)
				want := renderNode(t, offlineNodeProfile(t, tr, parser.Fahrenheit))
				if got != want {
					t.Errorf("node %d profile diverged from offline parse after chaos (reconnects=%d resends=%d):\n--- live ---\n%s--- offline ---\n%s",
						tr.NodeID, reconnects, resends, got, want)
				}
			}

			// The fleet hot-spot ranking must equal internal/hotspot run
			// over the offline-parsed profiles of the same traces.
			offline := &parser.Profile{Unit: parser.Fahrenheit}
			for _, tr := range traces {
				offline.Nodes = append(offline.Nodes, *offlineNodeProfile(t, tr, parser.Fahrenheit))
			}
			wantHF, err := hotspot.HotFunctions(offline, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(wantHF) > 5 {
				wantHF = wantHF[:5]
			}
			resp, err := c.Hotspots(0, 5)
			if err != nil {
				t.Fatal(err)
			}
			gotHF := make([]hotspot.FunctionHeat, len(resp.Functions))
			for i, f := range resp.Functions {
				gotHF[i] = hotspot.FunctionHeat{Node: f.Node, Name: f.Name, AvgTemp: f.AvgTemp, MaxTemp: f.MaxTemp, TotalTimeS: f.TotalTimeS, Score: f.Score}
			}
			if !reflect.DeepEqual(gotHF, wantHF) {
				t.Errorf("live top-5 differs from offline hotspot ranking:\n got %+v\nwant %+v", gotHF, wantHF)
			}

			// And the HTTP surface serves the same answer.
			srv := httptest.NewServer(c.Handler())
			defer srv.Close()
			res, err := srv.Client().Get(srv.URL + "/api/hotspots?k=5")
			if err != nil {
				t.Fatal(err)
			}
			defer res.Body.Close()
			if res.StatusCode != 200 {
				t.Fatalf("/api/hotspots status %d", res.StatusCode)
			}
		})
	}
}
