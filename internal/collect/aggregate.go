package collect

import (
	"sort"

	"tempest/internal/hotspot"
	"tempest/internal/parser"
)

// Fleet aggregation: cluster-wide hot-spot rankings assembled from
// per-node profile snapshots. The per-(node, function) rankings come
// straight from internal/hotspot — the same computation the offline
// tools run — and the fleet merge folds those entries across nodes, so
// online and offline answers agree by construction.

// FleetFunction is one function's thermal contribution summed across
// every node that ran it — the cluster-wide answer to "which code should
// thermal management target first".
type FleetFunction struct {
	Name string `json:"name"`
	// Nodes is how many nodes contributed this function.
	Nodes int `json:"nodes"`
	// TotalTimeS is the inclusive time summed across nodes, in seconds.
	TotalTimeS float64 `json:"total_time_s"`
	// AvgTemp is the time-weighted mean of per-node averages; MaxTemp is
	// the hottest observation on any node. Units follow the profile.
	AvgTemp float64 `json:"avg_temp"`
	MaxTemp float64 `json:"max_temp"`
	// Score sums the per-node thermal contributions (degree-seconds
	// above each node's baseline) — the fleet ranking key.
	Score float64 `json:"score"`
}

// sensorNodes filters a fleet profile down to the nodes that actually
// carry samples on the requested sensor, so one sensorless (or not yet
// reporting) node cannot fail a fleet-wide query.
func sensorNodes(p *parser.Profile, sensor int) *parser.Profile {
	out := &parser.Profile{Unit: p.Unit}
	for _, np := range p.Nodes {
		if sensor >= 0 && sensor < len(np.Samples) && len(np.Samples[sensor]) > 0 {
			out.Nodes = append(out.Nodes, np)
		}
	}
	return out
}

// HotFunctions ranks per-(node, function) thermal contribution across
// the fleet via internal/hotspot, skipping nodes without samples on the
// sensor. k > 0 truncates to the top k entries.
func HotFunctions(p *parser.Profile, sensor, k int) ([]hotspot.FunctionHeat, error) {
	fp := sensorNodes(p, sensor)
	if len(fp.Nodes) == 0 {
		return []hotspot.FunctionHeat{}, nil
	}
	hf, err := hotspot.HotFunctions(fp, sensor)
	if err != nil {
		return nil, err
	}
	if hf == nil {
		hf = []hotspot.FunctionHeat{}
	}
	if k > 0 && len(hf) > k {
		hf = hf[:k]
	}
	return hf, nil
}

// HotNodes ranks nodes by average temperature on the sensor via
// internal/hotspot, skipping nodes without samples. k > 0 truncates.
func HotNodes(p *parser.Profile, sensor, k int) ([]hotspot.NodeHeat, error) {
	fp := sensorNodes(p, sensor)
	if len(fp.Nodes) == 0 {
		return []hotspot.NodeHeat{}, nil
	}
	hn, err := hotspot.HotNodes(fp, sensor)
	if err != nil {
		return nil, err
	}
	if hn == nil {
		hn = []hotspot.NodeHeat{}
	}
	if k > 0 && len(hn) > k {
		hn = hn[:k]
	}
	return hn, nil
}

// MergeHotFunctions folds per-(node, function) heat entries into one row
// per function name: scores and times sum, averages weight by time, and
// the result is ranked hottest first (score desc, then name). The input
// must be *untruncated* per-node rankings — merge first, cut k after.
func MergeHotFunctions(hf []hotspot.FunctionHeat, k int) []FleetFunction {
	byName := map[string]*FleetFunction{}
	var order []string
	for _, f := range hf {
		ff, ok := byName[f.Name]
		if !ok {
			ff = &FleetFunction{Name: f.Name, MaxTemp: f.MaxTemp}
			byName[f.Name] = ff
			order = append(order, f.Name)
		}
		ff.Nodes++
		ff.Score += f.Score
		ff.AvgTemp += f.AvgTemp * f.TotalTimeS // weighted sum; normalised below
		ff.TotalTimeS += f.TotalTimeS
		if f.MaxTemp > ff.MaxTemp {
			ff.MaxTemp = f.MaxTemp
		}
	}
	out := make([]FleetFunction, 0, len(order))
	for _, name := range order {
		ff := *byName[name]
		if ff.TotalTimeS > 0 {
			ff.AvgTemp /= ff.TotalTimeS
		}
		out = append(out, ff)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Name < out[j].Name
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
