package collect

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"tempest/internal/critpath"
	"tempest/internal/hotspot"
	"tempest/internal/parser"
	"tempest/internal/report"
)

// countingResponseWriter tracks whether (and how much of) a streaming
// response body has been written, so handler error paths can tell "no
// byte sent yet — a clean 500 is still possible" from "mid-stream — the
// only honest move is aborting the connection".
type countingResponseWriter struct {
	http.ResponseWriter
	n int64
}

func (cw *countingResponseWriter) Write(p []byte) (int, error) {
	n, err := cw.ResponseWriter.Write(p)
	cw.n += int64(n)
	return n, err
}

// Handler returns the collector's HTTP query API:
//
//	GET /healthz              liveness probe
//	GET /metrics              Prometheus text-format self-observability
//	GET /api/nodes            per-node ingest status (JSON array)
//	GET /api/profile/{node}   one node's live profile (JSON; ?format=text
//	                          for the paper's report layout)
//	GET /api/hotspots         fleet hot-spot rankings (?k= top-K,
//	                          ?sensor= sensor index, default 0;
//	                          ?window=30m ranks the trailing window from
//	                          durable history instead of all time)
//	GET /api/series/{node}    one node's sample series as streaming CSV;
//	                          ?from=&to= (RFC 3339 or unix seconds,
//	                          half-open) rebuilds the series over that
//	                          range from the durable store
//	GET /api/windows/{node}   the stored windows a node's history can be
//	                          queried at (raw segments vs folded archives)
//	GET /api/critpath/{node}  one node's serialization/wait analysis
//	                          (JSON; ?format=text for the report layout)
//	GET /api/timeline/{node}  one node's per-lane busy/wait timeline
//	                          (JSON; ?format=text for a gantt, ?width=
//	                          columns)
//	GET /api/policy           adaptive-sampling policy state per node
//	                          (issued revisions, detail sets, budgets)
//
// Every response is computed from a live snapshot: queries never block
// ingest beyond one synchronous pass through each shard's worker.
func (c *Collector) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		// Still a liveness 200 when degraded — the process serves — but
		// the body tells probes that durability is gone.
		if n := c.DegradedStoreShards(); n > 0 {
			fmt.Fprintf(w, "degraded\nstore: %d shard(s) ingesting memory-only (acked data will not survive a crash)\n", n)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		c.WriteMetrics(w)
	})
	mux.HandleFunc("GET /api/nodes", func(w http.ResponseWriter, r *http.Request) {
		c.writeJSON(w, "/api/nodes", c.Nodes())
	})
	mux.HandleFunc("GET /api/profile/{node}", func(w http.ResponseWriter, r *http.Request) {
		np, ok := c.nodeParam(w, r)
		if !ok {
			return
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			report.WriteNode(w, np, report.Options{Labels: true})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		report.WriteJSON(w, &parser.Profile{Unit: c.opts.Unit, Nodes: []parser.NodeProfile{*np}})
	})
	mux.HandleFunc("GET /api/series/{node}", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		fromS, toS := q.Get("from"), q.Get("to")
		if (fromS == "") != (toS == "") {
			http.Error(w, "bad range: from and to must be given together", http.StatusBadRequest)
			return
		}
		if fromS != "" {
			// Historical path: rebuild the series over [from, to) from the
			// durable store instead of snapshotting the live builder.
			id, err := strconv.ParseUint(r.PathValue("node"), 10, 32)
			if err != nil {
				http.Error(w, "bad node id", http.StatusBadRequest)
				return
			}
			from, err := parseTimeParam(fromS)
			if err != nil {
				http.Error(w, "bad from parameter", http.StatusBadRequest)
				return
			}
			to, err := parseTimeParam(toS)
			if err != nil {
				http.Error(w, "bad to parameter", http.StatusBadRequest)
				return
			}
			if from > to {
				http.Error(w, "bad range: from after to", http.StatusBadRequest)
				return
			}
			np, archEvents, archived, err := c.WindowSeries(uint32(id), from, to)
			if err != nil {
				if errors.Is(err, ErrHistoryUnavailable) {
					http.Error(w, err.Error(), http.StatusServiceUnavailable)
					return
				}
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			comments := []string{fmt.Sprintf("window: [%s, %s)",
				time.Unix(0, from).UTC().Format(time.RFC3339Nano),
				time.Unix(0, to).UTC().Format(time.RFC3339Nano))}
			if archived {
				comments = append(comments, archivedMarker(archEvents))
			}
			var nps []*parser.NodeProfile
			if np != nil {
				nps = append(nps, np)
			}
			c.streamSeries(w, uint32(id), nps, comments)
			return
		}
		np, ok := c.nodeParam(w, r)
		if !ok {
			return
		}
		// The live series only covers raw history: events retention folded
		// into archives are gone from the builder, so the series would
		// silently shrink. Say so in-band instead.
		var comments []string
		if n := c.nodeArchivedEvents(np.NodeID); n > 0 {
			comments = append(comments, archivedMarker(n))
		}
		c.streamSeries(w, np.NodeID, []*parser.NodeProfile{np}, comments)
	})
	mux.HandleFunc("GET /api/windows/{node}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("node"), 10, 32)
		if err != nil {
			http.Error(w, "bad node id", http.StatusBadRequest)
			return
		}
		wr, err := c.NodeWindows(uint32(id))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		c.writeJSON(w, "/api/windows", wr)
	})
	mux.HandleFunc("GET /api/critpath/{node}", func(w http.ResponseWriter, r *http.Request) {
		sum, _, _, ok := c.critParam(w, r)
		if !ok {
			return
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if err := report.WriteCritPath(w, sum, report.Options{}); err != nil {
				c.metrics.streamErrors.Add(1)
			}
			return
		}
		c.writeJSON(w, "/api/critpath", sum)
	})
	mux.HandleFunc("GET /api/timeline/{node}", func(w http.ResponseWriter, r *http.Request) {
		_, tracks, dur, ok := c.critParam(w, r)
		if !ok {
			return
		}
		width, err := intParam(r.URL.Query().Get("width"), 0)
		if err != nil || width < 0 {
			http.Error(w, "bad width parameter", http.StatusBadRequest)
			return
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if err := report.WriteTimeline(w, tracks, dur, width); err != nil {
				c.metrics.streamErrors.Add(1)
			}
			return
		}
		c.writeJSON(w, "/api/timeline", report.BuildTimelineJSON(tracks, dur))
	})
	mux.HandleFunc("GET /api/hotspots", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		k, err := intParam(q.Get("k"), 10)
		if err != nil || k < 0 {
			http.Error(w, "bad k parameter", http.StatusBadRequest)
			return
		}
		sensor, err := intParam(q.Get("sensor"), 0)
		if err != nil || sensor < 0 {
			http.Error(w, "bad sensor parameter", http.StatusBadRequest)
			return
		}
		if winS := q.Get("window"); winS != "" {
			d, err := time.ParseDuration(winS)
			if err != nil || d <= 0 {
				http.Error(w, "bad window parameter", http.StatusBadRequest)
				return
			}
			// [now-window, ∞): commit clocks never lead the collector's
			// clock, so the open upper bound just means "up to the newest
			// committed batch" without excluding commits at this instant.
			from := c.opts.Now().Add(-d).UnixNano()
			resp, err := c.WindowHotspots(sensor, k, from, math.MaxInt64)
			if err != nil {
				if errors.Is(err, ErrHistoryUnavailable) {
					http.Error(w, err.Error(), http.StatusServiceUnavailable)
					return
				}
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			resp.Window = d.String()
			c.writeJSON(w, "/api/hotspots", resp)
			return
		}
		resp, err := c.Hotspots(sensor, k)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		c.writeJSON(w, "/api/hotspots", resp)
	})
	mux.HandleFunc("GET /api/policy", func(w http.ResponseWriter, r *http.Request) {
		c.writeJSON(w, "/api/policy", PolicyResponse{
			Enabled: c.opts.Policy.Enabled,
			Nodes:   c.PolicyStatuses(),
		})
	})
	return mux
}

// PolicyResponse is the /api/policy body: whether the engine runs, and
// every touched node's policy state.
type PolicyResponse struct {
	Enabled bool           `json:"enabled"`
	Nodes   []PolicyStatus `json:"nodes"`
}

// HotspotsResponse is the /api/hotspots body: the fleet's hottest code
// three ways — per-(node, function), merged per function across nodes,
// and per node.
type HotspotsResponse struct {
	K      int    `json:"k"`
	Sensor int    `json:"sensor"`
	Unit   string `json:"unit"`
	// Window, when set, scopes the answer to the trailing duration it
	// names, served from durable history (?window=).
	Window string `json:"window,omitempty"`
	// Functions ranks (node, function) pairs by thermal contribution —
	// the paper's per-node hot-spot answer, fleet-wide.
	Functions []apiFunction `json:"functions"`
	// Merged folds Functions across nodes into one row per function.
	Merged []FleetFunction `json:"merged"`
	// Nodes ranks whole nodes by average temperature.
	Nodes []apiNode `json:"nodes"`
}

// apiFunction and apiNode pin the JSON field names of internal/hotspot's
// result types, so the API contract survives internal renames.
type apiFunction struct {
	Node       uint32  `json:"node"`
	Name       string  `json:"name"`
	AvgTemp    float64 `json:"avg_temp"`
	MaxTemp    float64 `json:"max_temp"`
	TotalTimeS float64 `json:"total_time_s"`
	Score      float64 `json:"score"`
}

type apiNode struct {
	NodeID     uint32  `json:"node"`
	Avg        float64 `json:"avg"`
	Max        float64 `json:"max"`
	TrendPerS  float64 `json:"trend_per_s"`
	Volatility float64 `json:"volatility"`
}

// Hotspots computes the /api/hotspots answer from a live fleet snapshot,
// folded with any history that retention compacted out of raw storage —
// the associative fold makes the answer agree with an uninterrupted,
// uncompacted run. Nodes rankings need raw samples, so they cover live
// history only.
func (c *Collector) Hotspots(sensor, k int) (*HotspotsResponse, error) {
	return c.assembleHotspots(c.Profile(), c.archivedHeat(sensor), sensor, k)
}

// assembleHotspots ranks one profile snapshot (live or rebuilt from a
// historical window) folded with archived heat into the /api/hotspots
// shape — the shared back half of Hotspots and WindowHotspots.
func (c *Collector) assembleHotspots(p *parser.Profile, arch []hotspot.FunctionHeat, sensor, k int) (*HotspotsResponse, error) {
	// Merge from the untruncated ranking, then cut both to k.
	full, err := HotFunctions(p, sensor, 0)
	if err != nil {
		return nil, err
	}
	if len(arch) > 0 {
		full = foldFunctionHeat(arch, full)
	}
	merged := MergeHotFunctions(full, k)
	if k > 0 && len(full) > k {
		full = full[:k]
	}
	hn, err := HotNodes(p, sensor, k)
	if err != nil {
		return nil, err
	}
	resp := &HotspotsResponse{
		K:         k,
		Sensor:    sensor,
		Unit:      c.opts.Unit.String(),
		Functions: make([]apiFunction, len(full)),
		Merged:    merged,
		Nodes:     make([]apiNode, len(hn)),
	}
	for i, f := range full {
		resp.Functions[i] = apiFunction{Node: f.Node, Name: f.Name, AvgTemp: f.AvgTemp, MaxTemp: f.MaxTemp, TotalTimeS: f.TotalTimeS, Score: f.Score}
	}
	for i, n := range hn {
		resp.Nodes[i] = apiNode{NodeID: n.NodeID, Avg: n.Avg, Max: n.Max, TrendPerS: n.TrendPerS, Volatility: n.Volatility}
	}
	return resp, nil
}

// critParam resolves the {node} path segment to a live critical-path
// snapshot, writing the HTTP error itself when it can't.
func (c *Collector) critParam(w http.ResponseWriter, r *http.Request) (*critpath.Summary, []critpath.Track, time.Duration, bool) {
	id, err := strconv.ParseUint(r.PathValue("node"), 10, 32)
	if err != nil {
		http.Error(w, "bad node id", http.StatusBadRequest)
		return nil, nil, 0, false
	}
	sum, tracks, dur, err := c.CritPath(uint32(id))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return nil, nil, 0, false
	}
	return sum, tracks, dur, true
}

// nodeParam resolves the {node} path segment to a live profile snapshot,
// writing the HTTP error itself when it can't.
func (c *Collector) nodeParam(w http.ResponseWriter, r *http.Request) (*parser.NodeProfile, bool) {
	id, err := strconv.ParseUint(r.PathValue("node"), 10, 32)
	if err != nil {
		http.Error(w, "bad node id", http.StatusBadRequest)
		return nil, false
	}
	np, err := c.NodeProfile(uint32(id))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return nil, false
	}
	return np, true
}

func intParam(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

// parseTimeParam reads a range bound as RFC 3339 (nanosecond precision
// allowed) or a unix timestamp in seconds (fractional allowed), returning
// wall-clock nanoseconds.
func parseTimeParam(s string) (int64, error) {
	if t, err := time.Parse(time.RFC3339Nano, s); err == nil {
		return t.UnixNano(), nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("collect: bad time %q", s)
	}
	return int64(f * 1e9), nil
}

// archivedMarker is the truncation comment a series response carries when
// part of the requested history survives only as folded archive heat.
func archivedMarker(events uint64) string {
	return fmt.Sprintf("truncated: %d events archived beyond series granularity", events)
}

// nodeArchivedEvents reports how many of one node's events retention has
// folded out of raw history (0 for unknown nodes — the caller already
// resolved existence).
func (c *Collector) nodeArchivedEvents(id uint32) uint64 {
	resp := c.shardFor(id).call(shardReq{op: opWindows, node: id})
	if resp.err != nil {
		return 0
	}
	return resp.archEvents
}

// streamSeries emits node profiles as the CSV series format, preceded by
// comment lines. Error handling matches the original /api/series
// contract: a real 500 while no body byte is out, an aborted connection
// after — a silent empty 200 must not hide a failure.
func (c *Collector) streamSeries(w http.ResponseWriter, node uint32, nps []*parser.NodeProfile, comments []string) {
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	cw := &countingResponseWriter{ResponseWriter: w}
	cs, err := report.NewSeriesCSVStream(cw, comments...)
	for _, np := range nps {
		if err != nil {
			break
		}
		err = cs.Node(np)
	}
	if err == nil {
		return
	}
	c.metrics.streamErrors.Add(1)
	c.opts.Logger.Warn("series response failed", "route", "/api/series", "node", node, "bytes", cw.n, "err", err)
	if cw.n == 0 {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	panic(http.ErrAbortHandler)
}

// writeJSON encodes v as the response body. Encode failures (unmarshalable
// value, or the client hanging up mid-write) can't change the status line
// any more, but they are counted and logged instead of vanishing.
func (c *Collector) writeJSON(w http.ResponseWriter, route string, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		c.metrics.encodeErrors.Add(1)
		c.opts.Logger.Warn("response encode failed", "route", route, "err", err)
	}
}
