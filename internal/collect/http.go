package collect

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"tempest/internal/critpath"
	"tempest/internal/parser"
	"tempest/internal/report"
)

// countingResponseWriter tracks whether (and how much of) a streaming
// response body has been written, so handler error paths can tell "no
// byte sent yet — a clean 500 is still possible" from "mid-stream — the
// only honest move is aborting the connection".
type countingResponseWriter struct {
	http.ResponseWriter
	n int64
}

func (cw *countingResponseWriter) Write(p []byte) (int, error) {
	n, err := cw.ResponseWriter.Write(p)
	cw.n += int64(n)
	return n, err
}

// Handler returns the collector's HTTP query API:
//
//	GET /healthz              liveness probe
//	GET /metrics              Prometheus text-format self-observability
//	GET /api/nodes            per-node ingest status (JSON array)
//	GET /api/profile/{node}   one node's live profile (JSON; ?format=text
//	                          for the paper's report layout)
//	GET /api/hotspots         fleet hot-spot rankings (?k= top-K,
//	                          ?sensor= sensor index, default 0)
//	GET /api/series/{node}    one node's sample series as streaming CSV
//	GET /api/critpath/{node}  one node's serialization/wait analysis
//	                          (JSON; ?format=text for the report layout)
//	GET /api/timeline/{node}  one node's per-lane busy/wait timeline
//	                          (JSON; ?format=text for a gantt, ?width=
//	                          columns)
//	GET /api/policy           adaptive-sampling policy state per node
//	                          (issued revisions, detail sets, budgets)
//
// Every response is computed from a live snapshot: queries never block
// ingest beyond one synchronous pass through each shard's worker.
func (c *Collector) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		// Still a liveness 200 when degraded — the process serves — but
		// the body tells probes that durability is gone.
		if n := c.DegradedStoreShards(); n > 0 {
			fmt.Fprintf(w, "degraded\nstore: %d shard(s) ingesting memory-only (acked data will not survive a crash)\n", n)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		c.WriteMetrics(w)
	})
	mux.HandleFunc("GET /api/nodes", func(w http.ResponseWriter, r *http.Request) {
		c.writeJSON(w, "/api/nodes", c.Nodes())
	})
	mux.HandleFunc("GET /api/profile/{node}", func(w http.ResponseWriter, r *http.Request) {
		np, ok := c.nodeParam(w, r)
		if !ok {
			return
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			report.WriteNode(w, np, report.Options{Labels: true})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		report.WriteJSON(w, &parser.Profile{Unit: c.opts.Unit, Nodes: []parser.NodeProfile{*np}})
	})
	mux.HandleFunc("GET /api/series/{node}", func(w http.ResponseWriter, r *http.Request) {
		np, ok := c.nodeParam(w, r)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		cw := &countingResponseWriter{ResponseWriter: w}
		cs, err := report.NewSeriesCSVStream(cw)
		if err == nil {
			err = cs.Node(np)
		}
		if err == nil {
			return
		}
		// A silent empty 200 used to hide both failure modes here. Before
		// the first body byte a real 500 is still possible; after it, the
		// status line is already on the wire, so abort the connection and
		// let the client's short read tell the truth.
		c.metrics.streamErrors.Add(1)
		c.opts.Logger.Warn("series response failed", "route", "/api/series", "node", np.NodeID, "bytes", cw.n, "err", err)
		if cw.n == 0 {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		panic(http.ErrAbortHandler)
	})
	mux.HandleFunc("GET /api/critpath/{node}", func(w http.ResponseWriter, r *http.Request) {
		sum, _, _, ok := c.critParam(w, r)
		if !ok {
			return
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if err := report.WriteCritPath(w, sum, report.Options{}); err != nil {
				c.metrics.streamErrors.Add(1)
			}
			return
		}
		c.writeJSON(w, "/api/critpath", sum)
	})
	mux.HandleFunc("GET /api/timeline/{node}", func(w http.ResponseWriter, r *http.Request) {
		_, tracks, dur, ok := c.critParam(w, r)
		if !ok {
			return
		}
		width, err := intParam(r.URL.Query().Get("width"), 0)
		if err != nil || width < 0 {
			http.Error(w, "bad width parameter", http.StatusBadRequest)
			return
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if err := report.WriteTimeline(w, tracks, dur, width); err != nil {
				c.metrics.streamErrors.Add(1)
			}
			return
		}
		c.writeJSON(w, "/api/timeline", report.BuildTimelineJSON(tracks, dur))
	})
	mux.HandleFunc("GET /api/hotspots", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		k, err := intParam(q.Get("k"), 10)
		if err != nil || k < 0 {
			http.Error(w, "bad k parameter", http.StatusBadRequest)
			return
		}
		sensor, err := intParam(q.Get("sensor"), 0)
		if err != nil || sensor < 0 {
			http.Error(w, "bad sensor parameter", http.StatusBadRequest)
			return
		}
		resp, err := c.Hotspots(sensor, k)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		c.writeJSON(w, "/api/hotspots", resp)
	})
	mux.HandleFunc("GET /api/policy", func(w http.ResponseWriter, r *http.Request) {
		c.writeJSON(w, "/api/policy", PolicyResponse{
			Enabled: c.opts.Policy.Enabled,
			Nodes:   c.PolicyStatuses(),
		})
	})
	return mux
}

// PolicyResponse is the /api/policy body: whether the engine runs, and
// every touched node's policy state.
type PolicyResponse struct {
	Enabled bool           `json:"enabled"`
	Nodes   []PolicyStatus `json:"nodes"`
}

// HotspotsResponse is the /api/hotspots body: the fleet's hottest code
// three ways — per-(node, function), merged per function across nodes,
// and per node.
type HotspotsResponse struct {
	K      int    `json:"k"`
	Sensor int    `json:"sensor"`
	Unit   string `json:"unit"`
	// Functions ranks (node, function) pairs by thermal contribution —
	// the paper's per-node hot-spot answer, fleet-wide.
	Functions []apiFunction `json:"functions"`
	// Merged folds Functions across nodes into one row per function.
	Merged []FleetFunction `json:"merged"`
	// Nodes ranks whole nodes by average temperature.
	Nodes []apiNode `json:"nodes"`
}

// apiFunction and apiNode pin the JSON field names of internal/hotspot's
// result types, so the API contract survives internal renames.
type apiFunction struct {
	Node       uint32  `json:"node"`
	Name       string  `json:"name"`
	AvgTemp    float64 `json:"avg_temp"`
	MaxTemp    float64 `json:"max_temp"`
	TotalTimeS float64 `json:"total_time_s"`
	Score      float64 `json:"score"`
}

type apiNode struct {
	NodeID     uint32  `json:"node"`
	Avg        float64 `json:"avg"`
	Max        float64 `json:"max"`
	TrendPerS  float64 `json:"trend_per_s"`
	Volatility float64 `json:"volatility"`
}

// Hotspots computes the /api/hotspots answer from a live fleet snapshot,
// folded with any history that retention compacted out of raw storage —
// the associative fold makes the answer agree with an uninterrupted,
// uncompacted run. Nodes rankings need raw samples, so they cover live
// history only.
func (c *Collector) Hotspots(sensor, k int) (*HotspotsResponse, error) {
	p := c.Profile()
	// Merge from the untruncated ranking, then cut both to k.
	full, err := HotFunctions(p, sensor, 0)
	if err != nil {
		return nil, err
	}
	if arch := c.archivedHeat(sensor); len(arch) > 0 {
		full = foldFunctionHeat(arch, full)
	}
	merged := MergeHotFunctions(full, k)
	if k > 0 && len(full) > k {
		full = full[:k]
	}
	hn, err := HotNodes(p, sensor, k)
	if err != nil {
		return nil, err
	}
	resp := &HotspotsResponse{
		K:         k,
		Sensor:    sensor,
		Unit:      c.opts.Unit.String(),
		Functions: make([]apiFunction, len(full)),
		Merged:    merged,
		Nodes:     make([]apiNode, len(hn)),
	}
	for i, f := range full {
		resp.Functions[i] = apiFunction{Node: f.Node, Name: f.Name, AvgTemp: f.AvgTemp, MaxTemp: f.MaxTemp, TotalTimeS: f.TotalTimeS, Score: f.Score}
	}
	for i, n := range hn {
		resp.Nodes[i] = apiNode{NodeID: n.NodeID, Avg: n.Avg, Max: n.Max, TrendPerS: n.TrendPerS, Volatility: n.Volatility}
	}
	return resp, nil
}

// critParam resolves the {node} path segment to a live critical-path
// snapshot, writing the HTTP error itself when it can't.
func (c *Collector) critParam(w http.ResponseWriter, r *http.Request) (*critpath.Summary, []critpath.Track, time.Duration, bool) {
	id, err := strconv.ParseUint(r.PathValue("node"), 10, 32)
	if err != nil {
		http.Error(w, "bad node id", http.StatusBadRequest)
		return nil, nil, 0, false
	}
	sum, tracks, dur, err := c.CritPath(uint32(id))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return nil, nil, 0, false
	}
	return sum, tracks, dur, true
}

// nodeParam resolves the {node} path segment to a live profile snapshot,
// writing the HTTP error itself when it can't.
func (c *Collector) nodeParam(w http.ResponseWriter, r *http.Request) (*parser.NodeProfile, bool) {
	id, err := strconv.ParseUint(r.PathValue("node"), 10, 32)
	if err != nil {
		http.Error(w, "bad node id", http.StatusBadRequest)
		return nil, false
	}
	np, err := c.NodeProfile(uint32(id))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return nil, false
	}
	return np, true
}

func intParam(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

// writeJSON encodes v as the response body. Encode failures (unmarshalable
// value, or the client hanging up mid-write) can't change the status line
// any more, but they are counted and logged instead of vanishing.
func (c *Collector) writeJSON(w http.ResponseWriter, route string, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		c.metrics.encodeErrors.Add(1)
		c.opts.Logger.Warn("response encode failed", "route", route, "err", err)
	}
}
