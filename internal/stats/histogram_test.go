package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("0 bins should fail")
	}
	if _, err := NewHistogram(10, 10, 5); err == nil {
		t.Error("empty range should fail")
	}
	if _, err := NewHistogram(10, 5, 5); err == nil {
		t.Error("inverted range should fail")
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(0)    // bin 0
	h.Add(0.5)  // bin 0
	h.Add(9.99) // bin 9
	h.Add(10)   // hi edge lands in last bin
	h.Add(-1)   // underflow
	h.Add(11)   // overflow
	bins := h.Bins()
	if bins[0] != 2 {
		t.Errorf("bin0 = %d, want 2", bins[0])
	}
	if bins[9] != 2 {
		t.Errorf("bin9 = %d, want 2", bins[9])
	}
	if h.Underflow() != 1 || h.Overflow() != 1 {
		t.Errorf("under/over = %d/%d, want 1/1", h.Underflow(), h.Overflow())
	}
	if h.N() != 6 {
		t.Errorf("N = %d, want 6", h.N())
	}
}

func TestHistogramMoments(t *testing.T) {
	h, _ := NewHistogram(0, 200, 200)
	in := []float64{90, 100, 110}
	for _, v := range in {
		h.Add(v)
	}
	if !almostEqual(h.Mean(), 100, 1e-9) {
		t.Errorf("Mean = %v, want 100", h.Mean())
	}
	want, _ := Summarize(in)
	if !almostEqual(h.Variance(), want.Var, 1e-6) {
		t.Errorf("Variance = %v, want %v", h.Variance(), want.Var)
	}
}

func TestHistogramQuantileAndMode(t *testing.T) {
	h, _ := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(2.5) // bin 2
	}
	for i := 0; i < 5; i++ {
		h.Add(7.5) // bin 7
	}
	med, err := h.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if med != h.BinCenter(2) {
		t.Errorf("median = %v, want %v", med, h.BinCenter(2))
	}
	mode, err := h.ModeBin()
	if err != nil {
		t.Fatal(err)
	}
	if mode != h.BinCenter(2) {
		t.Errorf("mode = %v, want %v", mode, h.BinCenter(2))
	}
	if _, err := h.Quantile(1.5); err == nil {
		t.Error("quantile > 1 should fail")
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h, _ := NewHistogram(0, 10, 10)
	if _, err := h.Quantile(0.5); err != ErrEmpty {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
	if _, err := h.ModeBin(); err != ErrEmpty {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
	h.Add(-5) // out of range only
	if _, err := h.Quantile(0.5); err != ErrEmpty {
		t.Errorf("out-of-range-only err = %v, want ErrEmpty", err)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, _ := NewHistogram(0, 100, 50)
	b, _ := NewHistogram(0, 100, 50)
	rng := rand.New(rand.NewSource(3))
	var all []float64
	for i := 0; i < 200; i++ {
		v := rng.Float64() * 100
		all = append(all, v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != 200 {
		t.Errorf("merged N = %d, want 200", a.N())
	}
	want, _ := Summarize(all)
	if !almostEqual(a.Mean(), want.Avg, 1e-9) {
		t.Errorf("merged Mean = %v, want %v", a.Mean(), want.Avg)
	}
	c, _ := NewHistogram(0, 50, 50)
	if err := a.Merge(c); err == nil {
		t.Error("geometry mismatch should fail")
	}
}

func TestHistogramMergeEmptyCases(t *testing.T) {
	a, _ := NewHistogram(0, 10, 10)
	b, _ := NewHistogram(0, 10, 10)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != 0 {
		t.Error("merging two empties should stay empty")
	}
	b.Add(5)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != 1 || a.Mean() != 5 {
		t.Errorf("merge into empty: N=%d Mean=%v", a.N(), a.Mean())
	}
}

func TestHistogramASCII(t *testing.T) {
	h, _ := NewHistogram(90, 120, 30)
	for i := 0; i < 10; i++ {
		h.Add(95.5)
	}
	h.Add(110.5)
	out := h.ASCII(20)
	if !strings.Contains(out, "#") {
		t.Errorf("ASCII output missing bars:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 2 {
		t.Errorf("ASCII lines = %d, want 2 (non-empty bins only)", lines)
	}
	empty, _ := NewHistogram(0, 1, 2)
	if !strings.Contains(empty.ASCII(10), "no in-range samples") {
		t.Error("empty histogram ASCII should say so")
	}
}

// Property: histogram moments agree with batch stats for in-range data,
// and the quantile is monotone in q.
func TestHistogramProperties(t *testing.T) {
	f := func(raw []float64) bool {
		h, _ := NewHistogram(0, 1000, 100)
		in := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			v = math.Abs(math.Mod(v, 1000))
			in = append(in, v)
			h.Add(v)
		}
		if len(in) == 0 {
			return true
		}
		want, _ := Summarize(in)
		if !almostEqual(h.Mean(), want.Avg, 1e-6*(1+math.Abs(want.Avg))) {
			return false
		}
		q25, err1 := h.Quantile(0.25)
		q75, err2 := h.Quantile(0.75)
		if err1 != nil || err2 != nil {
			return false
		}
		return q25 <= q75
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAccumulatorAdd(b *testing.B) {
	acc := NewAccumulator(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		acc.Add(float64(i % 100))
	}
}

func BenchmarkSummarize1k(b *testing.B) {
	in := make([]float64, 1000)
	rng := rand.New(rand.NewSource(1))
	for i := range in {
		in[i] = rng.Float64() * 100
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Summarize(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHistogramAdd(b *testing.B) {
	h, _ := NewHistogram(0, 200, 200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Add(float64(i % 200))
	}
}
