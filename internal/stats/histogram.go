package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-bin histogram over a closed interval [Lo, Hi].
// Tempest uses it to summarise long temperature series compactly: sensor
// readings are quantised (hardware reports whole degrees), so a histogram
// with 1-degree bins is a lossless representation from which every Summary
// column — including median and mode — can be recovered without retaining
// raw samples.
type Histogram struct {
	lo, hi   float64
	width    float64
	counts   []int64
	under    int64 // samples below lo
	over     int64 // samples above hi
	n        int64
	sum      float64
	sumSq    float64
	min, max float64
}

// NewHistogram creates a histogram with bins equal-width bins over
// [lo, hi]. It returns an error if bins < 1 or hi ≤ lo.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("stats: histogram needs ≥1 bin, got %d", bins)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: histogram range [%v,%v] is empty", lo, hi)
	}
	return &Histogram{
		lo:     lo,
		hi:     hi,
		width:  (hi - lo) / float64(bins),
		counts: make([]int64, bins),
	}, nil
}

// Add records one sample. Samples outside [lo, hi] are tallied in
// underflow/overflow counters and still contribute to moment statistics.
func (h *Histogram) Add(v float64) {
	if h.n == 0 {
		h.min, h.max = v, v
	} else {
		if v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
	}
	h.n++
	h.sum += v
	h.sumSq += v * v
	switch {
	case v < h.lo:
		h.under++
	case v > h.hi:
		h.over++
	default:
		i := int((v - h.lo) / h.width)
		if i == len(h.counts) { // v == hi lands in the last bin
			i--
		}
		h.counts[i]++
	}
}

// N reports the total number of samples added, including out-of-range ones.
func (h *Histogram) N() int64 { return h.n }

// Underflow and Overflow report out-of-range sample counts.
func (h *Histogram) Underflow() int64 { return h.under }
func (h *Histogram) Overflow() int64  { return h.over }

// Bins returns a copy of the per-bin counts.
func (h *Histogram) Bins() []int64 { return append([]int64(nil), h.counts...) }

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.lo + (float64(i)+0.5)*h.width
}

// Mean reports the running mean (0 for no samples).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Variance reports the running population variance computed from moments.
func (h *Histogram) Variance() float64 {
	if h.n == 0 {
		return 0
	}
	m := h.Mean()
	v := h.sumSq/float64(h.n) - m*m
	if v < 0 { // numeric cancellation guard
		return 0
	}
	return v
}

// Quantile approximates the q-quantile (0 ≤ q ≤ 1) from binned, in-range
// samples, returning the centre of the bin containing the q-th in-range
// sample. Out-of-range samples are ignored. Returns ErrEmpty if no
// in-range samples were recorded.
func (h *Histogram) Quantile(q float64) (float64, error) {
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of range [0,1]", q)
	}
	in := h.n - h.under - h.over
	if in == 0 {
		return 0, ErrEmpty
	}
	target := int64(math.Ceil(q * float64(in)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			return h.BinCenter(i), nil
		}
	}
	return h.BinCenter(len(h.counts) - 1), nil
}

// ModeBin returns the centre of the most-populated bin (smallest bin wins
// ties), or ErrEmpty if no in-range samples were recorded.
func (h *Histogram) ModeBin() (float64, error) {
	best, bestCount := -1, int64(0)
	for i, c := range h.counts {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	if best < 0 {
		return 0, ErrEmpty
	}
	return h.BinCenter(best), nil
}

// Merge folds other into h. Both histograms must have identical geometry.
func (h *Histogram) Merge(other *Histogram) error {
	if h.lo != other.lo || h.hi != other.hi || len(h.counts) != len(other.counts) {
		return errors.New("stats: cannot merge histograms with different geometry")
	}
	if other.n == 0 {
		return nil
	}
	if h.n == 0 {
		h.min, h.max = other.min, other.max
	} else {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
	h.n += other.n
	h.sum += other.sum
	h.sumSq += other.sumSq
	h.under += other.under
	h.over += other.over
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	return nil
}

// ASCII renders a horizontal bar chart of the histogram, one row per
// non-empty bin, scaled so the fullest bin spans width characters. It is
// used by the report package's --ascii output mode.
func (h *Histogram) ASCII(width int) string {
	if width < 1 {
		width = 40
	}
	var maxC int64
	for _, c := range h.counts {
		if c > maxC {
			maxC = c
		}
	}
	if maxC == 0 {
		return "(no in-range samples)\n"
	}
	var b strings.Builder
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		bar := int(math.Round(float64(c) / float64(maxC) * float64(width)))
		if bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "%8.2f | %s %d\n", h.BinCenter(i), strings.Repeat("#", bar), c)
	}
	return b.String()
}

// Quantize rounds each sample to the nearest multiple of step, mimicking
// the coarse quantisation of motherboard thermal sensors (the paper's
// tables show readings such as 102.20 and 113.00 repeating exactly). A
// step of 0 or less returns a copy of the input.
func Quantize(samples []float64, step float64) []float64 {
	out := make([]float64, len(samples))
	if step <= 0 {
		copy(out, samples)
		return out
	}
	for i, v := range samples {
		out[i] = math.Round(v/step) * step
	}
	return out
}

// WeightedMean returns the duration-weighted mean of values, used when
// averaging temperatures across unevenly spaced samples. It returns
// ErrEmpty for no values and an error for mismatched or non-positive
// weights.
func WeightedMean(values, weights []float64) (float64, error) {
	if len(values) == 0 {
		return 0, ErrEmpty
	}
	if len(values) != len(weights) {
		return 0, fmt.Errorf("stats: %d values but %d weights", len(values), len(weights))
	}
	var sum, wsum float64
	for i, v := range values {
		w := weights[i]
		if w < 0 {
			return 0, fmt.Errorf("stats: negative weight %v at index %d", w, i)
		}
		sum += v * w
		wsum += w
	}
	if wsum == 0 {
		return 0, errors.New("stats: all weights are zero")
	}
	return sum / wsum, nil
}

// CoefficientOfVariation returns Sdv/|Avg| for samples — the paper reports
// run-to-run variance of about 5 %, which we verify with this metric.
func CoefficientOfVariation(samples []float64) (float64, error) {
	s, err := Summarize(samples)
	if err != nil {
		return 0, err
	}
	if s.Avg == 0 {
		return 0, errors.New("stats: mean is zero; CoV undefined")
	}
	return s.Sdv / math.Abs(s.Avg), nil
}

// Correlation returns the Pearson correlation coefficient between xs and
// ys. Bellosa-style thermal models regress temperature on event counts;
// the hotspot package uses this to correlate per-function activity with
// temperature trends.
func Correlation(xs, ys []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: %d xs but %d ys", len(xs), len(ys))
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance; correlation undefined")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// LinearFit returns slope and intercept of the least-squares line y = a*x+b.
// The parser uses it to detect warming/cooling trends in per-node series
// (Figure 3's "steadily warming" nodes have positive slope).
func LinearFit(xs, ys []float64) (slope, intercept float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	if len(xs) != len(ys) {
		return 0, 0, fmt.Errorf("stats: %d xs but %d ys", len(xs), len(ys))
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxy, sxx float64
	for i := range xs {
		dx := xs[i] - mx
		sxy += dx * (ys[i] - my)
		sxx += dx * dx
	}
	if sxx == 0 {
		return 0, 0, errors.New("stats: x has zero variance; fit undefined")
	}
	slope = sxy / sxx
	return slope, my - slope*mx, nil
}

// RankDescending returns the indices of values sorted from largest to
// smallest value (stable: equal values keep their original order).
func RankDescending(values []float64) []int {
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return values[idx[a]] > values[idx[b]] })
	return idx
}
