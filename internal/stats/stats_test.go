package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= eps
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("Summarize(nil) err = %v, want ErrEmpty", err)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{42})
	if err != nil {
		t.Fatal(err)
	}
	for name, got := range map[string]float64{
		"Min": s.Min, "Avg": s.Avg, "Max": s.Max, "Med": s.Med, "Mod": s.Mod,
	} {
		if got != 42 {
			t.Errorf("%s = %v, want 42", name, got)
		}
	}
	if s.Sdv != 0 || s.Var != 0 {
		t.Errorf("Sdv,Var = %v,%v, want 0,0", s.Sdv, s.Var)
	}
	if s.N != 1 {
		t.Errorf("N = %d, want 1", s.N)
	}
}

func TestSummarizeKnown(t *testing.T) {
	// Paper-style quantised sensor readings.
	in := []float64{94, 95, 95, 95, 96, 97, 94, 95}
	s, err := Summarize(in)
	if err != nil {
		t.Fatal(err)
	}
	if s.Min != 94 || s.Max != 97 {
		t.Errorf("Min,Max = %v,%v, want 94,97", s.Min, s.Max)
	}
	wantAvg := (94 + 95 + 95 + 95 + 96 + 97 + 94 + 95) / 8.0
	if !almostEqual(s.Avg, wantAvg, 1e-12) {
		t.Errorf("Avg = %v, want %v", s.Avg, wantAvg)
	}
	if s.Mod != 95 {
		t.Errorf("Mod = %v, want 95", s.Mod)
	}
	if s.Med != 95 {
		t.Errorf("Med = %v, want 95", s.Med)
	}
	if !almostEqual(s.Var, s.Sdv*s.Sdv, 1e-9) {
		t.Errorf("Var = %v, want Sdv² = %v", s.Var, s.Sdv*s.Sdv)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	if _, err := Summarize(in); err != nil {
		t.Fatal(err)
	}
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestModeTieBreaksLow(t *testing.T) {
	m, err := Mode([]float64{2, 2, 1, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if m != 1 {
		t.Errorf("Mode = %v, want 1 (smallest among most frequent)", m)
	}
}

func TestMedianEvenPicksLowerMiddle(t *testing.T) {
	m, err := Median([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m != 2 {
		t.Errorf("Median = %v, want 2 (lower middle)", m)
	}
}

func TestPercentile(t *testing.T) {
	in := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct{ p, want float64 }{
		{0, 10}, {10, 10}, {50, 50}, {90, 90}, {100, 100},
	}
	for _, c := range cases {
		got, err := Percentile(in, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(in, -1); err == nil {
		t.Error("Percentile(-1) should fail")
	}
	if _, err := Percentile(in, 101); err == nil {
		t.Error("Percentile(101) should fail")
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Errorf("Percentile(nil) err = %v, want ErrEmpty", err)
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := make([]float64, 1000)
	for i := range in {
		in[i] = 90 + rng.Float64()*30
	}
	acc := NewAccumulator(true)
	acc.AddAll(in)
	got, err := acc.Summary()
	if err != nil {
		t.Fatal(err)
	}
	want, err := Summarize(in)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != want.N || got.Min != want.Min || got.Max != want.Max {
		t.Errorf("N/Min/Max mismatch: got %+v want %+v", got, want)
	}
	if !almostEqual(got.Avg, want.Avg, 1e-9) {
		t.Errorf("Avg = %v, want %v", got.Avg, want.Avg)
	}
	if !almostEqual(got.Var, want.Var, 1e-6) {
		t.Errorf("Var = %v, want %v", got.Var, want.Var)
	}
	if got.Med != want.Med || got.Mod != want.Mod {
		t.Errorf("Med/Mod mismatch: got %v/%v want %v/%v", got.Med, got.Mod, want.Med, want.Mod)
	}
}

func TestAccumulatorNoRetain(t *testing.T) {
	acc := NewAccumulator(false)
	acc.AddAll([]float64{1, 2, 3})
	s, err := acc.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(s.Med) || !math.IsNaN(s.Mod) {
		t.Errorf("Med/Mod = %v/%v, want NaN/NaN without retention", s.Med, s.Mod)
	}
	if acc.Samples() != nil {
		t.Error("Samples() should be nil without retention")
	}
	if s.Avg != 2 {
		t.Errorf("Avg = %v, want 2", s.Avg)
	}
}

func TestAccumulatorEmptySummary(t *testing.T) {
	if _, err := NewAccumulator(true).Summary(); err != ErrEmpty {
		t.Fatalf("empty Summary err = %v, want ErrEmpty", err)
	}
}

func TestAccumulatorMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	all := make([]float64, 500)
	for i := range all {
		all[i] = rng.NormFloat64()*5 + 100
	}
	a := NewAccumulator(true)
	b := NewAccumulator(true)
	a.AddAll(all[:200])
	b.AddAll(all[200:])
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	got, _ := a.Summary()
	want, _ := Summarize(all)
	if got.N != want.N {
		t.Fatalf("merged N = %d, want %d", got.N, want.N)
	}
	if !almostEqual(got.Avg, want.Avg, 1e-9) || !almostEqual(got.Var, want.Var, 1e-6) {
		t.Errorf("merged Avg/Var = %v/%v, want %v/%v", got.Avg, got.Var, want.Avg, want.Var)
	}
	if got.Min != want.Min || got.Max != want.Max || got.Med != want.Med {
		t.Errorf("merged Min/Max/Med mismatch")
	}
}

func TestAccumulatorMergeIntoEmpty(t *testing.T) {
	a := NewAccumulator(true)
	b := NewAccumulator(true)
	b.AddAll([]float64{5, 6, 7})
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != 3 || a.Mean() != 6 {
		t.Errorf("merge into empty: N=%d Mean=%v", a.N(), a.Mean())
	}
	// Mutating b afterwards must not affect a (deep copy of samples).
	b.Add(100)
	if a.N() != 3 {
		t.Error("merge aliased the source accumulator")
	}
}

func TestAccumulatorMergeModeMismatch(t *testing.T) {
	a := NewAccumulator(true)
	b := NewAccumulator(false)
	if err := a.Merge(b); err == nil {
		t.Error("merging different retention modes should fail")
	}
}

// Property: for any non-empty input, Min ≤ Med ≤ Max, Min ≤ Avg ≤ Max,
// Var = Sdv², and Mod is an element of the input.
func TestSummaryInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		in := make([]float64, 0, len(raw)+1)
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Keep magnitudes sane to avoid float overflow in sumSq.
			in = append(in, math.Mod(v, 1e6))
		}
		if len(in) == 0 {
			in = append(in, 1)
		}
		s, err := Summarize(in)
		if err != nil {
			return false
		}
		if s.Min > s.Med || s.Med > s.Max {
			return false
		}
		if s.Min > s.Avg+1e-9 || s.Avg > s.Max+1e-9 {
			return false
		}
		if !almostEqual(s.Var, s.Sdv*s.Sdv, 1e-6*(1+math.Abs(s.Var))) {
			return false
		}
		found := false
		for _, v := range in {
			if v == s.Mod {
				found = true
				break
			}
		}
		return found
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: streaming accumulator agrees with batch summarisation on
// moments for arbitrary input.
func TestAccumulatorAgreesWithBatchProperty(t *testing.T) {
	f := func(raw []float64) bool {
		in := make([]float64, 0, len(raw)+1)
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			in = append(in, math.Mod(v, 1e4))
		}
		if len(in) == 0 {
			return true
		}
		acc := NewAccumulator(false)
		acc.AddAll(in)
		want, err := Summarize(in)
		if err != nil {
			return false
		}
		scale := 1 + math.Abs(want.Var)
		return almostEqual(acc.Mean(), want.Avg, 1e-6) &&
			almostEqual(acc.Variance(), want.Var, 1e-5*scale) &&
			acc.Min() == want.Min && acc.Max() == want.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Merge(a,b) is equivalent to accumulating the concatenation.
func TestMergeEquivalenceProperty(t *testing.T) {
	f := func(x, y []float64) bool {
		clean := func(raw []float64) []float64 {
			out := make([]float64, 0, len(raw))
			for _, v := range raw {
				if !math.IsNaN(v) && !math.IsInf(v, 0) {
					out = append(out, math.Mod(v, 1e4))
				}
			}
			return out
		}
		xs, ys := clean(x), clean(y)
		a := NewAccumulator(false)
		b := NewAccumulator(false)
		a.AddAll(xs)
		b.AddAll(ys)
		if err := a.Merge(b); err != nil {
			return false
		}
		c := NewAccumulator(false)
		c.AddAll(append(append([]float64(nil), xs...), ys...))
		if a.N() != c.N() {
			return false
		}
		if a.N() == 0 {
			return true
		}
		scale := 1 + math.Abs(c.Variance())
		return almostEqual(a.Mean(), c.Mean(), 1e-6) &&
			almostEqual(a.Variance(), c.Variance(), 1e-5*scale)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuantize(t *testing.T) {
	in := []float64{94.3, 94.6, 95.01, 102.2}
	got := Quantize(in, 1)
	want := []float64{94, 95, 95, 102}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Quantize[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// step ≤ 0 copies
	got = Quantize(in, 0)
	for i := range in {
		if got[i] != in[i] {
			t.Errorf("Quantize step=0 changed value at %d", i)
		}
	}
	got[0] = -1
	if in[0] == -1 {
		t.Error("Quantize step=0 aliased its input")
	}
}

func TestQuantizeHalfDegreeSteps(t *testing.T) {
	got := Quantize([]float64{102.31, 113.06}, 0.2)
	if !almostEqual(got[0], 102.4, 1e-9) || !almostEqual(got[1], 113.0, 1e-9) {
		t.Errorf("Quantize 0.2 = %v", got)
	}
}

func TestWeightedMean(t *testing.T) {
	got, err := WeightedMean([]float64{100, 110}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 102.5, 1e-12) {
		t.Errorf("WeightedMean = %v, want 102.5", got)
	}
	if _, err := WeightedMean(nil, nil); err != ErrEmpty {
		t.Error("empty WeightedMean should return ErrEmpty")
	}
	if _, err := WeightedMean([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths should fail")
	}
	if _, err := WeightedMean([]float64{1}, []float64{-1}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := WeightedMean([]float64{1, 2}, []float64{0, 0}); err == nil {
		t.Error("all-zero weights should fail")
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	cov, err := CoefficientOfVariation([]float64{95, 100, 105})
	if err != nil {
		t.Fatal(err)
	}
	if cov <= 0 || cov > 0.1 {
		t.Errorf("CoV = %v, want small positive", cov)
	}
	if _, err := CoefficientOfVariation([]float64{0, 0}); err == nil {
		t.Error("zero-mean CoV should fail")
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ysUp := []float64{2, 4, 6, 8, 10}
	ysDown := []float64{10, 8, 6, 4, 2}
	if r, _ := Correlation(xs, ysUp); !almostEqual(r, 1, 1e-12) {
		t.Errorf("perfect positive correlation = %v", r)
	}
	if r, _ := Correlation(xs, ysDown); !almostEqual(r, -1, 1e-12) {
		t.Errorf("perfect negative correlation = %v", r)
	}
	if _, err := Correlation(xs, []float64{1, 1, 1, 1, 1}); err == nil {
		t.Error("zero-variance correlation should fail")
	}
	if _, err := Correlation(nil, nil); err != ErrEmpty {
		t.Error("empty correlation should return ErrEmpty")
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{5, 7, 9, 11} // y = 2x + 5
	slope, intercept, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(slope, 2, 1e-12) || !almostEqual(intercept, 5, 1e-12) {
		t.Errorf("fit = %v,%v, want 2,5", slope, intercept)
	}
	if _, _, err := LinearFit([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("zero x-variance fit should fail")
	}
}

func TestRankDescending(t *testing.T) {
	got := RankDescending([]float64{3, 1, 4, 1, 5})
	want := []int{4, 2, 0, 1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RankDescending = %v, want %v", got, want)
		}
	}
	if out := RankDescending(nil); len(out) != 0 {
		t.Error("RankDescending(nil) should be empty")
	}
}
