package stats

import (
	"math"
	"testing"
)

// sameFloat treats NaN as equal to NaN — merge tests need to assert that
// a NaN-poisoned statistic stays NaN through both code paths.
func sameFloat(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return a == b
}

// Merging into a zero-value Accumulator (not NewAccumulator) must behave
// exactly like merging into a fresh retaining one: the zero value is
// documented ready to use.
func TestMergeIntoZeroValueAccumulator(t *testing.T) {
	var a Accumulator
	b := NewAccumulator(true)
	b.AddAll([]float64{3, 1, 2})
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	got, err := a.Summary()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Summarize([]float64{3, 1, 2})
	if got.N != want.N || got.Min != want.Min || got.Max != want.Max || got.Var != want.Var {
		t.Errorf("zero-value merge Summary = %+v, want %+v", got, want)
	}

	// Merging an empty accumulator into an empty zero value is a no-op.
	var c, d Accumulator
	if err := c.Merge(&d); err != nil {
		t.Fatal(err)
	}
	if c.N() != 0 {
		t.Errorf("empty-into-empty merge produced N=%d", c.N())
	}
}

// NaN samples must degrade the accumulator exactly as they degrade batch
// Summarize: min/max keep the IEEE comparison semantics (a NaN first
// sample pins them to NaN, a later NaN leaves them alone), mean and
// variance go NaN either way.
func TestAccumulatorNaNMatchesBatch(t *testing.T) {
	cases := map[string][]float64{
		"nan_first":  {math.NaN(), 2, 5},
		"nan_middle": {2, math.NaN(), 5},
		"nan_only":   {math.NaN()},
	}
	for name, samples := range cases {
		acc := NewAccumulator(false)
		acc.AddAll(samples)
		got, err := acc.Summary()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, err := Summarize(samples)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.N != want.N {
			t.Errorf("%s: N = %d, want %d", name, got.N, want.N)
		}
		if !sameFloat(got.Min, want.Min) || !sameFloat(got.Max, want.Max) {
			t.Errorf("%s: Min/Max = %v/%v, batch %v/%v", name, got.Min, got.Max, want.Min, want.Max)
		}
		if !sameFloat(got.Avg, want.Avg) || !sameFloat(got.Var, want.Var) {
			t.Errorf("%s: Avg/Var = %v/%v, batch %v/%v", name, got.Avg, got.Var, want.Avg, want.Var)
		}
	}
}

// Merging two halves that each contain a NaN must agree with summarising
// the concatenation: everything NaN except N.
func TestMergeNaNPropagates(t *testing.T) {
	a := NewAccumulator(false)
	b := NewAccumulator(false)
	a.AddAll([]float64{1, math.NaN()})
	b.AddAll([]float64{4, 9})
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	got, _ := a.Summary()
	if got.N != 4 {
		t.Errorf("merged N = %d, want 4", got.N)
	}
	if !math.IsNaN(got.Avg) || !math.IsNaN(got.Var) {
		t.Errorf("NaN did not poison merged moments: Avg=%v Var=%v", got.Avg, got.Var)
	}
}

// Retention-mode mismatch must fail in both directions and leave the
// destination untouched.
func TestMergeRetentionMismatchBothWays(t *testing.T) {
	retain := NewAccumulator(true)
	retain.AddAll([]float64{1, 2})
	stream := NewAccumulator(false)
	stream.AddAll([]float64{8, 9})
	if err := retain.Merge(stream); err == nil {
		t.Error("retain.Merge(stream) should fail")
	}
	if err := stream.Merge(retain); err == nil {
		t.Error("stream.Merge(retain) should fail")
	}
	if retain.N() != 2 || stream.N() != 2 {
		t.Errorf("failed merge mutated state: retain N=%d stream N=%d", retain.N(), stream.N())
	}
}

// Min/max picked by a merge are exact input values, and the Chan et al.
// variance combination agrees with batch Summarize to floating-point
// noise — on deterministic data, tight enough to assert hard.
func TestMergeMinMaxVarianceMatchBatch(t *testing.T) {
	left := []float64{104.5, 98.25, 101.0, 99.75}
	right := []float64{97.5, 105.25, 100.0}
	a := NewAccumulator(false)
	b := NewAccumulator(false)
	a.AddAll(left)
	b.AddAll(right)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	all := append(append([]float64(nil), left...), right...)
	want, _ := Summarize(all)
	if a.Min() != want.Min || a.Max() != want.Max {
		t.Errorf("merged Min/Max = %v/%v, batch %v/%v", a.Min(), a.Max(), want.Min, want.Max)
	}
	if diff := math.Abs(a.Variance() - want.Var); diff > 1e-12 {
		t.Errorf("merged Var = %v, batch %v (diff %g)", a.Variance(), want.Var, diff)
	}
}
