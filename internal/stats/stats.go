// Package stats provides the descriptive statistics Tempest reports for
// every (function, sensor) pair: Min, Avg, Max, standard deviation,
// variance, median and mode — the seven columns of the paper's Figure 2a
// and Tables 2–3 — plus streaming accumulators and histograms used by the
// sampling daemon.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by batch routines when given no samples.
var ErrEmpty = errors.New("stats: no samples")

// Summary holds the seven statistics Tempest prints per sensor per
// function. Values are in the same unit as the input samples
// (degrees Fahrenheit for temperature data).
type Summary struct {
	N   int     // number of samples
	Min float64 // minimum sample
	Avg float64 // arithmetic mean
	Max float64 // maximum sample
	Sdv float64 // population standard deviation
	Var float64 // population variance
	Med float64 // median (lower of the two middle samples for even N)
	Mod float64 // mode (smallest value among the most frequent)
	Sum float64 // sum of samples
}

// Summarize computes a Summary over samples. It returns ErrEmpty when
// samples is empty. The input slice is not modified.
func Summarize(samples []float64) (Summary, error) {
	if len(samples) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: len(samples), Min: samples[0], Max: samples[0]}
	for _, v := range samples {
		s.Sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Avg = s.Sum / float64(s.N)
	var ss float64
	for _, v := range samples {
		d := v - s.Avg
		ss += d * d
	}
	s.Var = ss / float64(s.N)
	s.Sdv = math.Sqrt(s.Var)

	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	s.Med = medianSorted(sorted)
	s.Mod = modeSorted(sorted)
	return s, nil
}

// medianSorted returns the median of a sorted, non-empty slice. Like the
// paper's tables (where Med always equals an observed reading), it picks
// the lower middle sample for even N rather than interpolating.
func medianSorted(sorted []float64) float64 {
	return sorted[(len(sorted)-1)/2]
}

// modeSorted returns the mode of a sorted, non-empty slice: the value of
// the longest run of equal samples, ties broken toward the smallest value.
func modeSorted(sorted []float64) float64 {
	mode := sorted[0]
	bestRun, run := 1, 1
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			run++
		} else {
			run = 1
		}
		if run > bestRun {
			bestRun = run
			mode = sorted[i]
		}
	}
	return mode
}

// Median returns the median of samples, or ErrEmpty.
func Median(samples []float64) (float64, error) {
	if len(samples) == 0 {
		return 0, ErrEmpty
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	return medianSorted(sorted), nil
}

// Mode returns the mode of samples, or ErrEmpty.
func Mode(samples []float64) (float64, error) {
	if len(samples) == 0 {
		return 0, ErrEmpty
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	return modeSorted(sorted), nil
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of samples using
// nearest-rank on a sorted copy. It returns ErrEmpty for no samples and an
// error for p outside [0,100].
func Percentile(samples []float64, p float64) (float64, error) {
	if len(samples) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	if p == 0 {
		return sorted[0], nil
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	return sorted[rank-1], nil
}

// Accumulator is a streaming single-pass accumulator for Min/Avg/Max/Sdv/
// Var using Welford's algorithm. Median and mode need the sample set, so
// Accumulator optionally retains samples; disable retention for unbounded
// streams where only moment statistics are needed.
//
// The zero value is ready to use and retains samples.
type Accumulator struct {
	n        int
	min, max float64
	mean, m2 float64
	sum      float64
	noRetain bool
	samples  []float64
}

// NewAccumulator returns an accumulator. If retainSamples is false the
// accumulator keeps O(1) state and Summary's Med/Mod fields are NaN.
func NewAccumulator(retainSamples bool) *Accumulator {
	return &Accumulator{noRetain: !retainSamples}
}

// Add folds one sample into the accumulator.
func (a *Accumulator) Add(v float64) {
	if a.n == 0 {
		a.min, a.max = v, v
	} else {
		if v < a.min {
			a.min = v
		}
		if v > a.max {
			a.max = v
		}
	}
	a.n++
	a.sum += v
	delta := v - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (v - a.mean)
	if !a.noRetain {
		a.samples = append(a.samples, v)
	}
}

// AddAll folds each sample in vs into the accumulator.
func (a *Accumulator) AddAll(vs []float64) {
	for _, v := range vs {
		a.Add(v)
	}
}

// N reports the number of samples added.
func (a *Accumulator) N() int { return a.n }

// Mean reports the running mean (0 for no samples).
func (a *Accumulator) Mean() float64 { return a.mean }

// Min reports the running minimum (0 for no samples).
func (a *Accumulator) Min() float64 { return a.min }

// Max reports the running maximum (0 for no samples).
func (a *Accumulator) Max() float64 { return a.max }

// Variance reports the running population variance (0 for n < 1).
func (a *Accumulator) Variance() float64 {
	if a.n == 0 {
		return 0
	}
	return a.m2 / float64(a.n)
}

// StdDev reports the running population standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Samples returns the retained samples (nil when retention is disabled).
// The returned slice is owned by the accumulator; callers must not modify it.
func (a *Accumulator) Samples() []float64 { return a.samples }

// Summary materialises the accumulated statistics. Med/Mod are NaN when
// sample retention is disabled. It returns ErrEmpty for no samples.
func (a *Accumulator) Summary() (Summary, error) {
	if a.n == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{
		N:   a.n,
		Min: a.min,
		Avg: a.mean,
		Max: a.max,
		Var: a.Variance(),
		Sdv: a.StdDev(),
		Sum: a.sum,
	}
	if a.noRetain {
		s.Med, s.Mod = math.NaN(), math.NaN()
		return s, nil
	}
	sorted := append([]float64(nil), a.samples...)
	sort.Float64s(sorted)
	s.Med = medianSorted(sorted)
	s.Mod = modeSorted(sorted)
	return s, nil
}

// Merge folds the state of other into a. Both accumulators must have the
// same retention mode; merging a retaining accumulator into a non-retaining
// one (or vice versa) returns an error because Med/Mod would silently
// degrade.
func (a *Accumulator) Merge(other *Accumulator) error {
	if a.noRetain != other.noRetain {
		return errors.New("stats: cannot merge accumulators with different retention modes")
	}
	if other.n == 0 {
		return nil
	}
	if a.n == 0 {
		*a = *other
		a.samples = append([]float64(nil), other.samples...)
		return nil
	}
	if other.min < a.min {
		a.min = other.min
	}
	if other.max > a.max {
		a.max = other.max
	}
	// Chan et al. parallel variance combination.
	nA, nB := float64(a.n), float64(other.n)
	delta := other.mean - a.mean
	tot := nA + nB
	a.mean = a.mean + delta*nB/tot
	a.m2 = a.m2 + other.m2 + delta*delta*nA*nB/tot
	a.n += other.n
	a.sum += other.sum
	if !a.noRetain {
		a.samples = append(a.samples, other.samples...)
	}
	return nil
}
