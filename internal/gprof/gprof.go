// Package gprof implements a gprof-style flat profiler, the baseline
// Tempest is validated against in §3.4.
//
// gprof attributes CPU time to functions by sampling the program counter
// into fixed buckets and counting calls via an mcount hook; its output is
// the per-function *total*, with no timeline. §3.1 explains why that is
// insufficient for thermal work: "gprof does not pinpoint which function
// was executing at time X". This package provides
//
//   - Profiler: a live bucket profiler (mcount-like Enter/Exit plus a
//     SampleTick playing the role of SIGPROF), used to measure baseline
//     overhead; and
//   - FromTrace: the exact flat profile computed from a Tempest trace, so
//     tests can assert the two tools agree on per-function time the way
//     the paper's validation does.
package gprof

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"tempest/internal/trace"
	"tempest/internal/vclock"
)

// Entry is one row of a flat profile.
type Entry struct {
	Name  string
	Calls int64
	// Self is time attributed to the function itself, excluding callees.
	Self time.Duration
	// Cumulative is inclusive time (function plus callees).
	Cumulative time.Duration
	// SelfPercent is Self as a share of the profile's total self time.
	SelfPercent float64
}

// Profiler is a live bucket profiler. Enter/Exit maintain a per-lane call
// stack (the mcount role); SampleTick charges one sampling quantum to the
// innermost open function on every lane (the SIGPROF role).
type Profiler struct {
	clock    vclock.Clock
	interval time.Duration

	mu     sync.Mutex
	stacks map[int][]string // lane → stack of function names
	calls  map[string]int64
	ticks  map[string]int64 // bucket counts, by innermost function
}

// DefaultSampleInterval matches gprof's customary 100 Hz.
const DefaultSampleInterval = 10 * time.Millisecond

// New builds a profiler over clock; interval 0 defaults to 10 ms.
func New(clock vclock.Clock, interval time.Duration) (*Profiler, error) {
	if clock == nil {
		return nil, errors.New("gprof: clock is required")
	}
	if interval < 0 {
		return nil, fmt.Errorf("gprof: negative sample interval %v", interval)
	}
	if interval == 0 {
		interval = DefaultSampleInterval
	}
	return &Profiler{
		clock:    clock,
		interval: interval,
		stacks:   make(map[int][]string),
		calls:    make(map[string]int64),
		ticks:    make(map[string]int64),
	}, nil
}

// Interval returns the sampling quantum.
func (p *Profiler) Interval() time.Duration { return p.interval }

// Enter records a call on the lane's stack.
func (p *Profiler) Enter(lane int, name string) {
	p.mu.Lock()
	p.stacks[lane] = append(p.stacks[lane], name)
	p.calls[name]++
	p.mu.Unlock()
}

// Exit pops the lane's stack; unbalanced exits are an error.
func (p *Profiler) Exit(lane int, name string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.stacks[lane]
	if len(st) == 0 {
		return fmt.Errorf("gprof: exit %q on empty stack (lane %d)", name, lane)
	}
	top := st[len(st)-1]
	p.stacks[lane] = st[:len(st)-1]
	if top != name {
		return fmt.Errorf("gprof: exit %q but %q is open (lane %d)", name, top, lane)
	}
	return nil
}

// SampleTick charges one quantum to the innermost open function of every
// lane — a virtual SIGPROF firing.
func (p *Profiler) SampleTick() {
	p.mu.Lock()
	for _, st := range p.stacks {
		if len(st) > 0 {
			p.ticks[st[len(st)-1]]++
		}
	}
	p.mu.Unlock()
}

// Flat renders the bucket counts as a flat profile sorted by self time
// (descending), name-ordered among ties. Cumulative time is not observable
// from buckets alone, matching real gprof's need for call-graph estimation;
// here Cumulative is left equal to Self.
func (p *Profiler) Flat() []Entry {
	p.mu.Lock()
	defer p.mu.Unlock()
	var total int64
	for _, n := range p.ticks {
		total += n
	}
	entries := make([]Entry, 0, len(p.calls))
	for name, calls := range p.calls {
		self := time.Duration(p.ticks[name]) * p.interval
		pct := 0.0
		if total > 0 {
			pct = float64(p.ticks[name]) / float64(total) * 100
		}
		entries = append(entries, Entry{
			Name: name, Calls: calls, Self: self, Cumulative: self, SelfPercent: pct,
		})
	}
	sortEntries(entries)
	return entries
}

func sortEntries(entries []Entry) {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Self != entries[j].Self {
			return entries[i].Self > entries[j].Self
		}
		return entries[i].Name < entries[j].Name
	})
}

// FromTrace computes the exact flat profile of a Tempest trace: per
// function, the call count, exclusive (self) and inclusive (cumulative)
// time, by walking each lane's enter/exit nesting. Functions still open at
// the final event are charged up to that event's timestamp.
func FromTrace(tr *trace.Trace) ([]Entry, error) {
	if tr == nil {
		return nil, errors.New("gprof: nil trace")
	}
	type frame struct {
		fid       uint32
		enter     time.Duration
		childTime time.Duration
	}
	stacks := make(map[uint32][]frame)
	selfT := make(map[uint32]time.Duration)
	cumT := make(map[uint32]time.Duration)
	calls := make(map[uint32]int64)
	var last time.Duration

	for i, e := range tr.Events {
		if e.TS > last {
			last = e.TS
		}
		switch e.Kind {
		case trace.KindEnter:
			stacks[e.Lane] = append(stacks[e.Lane], frame{fid: e.FuncID, enter: e.TS})
			calls[e.FuncID]++
		case trace.KindExit:
			st := stacks[e.Lane]
			if len(st) == 0 {
				return nil, fmt.Errorf("gprof: event %d: exit with empty stack on lane %d", i, e.Lane)
			}
			top := st[len(st)-1]
			if top.fid != e.FuncID {
				return nil, fmt.Errorf("gprof: event %d: exit func %d but %d is open", i, e.FuncID, top.fid)
			}
			stacks[e.Lane] = st[:len(st)-1]
			inclusive := e.TS - top.enter
			cumT[top.fid] += inclusive
			selfT[top.fid] += inclusive - top.childTime
			if len(stacks[e.Lane]) > 0 {
				parent := &stacks[e.Lane][len(stacks[e.Lane])-1]
				parent.childTime += inclusive
			}
		}
	}
	// Close dangling frames at the last observed timestamp.
	for lane, st := range stacks {
		for len(st) > 0 {
			top := st[len(st)-1]
			st = st[:len(st)-1]
			inclusive := last - top.enter
			cumT[top.fid] += inclusive
			selfT[top.fid] += inclusive - top.childTime
			if len(st) > 0 {
				st[len(st)-1].childTime += inclusive
			}
		}
		stacks[lane] = nil
	}

	var totalSelf time.Duration
	for _, d := range selfT {
		totalSelf += d
	}
	entries := make([]Entry, 0, len(calls))
	for fid, n := range calls {
		name, err := tr.Sym.Name(fid)
		if err != nil {
			return nil, err
		}
		pct := 0.0
		if totalSelf > 0 {
			pct = float64(selfT[fid]) / float64(totalSelf) * 100
		}
		entries = append(entries, Entry{
			Name: name, Calls: n,
			Self: selfT[fid], Cumulative: cumT[fid],
			SelfPercent: pct,
		})
	}
	sortEntries(entries)
	return entries, nil
}

// Format renders entries in gprof's flat-profile style.
func Format(entries []Entry) string {
	out := "  %   cumulative   self              self\n time      seconds  seconds    calls  ms/call  name\n"
	var cum time.Duration
	for _, e := range entries {
		cum += e.Self
		msPerCall := 0.0
		if e.Calls > 0 {
			msPerCall = float64(e.Self.Milliseconds()) / float64(e.Calls)
		}
		out += fmt.Sprintf("%5.1f %12.2f %8.2f %8d %8.2f  %s\n",
			e.SelfPercent, cum.Seconds(), e.Self.Seconds(), e.Calls, msPerCall, e.Name)
	}
	return out
}
