package gprof

import (
	"strings"
	"testing"
	"time"

	"tempest/internal/trace"
	"tempest/internal/vclock"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Error("nil clock should fail")
	}
	if _, err := New(vclock.NewVirtualClock(), -time.Second); err == nil {
		t.Error("negative interval should fail")
	}
	p, err := New(vclock.NewVirtualClock(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Interval() != DefaultSampleInterval {
		t.Errorf("default interval = %v", p.Interval())
	}
}

func TestLiveProfilerBuckets(t *testing.T) {
	clk := vclock.NewVirtualClock()
	p, _ := New(clk, 10*time.Millisecond)
	p.Enter(0, "main")
	p.Enter(0, "hot")
	for i := 0; i < 90; i++ {
		p.SampleTick()
	}
	if err := p.Exit(0, "hot"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p.SampleTick()
	}
	if err := p.Exit(0, "main"); err != nil {
		t.Fatal(err)
	}
	flat := p.Flat()
	if len(flat) != 2 {
		t.Fatalf("entries = %d", len(flat))
	}
	if flat[0].Name != "hot" || flat[0].Self != 900*time.Millisecond {
		t.Errorf("top entry = %+v", flat[0])
	}
	if flat[0].SelfPercent != 90 {
		t.Errorf("hot percent = %v", flat[0].SelfPercent)
	}
	if flat[1].Name != "main" || flat[1].Self != 100*time.Millisecond || flat[1].Calls != 1 {
		t.Errorf("main entry = %+v", flat[1])
	}
}

func TestLiveProfilerUnbalanced(t *testing.T) {
	p, _ := New(vclock.NewVirtualClock(), 0)
	if err := p.Exit(0, "never"); err == nil {
		t.Error("exit on empty stack should fail")
	}
	p.Enter(0, "a")
	if err := p.Exit(0, "b"); err == nil {
		t.Error("mismatched exit should fail")
	}
}

func TestLiveProfilerMultiLane(t *testing.T) {
	p, _ := New(vclock.NewVirtualClock(), time.Millisecond)
	p.Enter(0, "f")
	p.Enter(1, "g")
	p.SampleTick() // charges both lanes
	flat := p.Flat()
	if len(flat) != 2 {
		t.Fatalf("entries = %d", len(flat))
	}
	for _, e := range flat {
		if e.Self != time.Millisecond {
			t.Errorf("%s self = %v", e.Name, e.Self)
		}
	}
}

// buildTrace makes: main(0..10s) calling hot(1s..9s) calling inner(2s..3s),
// then a second hot call (9s..10s) directly under main… on one lane.
func buildTrace(t *testing.T) *trace.Trace {
	t.Helper()
	clk := vclock.NewVirtualClock()
	tr, err := trace.NewTracer(trace.Config{Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	lane := tr.NewLane()
	main := tr.RegisterFunc("main")
	hot := tr.RegisterFunc("hot")
	inner := tr.RegisterFunc("inner")

	lane.Enter(main) // t=0
	clk.Advance(time.Second)
	lane.Enter(hot) // t=1
	clk.Advance(time.Second)
	lane.Enter(inner) // t=2
	clk.Advance(time.Second)
	mustExit(t, lane, inner) // t=3
	clk.Advance(6 * time.Second)
	mustExit(t, lane, hot) // t=9
	clk.Advance(time.Second)
	mustExit(t, lane, main) // t=10
	return tr.Finish()
}

func mustExit(t *testing.T, lane *trace.Lane, fid uint32) {
	t.Helper()
	if err := lane.Exit(fid); err != nil {
		t.Fatal(err)
	}
}

func TestFromTraceExactTimes(t *testing.T) {
	entries, err := FromTrace(buildTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Entry{}
	for _, e := range entries {
		byName[e.Name] = e
	}
	// main: inclusive 10 s, self 10-8 = 2 s.
	if e := byName["main"]; e.Cumulative != 10*time.Second || e.Self != 2*time.Second || e.Calls != 1 {
		t.Errorf("main = %+v", e)
	}
	// hot: inclusive 8 s, self 8-1 = 7 s.
	if e := byName["hot"]; e.Cumulative != 8*time.Second || e.Self != 7*time.Second || e.Calls != 1 {
		t.Errorf("hot = %+v", e)
	}
	// inner: 1 s, self 1 s.
	if e := byName["inner"]; e.Cumulative != time.Second || e.Self != time.Second || e.Calls != 1 {
		t.Errorf("inner = %+v", e)
	}
	// Sorted by self: hot, main, inner.
	if entries[0].Name != "hot" || entries[1].Name != "main" || entries[2].Name != "inner" {
		t.Errorf("order: %v %v %v", entries[0].Name, entries[1].Name, entries[2].Name)
	}
	// Percent sums to ≈100.
	var pct float64
	for _, e := range entries {
		pct += e.SelfPercent
	}
	if pct < 99.9 || pct > 100.1 {
		t.Errorf("percent sum = %v", pct)
	}
}

func TestFromTraceRecursion(t *testing.T) {
	clk := vclock.NewVirtualClock()
	tr, _ := trace.NewTracer(trace.Config{Clock: clk})
	lane := tr.NewLane()
	f := tr.RegisterFunc("fib")
	// fib calls itself: outer 0..4s, inner 1..2s.
	lane.Enter(f)
	clk.Advance(time.Second)
	lane.Enter(f)
	clk.Advance(time.Second)
	mustExit(t, lane, f)
	clk.Advance(2 * time.Second)
	mustExit(t, lane, f)
	entries, err := FromTrace(tr.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("entries = %d", len(entries))
	}
	e := entries[0]
	if e.Calls != 2 {
		t.Errorf("calls = %d", e.Calls)
	}
	// Self must equal wall time (4 s): the recursive inner second is not
	// double-counted as "child time lost".
	if e.Self != 4*time.Second {
		t.Errorf("self = %v, want 4s", e.Self)
	}
	// Cumulative double-counts recursion (outer 4 + inner 1), as gprof does.
	if e.Cumulative != 5*time.Second {
		t.Errorf("cumulative = %v, want 5s", e.Cumulative)
	}
}

func TestFromTraceDanglingFrames(t *testing.T) {
	clk := vclock.NewVirtualClock()
	tr, _ := trace.NewTracer(trace.Config{Clock: clk})
	lane := tr.NewLane()
	f := tr.RegisterFunc("open")
	lane.Enter(f)
	clk.Advance(3 * time.Second)
	tr.Marker("end") // moves last-timestamp without closing the frame
	entries, err := FromTrace(tr.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if entries[0].Cumulative != 3*time.Second {
		t.Errorf("dangling frame charged %v, want 3s", entries[0].Cumulative)
	}
}

func TestFromTraceErrors(t *testing.T) {
	if _, err := FromTrace(nil); err == nil {
		t.Error("nil trace should fail")
	}
	bad := &trace.Trace{Sym: trace.NewSymTab(), Events: []trace.Event{
		{Kind: trace.KindExit, FuncID: 0},
	}}
	bad.Sym.Register("f")
	if _, err := FromTrace(bad); err == nil {
		t.Error("exit on empty stack should fail")
	}
	bad2 := &trace.Trace{Sym: trace.NewSymTab(), Events: []trace.Event{
		{Kind: trace.KindEnter, FuncID: 0},
		{Kind: trace.KindExit, FuncID: 1, TS: time.Second},
	}}
	bad2.Sym.Register("f")
	bad2.Sym.Register("g")
	if _, err := FromTrace(bad2); err == nil {
		t.Error("mismatched exit should fail")
	}
}

func TestFromTraceMultiLane(t *testing.T) {
	clk := vclock.NewVirtualClock()
	tr, _ := trace.NewTracer(trace.Config{Clock: clk})
	l1 := tr.NewLane()
	l2 := tr.NewLane()
	f := tr.RegisterFunc("worker")
	l1.Enter(f)
	l2.Enter(f)
	clk.Advance(2 * time.Second)
	mustExit(t, l1, f)
	mustExit(t, l2, f)
	entries, err := FromTrace(tr.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if entries[0].Self != 4*time.Second || entries[0].Calls != 2 {
		t.Errorf("two-lane worker = %+v", entries[0])
	}
}

func TestSampledApproximatesExact(t *testing.T) {
	// §3.4: gprof and Tempest agree on per-function times. The live
	// bucket profiler driven alongside a virtual timeline must land
	// within one quantum per transition of the exact answer.
	clk := vclock.NewVirtualClock()
	p, _ := New(clk, 10*time.Millisecond)
	tr, _ := trace.NewTracer(trace.Config{Clock: clk})
	lane := tr.NewLane()
	mainF := tr.RegisterFunc("main")
	hotF := tr.RegisterFunc("hot")

	step := func(d time.Duration) {
		// advance virtual time, ticking the sampler every quantum
		for elapsed := time.Duration(0); elapsed < d; elapsed += p.Interval() {
			clk.Advance(p.Interval())
			p.SampleTick()
		}
	}
	p.Enter(0, "main")
	lane.Enter(mainF)
	step(time.Second)
	p.Enter(0, "hot")
	lane.Enter(hotF)
	step(8 * time.Second)
	_ = p.Exit(0, "hot")
	mustExit(t, lane, hotF)
	step(time.Second)
	_ = p.Exit(0, "main")
	mustExit(t, lane, mainF)

	exact, err := FromTrace(tr.Finish())
	if err != nil {
		t.Fatal(err)
	}
	sampled := p.Flat()
	exactBy := map[string]Entry{}
	for _, e := range exact {
		exactBy[e.Name] = e
	}
	for _, s := range sampled {
		want := exactBy[s.Name].Self
		diff := s.Self - want
		if diff < 0 {
			diff = -diff
		}
		if diff > 2*p.Interval() {
			t.Errorf("%s: sampled %v vs exact %v", s.Name, s.Self, want)
		}
	}
}

func TestFormat(t *testing.T) {
	entries, err := FromTrace(buildTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	out := Format(entries)
	if !strings.Contains(out, "hot") || !strings.Contains(out, "cumulative") {
		t.Errorf("format output:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2+3 {
		t.Errorf("lines = %d, want header(2)+3", len(lines))
	}
}

func BenchmarkLiveEnterExit(b *testing.B) {
	p, _ := New(vclock.NewRealClock(), 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Enter(0, "f")
		_ = p.Exit(0, "f")
	}
}

func BenchmarkFromTrace10k(b *testing.B) {
	clk := vclock.NewVirtualClock()
	tr, _ := trace.NewTracer(trace.Config{Clock: clk, LaneBufferCap: 1 << 20})
	lane := tr.NewLane()
	f := tr.RegisterFunc("f")
	for i := 0; i < 10000; i++ {
		clk.Advance(time.Microsecond)
		lane.Enter(f)
		clk.Advance(time.Microsecond)
		_ = lane.Exit(f)
	}
	trc := tr.Finish()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromTrace(trc); err != nil {
			b.Fatal(err)
		}
	}
}
