package tempest

import (
	"errors"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"time"

	"tempest/instrument"
	"tempest/internal/critpath"
	"tempest/internal/introspect"
	"tempest/internal/parser"
	"tempest/internal/sensors"
	"tempest/internal/stats"
	"tempest/internal/tempd"
	"tempest/internal/thermal"
	"tempest/internal/trace"
	"tempest/internal/vclock"
)

// LiveConfig configures real-machine profiling.
type LiveConfig struct {
	// HwmonRoot is the sysfs directory to scan for hardware sensors
	// (default /sys/class/hwmon). If no sensors are found and
	// AllowSimulatedSensors is set, a simulated sensor set backed by the
	// default thermal model is used instead, so the full pipeline still
	// runs on sensorless machines (VMs, containers).
	HwmonRoot             string
	AllowSimulatedSensors bool
	// SampleRateHz is tempd's sampling rate (default 4).
	SampleRateHz float64
	// Unit of reported statistics (default Fahrenheit).
	Unit Unit
	// NodeID labels the produced trace.
	NodeID uint32
	// DrainInterval is how often buffered events are drained from the
	// tracer into the session's streaming profile builder (default
	// 500 ms). Draining keeps the session's memory O(profile) rather
	// than O(events) over arbitrarily long runs, and is what makes
	// Snapshot cheap.
	DrainInterval time.Duration
	// LaneBufferCap bounds each tracer lane's buffered events between
	// drains. It must be positive: NewLiveSession rejects zero or
	// negative caps instead of silently substituting a default, because
	// the cap is the session's loss boundary — auto-instrumented code
	// traces every function call and can outrun an unconsidered default
	// between two drain ticks, which surfaces as dropped events (counted
	// on tempest_live_lane_overflow_total) and a desynced profile.
	// Callers without a specific sizing should pass
	// DefaultLaneBufferCap explicitly; raise it (or lower DrainInterval,
	// or run adaptive sampling) for fine-grained instrumentation.
	LaneBufferCap int
	// DrainSink, when set, receives every drained batch along with the
	// tracer's live symbol table — the fleet-mode hook: tempest-live
	// wires a collect.Shipper here. Batches arrive in record order,
	// serialised under the session's builder lock, and the slice is not
	// retained by the session after the call. The sink must not block
	// for long; it runs on the drain loop.
	DrainSink func(events []trace.Event, sym *trace.SymTab)
	// CoarseSink, when set, receives the coarse instrumentation buckets
	// (per-function call counts and cumulative time from
	// instrument.FlushCoarse) flushed on every drain tick — the adaptive
	// fleet hook: tempest-live wires a collect.Shipper's ShipCoarse
	// here so functions running in ModeCoarse still contribute ranking
	// signal to the collector. Like DrainSink it runs on the drain loop
	// and must not block for long.
	CoarseSink func(stats []instrument.CoarseStat)
	// Introspect receives the session's self-observability metrics (drain
	// latency, lane buffer high water, overhead fraction) and is handed
	// down to tempd. Nil means the process-wide introspect.Default()
	// registry.
	Introspect *introspect.Registry
	// CritPath, when set, runs a streaming critical-path analyzer beside
	// the profile builder: every drained batch is also folded into an
	// internal/critpath.Analyzer, and CritPathSummary exposes live
	// straggler/serialization snapshots (tempest-live -watch's straggler
	// lines). Costs O(lanes + functions) extra state, no event history.
	CritPath bool
}

// DefaultLaneBufferCap is the lane capacity to pass when no workload-
// specific sizing exists: 65536 events per lane between drains, the
// historical default. LiveConfig.LaneBufferCap must be set explicitly —
// see its doc comment.
const DefaultLaneBufferCap = 1 << 16

// LiveSession profiles real code on the current machine: an explicit
// Enter/Exit instrumentation API (the paper's "non-transparent profiling
// library"), with tempd sampling in the background.
//
// The session is streaming end to end: a background loop periodically
// drains the tracer's lane buffers into an online parser.Builder, so
// the full event history is never held in memory and an in-progress
// profile (Snapshot) is available at any moment — the live hot-spot
// view. Close finishes the builder into the final Profile; the raw
// trace is not retained (use cmd/tempd to record trace files).
type LiveSession struct {
	cfg    LiveConfig
	tracer *trace.Tracer
	daemon *tempd.Daemon

	bmu     sync.Mutex
	builder *parser.Builder
	// crit is the optional streaming critical-path analyzer; it shares
	// the builder's feed (and lock), so both views agree event for event.
	crit *critpath.Analyzer

	ir           *introspect.Registry
	acct         *introspect.Accountant
	drainSeconds *introspect.Distribution
	drainEvents  *introspect.Distribution
	drained      *introspect.Counter

	drainStop chan struct{}
	drainDone chan struct{}

	// ctlMu guards pendingCtl, the latest not-yet-applied control
	// directive from the collector. Latest-wins: directives are full
	// desired sets, so only the newest matters.
	ctlMu      sync.Mutex
	pendingCtl *instrument.Directive // guarded by ctlMu

	// simCPU is non-nil when simulated sensors are in use; Step'ing it
	// happens on the wall clock inside a background goroutine.
	simCPU  *thermal.CPU
	simMu   *sync.Mutex
	simStop chan struct{}
	simDone chan struct{}
	closed  bool
}

// NewLiveSession discovers sensors, starts tempd, and returns a running
// session. Callers must Close it to obtain the profile.
func NewLiveSession(cfg LiveConfig) (*LiveSession, error) {
	if cfg.LaneBufferCap <= 0 {
		return nil, fmt.Errorf("tempest: LiveConfig.LaneBufferCap must be positive, got %d (pass DefaultLaneBufferCap for the standard %d-event cap)", cfg.LaneBufferCap, DefaultLaneBufferCap)
	}
	reg := sensors.NewRegistry(sensors.NewHwmonProvider(cfg.HwmonRoot))
	err := reg.Discover()
	s := &LiveSession{cfg: cfg}
	if errors.Is(err, sensors.ErrNoSensors) {
		if !cfg.AllowSimulatedSensors {
			return nil, fmt.Errorf("tempest: no hwmon sensors found (set AllowSimulatedSensors to fall back): %w", err)
		}
		p := thermal.DefaultOpteronParams()
		cpu, cerr := thermal.NewCPU(p)
		if cerr != nil {
			return nil, cerr
		}
		s.simCPU = cpu
		s.simMu = &sync.Mutex{}
		reg = sensors.NewRegistry(sensors.NewSimProvider(cpu, s.simMu, "sim"))
		if err := reg.Discover(); err != nil {
			return nil, err
		}
	} else if err != nil {
		return nil, err
	}

	tracer, err := trace.NewTracer(trace.Config{
		Clock:         vclock.NewRealClock(),
		NodeID:        cfg.NodeID,
		LaneBufferCap: cfg.LaneBufferCap,
	})
	if err != nil {
		return nil, err
	}
	ir := cfg.Introspect
	if ir == nil {
		ir = introspect.Default()
	}
	daemon, err := tempd.New(tempd.Config{Registry: reg, Tracer: tracer, RateHz: cfg.SampleRateHz, Introspect: ir})
	if err != nil {
		return nil, err
	}
	if err := daemon.Start(); err != nil {
		return nil, err
	}
	s.tracer = tracer
	s.daemon = daemon
	s.ir = ir
	// The accountant tracks what profiling costs the workload: drain
	// passes fold in their own duration; tempd contributes its cumulative
	// sampling time as a polled source.
	s.acct = introspect.NewAccountant()
	s.acct.Sample(daemon.BusyTime)
	s.drainSeconds = ir.Distribution("tempest_live_drain_seconds", "Duration of one drain pass (tracer buffers into the streaming builder).")
	s.drainEvents = ir.Distribution("tempest_live_drain_events", "Events moved per drain pass.")
	s.drained = ir.Counter("tempest_live_drained_events_total", "Events drained into the streaming builder.")
	ir.Func("tempest_live_lane_high_water", "Deepest any tracer lane buffer has been (drop threshold is LaneBufferCap).",
		func() float64 { return float64(tracer.LaneHighWater()) })
	// Lane overflow was PR 4's silent failure mode: a lane filling
	// between drains drops events with only DroppedEvents in the final
	// profile to show for it. Surface it as a live counter instead.
	ir.FuncCounter("tempest_live_lane_overflow_total", "Events dropped because a lane buffer filled between drains (raise LaneBufferCap, lower DrainInterval, or run adaptive sampling).",
		func() float64 { return float64(tracer.DroppedCount()) })
	s.acct.Register(ir, "tempest_live_overhead_fraction", "Instrumentation self-time over workload wall clock (paper §3.4 bounds it below 7%).")
	// The builder shares the tracer's live (lock-protected) symbol
	// table, so drained events always resolve.
	s.builder = parser.NewBuilder(cfg.NodeID, tracer.SymTab(), parser.Options{Unit: cfg.Unit})
	if cfg.CritPath {
		s.crit = critpath.New(critpath.Options{})
	}
	drainEvery := cfg.DrainInterval
	if drainEvery == 0 {
		drainEvery = 500 * time.Millisecond
	}
	s.drainStop = make(chan struct{})
	s.drainDone = make(chan struct{})
	go func() {
		defer close(s.drainDone)
		tick := time.NewTicker(drainEvery)
		defer tick.Stop()
		for {
			select {
			case <-s.drainStop:
				return
			case <-tick.C:
				s.drain()
			}
		}
	}()
	if s.simCPU != nil {
		// Advance the simulated thermal model in real time so the
		// fallback sensors move plausibly.
		s.simStop = make(chan struct{})
		s.simDone = make(chan struct{})
		go func() {
			defer close(s.simDone)
			tick := time.NewTicker(100 * time.Millisecond)
			defer tick.Stop()
			last := time.Now()
			for {
				select {
				case <-s.simStop:
					return
				case now := <-tick.C:
					s.simMu.Lock()
					_ = s.simCPU.Step(now.Sub(last))
					s.simMu.Unlock()
					last = now
				}
			}
		}()
	}
	return s, nil
}

// Lane allocates an instrumentation lane for one goroutine.
func (s *LiveSession) Lane() *trace.Lane { return s.tracer.NewLane() }

// Instrument runs fn bracketed by Enter/Exit on a fresh lane — a one-shot
// convenience for single-goroutine use.
func (s *LiveSession) Instrument(name string, fn func()) error {
	return s.Lane().Instrument(name, fn)
}

// InstrumentFunc is Instrument with the name resolved from the function's
// own symbol via the runtime — the closest Go gets to the transparency of
// -finstrument-functions: callers pass the function, not a string.
// Anonymous closures get their compiler-assigned names (pkg.fn.func1).
func (s *LiveSession) InstrumentFunc(fn func()) error {
	return s.Lane().Instrument(FuncName(fn), fn)
}

// FuncName resolves a function value's linker symbol, trimmed to its
// package-qualified form.
func FuncName(fn func()) string {
	if fn == nil {
		return "<nil>"
	}
	rf := runtime.FuncForPC(reflect.ValueOf(fn).Pointer())
	if rf == nil {
		return "<unknown>"
	}
	name := rf.Name()
	// Trim the directory part of the import path: "a/b/pkg.Fn" → "pkg.Fn".
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// EnableAutoInstrument binds code rewritten by cmd/tempest-instrument to
// this session: every `defer instrument.Trace(...)()` prologue in the
// process starts recording into the session's tracer on the calling
// goroutine's lane. Close detaches automatically. Only one session can
// be attached at a time; enabling replaces any previous binding.
func (s *LiveSession) EnableAutoInstrument() { instrument.Attach(s.tracer) }

// DisableAutoInstrument unbinds auto-instrumented code from this session
// (a no-op if another session holds the binding).
func (s *LiveSession) DisableAutoInstrument() { instrument.Detach(s.tracer) }

// ApplyControl queues a control directive (a full desired
// instrumentation set from the collector's policy engine) to be applied
// at the next drain tick. Applying between drains — never mid-batch —
// keeps each drained batch internally consistent: a function's mode
// can't flip halfway through the events one drain delivers. Directives
// are full sets, so only the latest queued one is kept. Safe from any
// goroutine; tempest-live wires a Shipper's OnControl callback here.
func (s *LiveSession) ApplyControl(d instrument.Directive) {
	s.ctlMu.Lock()
	s.pendingCtl = &d
	s.ctlMu.Unlock()
}

// Instrumentation reports the runtime's current instrumentation policy:
// applied directive revision, default mode, per-function overrides —
// the "active instrumentation set" of the session's snapshot surface.
func (s *LiveSession) Instrumentation() instrument.Status { return instrument.Current() }

// Marker drops an annotation into the trace.
func (s *LiveSession) Marker(name string) { s.tracer.Marker(name) }

// SetSimUtilization drives the fallback thermal model's core activity
// (no-op with real sensors): tests and demos use it to produce heat.
func (s *LiveSession) SetSimUtilization(core int, u float64) error {
	if s.simCPU == nil {
		return nil
	}
	s.simMu.Lock()
	defer s.simMu.Unlock()
	return s.simCPU.SetCoreUtilization(core, u)
}

// TempdBusyFraction reports the daemon's measured CPU share (§4.1 bounds
// it below 1 %).
func (s *LiveSession) TempdBusyFraction() float64 { return s.daemon.BusyFraction() }

// Overhead reports the session's instrumentation cost so far as a
// fraction of wall clock: tempd's cumulative sampling time plus every
// drain pass, over time since the session started. The paper's §3.4
// bounds this below 7 %.
func (s *LiveSession) Overhead() float64 { return s.acct.Fraction() }

// WriteSelfReport prints a one-page self-observability report of the
// running session: sampling health, drain behaviour, overhead, and every
// registered metric — the body of tempest-live's -status mode.
func (s *LiveSession) WriteSelfReport(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "tempest-live self report\n========================\n"); err != nil {
		return err
	}
	fmt.Fprintf(w, "uptime:               %v\n", s.acct.Wall().Round(time.Millisecond))
	fmt.Fprintf(w, "tempd samples:        %d (%d read failures)\n", s.daemon.Samples(), s.daemon.Failures())
	fmt.Fprintf(w, "tempd busy fraction:  %.4f%% (paper bound: <1%%)\n", s.daemon.BusyFraction()*100)
	fmt.Fprintf(w, "overhead fraction:    %.4f%% (paper bound: <7%%)\n", s.Overhead()*100)
	fmt.Fprintf(w, "lane high water:      %d\n", s.tracer.LaneHighWater())
	fmt.Fprintf(w, "lane overflow drops:  %d\n", s.tracer.DroppedCount())
	ist := s.Instrumentation()
	fmt.Fprintf(w, "instrumentation:      default=%s rev=%d overrides=%d registered=%d\n\n",
		ist.Default, ist.Rev, len(ist.Overrides), ist.Registered)
	return s.ir.WriteText(w)
}

// drain moves buffered trace events into the streaming builder and, in
// fleet mode, hands the same batch to the DrainSink. The whole step runs
// under the builder lock: Drain and Add must be atomic with respect to
// concurrent drains, or two drains could interleave and feed the builder
// a lane's events out of order.
func (s *LiveSession) drain() {
	start := time.Now()
	s.ctlMu.Lock()
	ctl := s.pendingCtl
	s.pendingCtl = nil
	s.ctlMu.Unlock()
	s.bmu.Lock()
	ev, sym := s.tracer.Drain()
	_ = s.builder.Add(ev) // a structural error poisons the builder; Close reports it
	if s.crit != nil {
		_ = s.crit.Add(s.cfg.NodeID, sym, ev) // never fails structurally
	}
	if s.cfg.DrainSink != nil {
		s.cfg.DrainSink(ev, sym)
	}
	// The directive lands after this batch ships and before the next
	// records: every batch sees one consistent instrumentation set.
	if ctl != nil {
		instrument.Apply(*ctl)
	}
	if s.cfg.CoarseSink != nil {
		if cs := instrument.FlushCoarse(); len(cs) > 0 {
			s.cfg.CoarseSink(cs)
		}
	}
	s.bmu.Unlock()
	d := time.Since(start)
	s.acct.AddSelf(d)
	s.drainSeconds.Observe(d.Seconds())
	s.drainEvents.Observe(float64(len(ev)))
	s.drained.Add(uint64(len(ev)))
}

// Snapshot returns an in-progress profile of the still-running session —
// the live hot-spot view. Functions currently open are counted as running
// until the latest observed event. The session keeps recording; call
// Close for the final profile.
func (s *LiveSession) Snapshot() (*NodeProfile, error) {
	if s.closed {
		return nil, errors.New("tempest: live session already closed")
	}
	s.drain()
	s.bmu.Lock()
	defer s.bmu.Unlock()
	return s.builder.Snapshot()
}

// OpenFunctions lists the functions currently open on any lane — the
// instantaneous "where is the program right now" of the live view.
func (s *LiveSession) OpenFunctions() []string {
	s.drain()
	s.bmu.Lock()
	defer s.bmu.Unlock()
	return s.builder.OpenFunctions()
}

// CritPathSummary returns a live snapshot of the streaming critical-path
// analysis — who the lanes are waiting for right now — or nil when the
// session was not configured with LiveConfig.CritPath. Non-destructive:
// the analyzer keeps accumulating, like Snapshot.
func (s *LiveSession) CritPathSummary() *critpath.Summary {
	if s.crit == nil {
		return nil
	}
	s.drain()
	s.bmu.Lock()
	defer s.bmu.Unlock()
	return s.crit.Summary()
}

// SensorStats returns streaming summaries of each sensor's whole
// timeline so far, in the session's Unit, from O(1) per-sensor state
// (Med/Mod are NaN).
func (s *LiveSession) SensorStats() []stats.Summary {
	s.drain()
	s.bmu.Lock()
	defer s.bmu.Unlock()
	return s.builder.SensorStats()
}

// Close stops tempd (the destructor's signal in the paper), drains the
// last buffered events and finishes the streaming builder into a
// single-node profile. The profile carries no raw traces: events were
// folded into the builder as the run progressed.
func (s *LiveSession) Close() (*Profile, error) {
	if s.closed {
		return nil, errors.New("tempest: live session already closed")
	}
	s.closed = true
	// Unhook auto-instrumented code first so prologues stop feeding a
	// tracer whose session is going away.
	instrument.Detach(s.tracer)
	if err := s.daemon.Stop(); err != nil {
		return nil, err
	}
	close(s.drainStop)
	<-s.drainDone
	if s.simStop != nil {
		close(s.simStop)
		<-s.simDone
	}
	s.drain()
	// Freeze the overhead number at shutdown, before report generation
	// inflates wall clock.
	overhead := s.acct.Fraction()
	s.bmu.Lock()
	defer s.bmu.Unlock()
	np, err := s.builder.Finish()
	if err != nil {
		return nil, err
	}
	parsed := &parser.Profile{Unit: s.cfg.Unit, Nodes: []parser.NodeProfile{*np}}
	return &Profile{Profile: parsed, Duration: np.Duration, OverheadFraction: overhead}, nil
}
