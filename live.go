package tempest

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"time"

	"tempest/internal/sensors"
	"tempest/internal/tempd"
	"tempest/internal/thermal"
	"tempest/internal/trace"
	"tempest/internal/vclock"
)

// LiveConfig configures real-machine profiling.
type LiveConfig struct {
	// HwmonRoot is the sysfs directory to scan for hardware sensors
	// (default /sys/class/hwmon). If no sensors are found and
	// AllowSimulatedSensors is set, a simulated sensor set backed by the
	// default thermal model is used instead, so the full pipeline still
	// runs on sensorless machines (VMs, containers).
	HwmonRoot             string
	AllowSimulatedSensors bool
	// SampleRateHz is tempd's sampling rate (default 4).
	SampleRateHz float64
	// Unit of reported statistics (default Fahrenheit).
	Unit Unit
	// NodeID labels the produced trace.
	NodeID uint32
}

// LiveSession profiles real code on the current machine: an explicit
// Enter/Exit instrumentation API (the paper's "non-transparent profiling
// library"), with tempd sampling in the background.
type LiveSession struct {
	cfg    LiveConfig
	tracer *trace.Tracer
	daemon *tempd.Daemon
	// simCPU is non-nil when simulated sensors are in use; Step'ing it
	// happens on the wall clock inside a background goroutine.
	simCPU  *thermal.CPU
	simMu   *sync.Mutex
	simStop chan struct{}
	simDone chan struct{}
	closed  bool
}

// NewLiveSession discovers sensors, starts tempd, and returns a running
// session. Callers must Close it to obtain the profile.
func NewLiveSession(cfg LiveConfig) (*LiveSession, error) {
	reg := sensors.NewRegistry(sensors.NewHwmonProvider(cfg.HwmonRoot))
	err := reg.Discover()
	s := &LiveSession{cfg: cfg}
	if errors.Is(err, sensors.ErrNoSensors) {
		if !cfg.AllowSimulatedSensors {
			return nil, fmt.Errorf("tempest: no hwmon sensors found (set AllowSimulatedSensors to fall back): %w", err)
		}
		p := thermal.DefaultOpteronParams()
		cpu, cerr := thermal.NewCPU(p)
		if cerr != nil {
			return nil, cerr
		}
		s.simCPU = cpu
		s.simMu = &sync.Mutex{}
		reg = sensors.NewRegistry(sensors.NewSimProvider(cpu, s.simMu, "sim"))
		if err := reg.Discover(); err != nil {
			return nil, err
		}
	} else if err != nil {
		return nil, err
	}

	tracer, err := trace.NewTracer(trace.Config{Clock: vclock.NewRealClock(), NodeID: cfg.NodeID})
	if err != nil {
		return nil, err
	}
	daemon, err := tempd.New(tempd.Config{Registry: reg, Tracer: tracer, RateHz: cfg.SampleRateHz})
	if err != nil {
		return nil, err
	}
	if err := daemon.Start(); err != nil {
		return nil, err
	}
	s.tracer = tracer
	s.daemon = daemon
	if s.simCPU != nil {
		// Advance the simulated thermal model in real time so the
		// fallback sensors move plausibly.
		s.simStop = make(chan struct{})
		s.simDone = make(chan struct{})
		go func() {
			defer close(s.simDone)
			tick := time.NewTicker(100 * time.Millisecond)
			defer tick.Stop()
			last := time.Now()
			for {
				select {
				case <-s.simStop:
					return
				case now := <-tick.C:
					s.simMu.Lock()
					_ = s.simCPU.Step(now.Sub(last))
					s.simMu.Unlock()
					last = now
				}
			}
		}()
	}
	return s, nil
}

// Lane allocates an instrumentation lane for one goroutine.
func (s *LiveSession) Lane() *trace.Lane { return s.tracer.NewLane() }

// Instrument runs fn bracketed by Enter/Exit on a fresh lane — a one-shot
// convenience for single-goroutine use.
func (s *LiveSession) Instrument(name string, fn func()) error {
	return s.Lane().Instrument(name, fn)
}

// InstrumentFunc is Instrument with the name resolved from the function's
// own symbol via the runtime — the closest Go gets to the transparency of
// -finstrument-functions: callers pass the function, not a string.
// Anonymous closures get their compiler-assigned names (pkg.fn.func1).
func (s *LiveSession) InstrumentFunc(fn func()) error {
	return s.Lane().Instrument(FuncName(fn), fn)
}

// FuncName resolves a function value's linker symbol, trimmed to its
// package-qualified form.
func FuncName(fn func()) string {
	if fn == nil {
		return "<nil>"
	}
	rf := runtime.FuncForPC(reflect.ValueOf(fn).Pointer())
	if rf == nil {
		return "<unknown>"
	}
	name := rf.Name()
	// Trim the directory part of the import path: "a/b/pkg.Fn" → "pkg.Fn".
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// Marker drops an annotation into the trace.
func (s *LiveSession) Marker(name string) { s.tracer.Marker(name) }

// SetSimUtilization drives the fallback thermal model's core activity
// (no-op with real sensors): tests and demos use it to produce heat.
func (s *LiveSession) SetSimUtilization(core int, u float64) error {
	if s.simCPU == nil {
		return nil
	}
	s.simMu.Lock()
	defer s.simMu.Unlock()
	return s.simCPU.SetCoreUtilization(core, u)
}

// TempdBusyFraction reports the daemon's measured CPU share (§4.1 bounds
// it below 1 %).
func (s *LiveSession) TempdBusyFraction() float64 { return s.daemon.BusyFraction() }

// Close stops tempd (the destructor's signal in the paper) and parses the
// collected trace into a single-node profile.
func (s *LiveSession) Close() (*Profile, error) {
	if s.closed {
		return nil, errors.New("tempest: live session already closed")
	}
	s.closed = true
	if err := s.daemon.Stop(); err != nil {
		return nil, err
	}
	if s.simStop != nil {
		close(s.simStop)
		<-s.simDone
	}
	tr := s.tracer.Finish()
	return ParseTraces([]*trace.Trace{tr}, s.cfg.Unit)
}
