// Package tempest is the public API of the Tempest reproduction: a
// middle-weight thermal profiler for sequential and parallel code, after
// Cameron, Pyla and Varadarajan, "Tempest: a portable tool to identify
// hot spots in parallel code" (ICPP 2007).
//
// Two entry points cover the paper's two deployment modes:
//
//   - Session runs an MPI-style workload on a simulated cluster (RC
//     thermal models + virtual time) and returns the merged thermal
//     profile — the reproducible testbed every experiment in
//     EXPERIMENTS.md uses.
//   - LiveSession instruments real Go code on the current machine, with
//     the tempd sampling daemon reading real hwmon sensors when present
//     (and the simulated sensor set otherwise).
//
// A quick start:
//
//	s, _ := tempest.NewSession(tempest.Config{Nodes: 4})
//	profile, _ := s.Run(func(rc *tempest.Rank) error {
//	    return rc.Instrument("hot_loop", tempest.UtilBurn, 30*time.Second, nil)
//	})
//	profile.WriteReport(os.Stdout)
package tempest

import (
	"errors"
	"fmt"
	"io"
	"time"

	"tempest/internal/cluster"
	"tempest/internal/hotspot"
	"tempest/internal/parser"
	"tempest/internal/report"
	"tempest/internal/thermal"
	"tempest/internal/trace"
)

// Rank is the per-rank execution context workload bodies receive.
type Rank = cluster.Rank

// Throttle is a per-function what-if slowdown for optimisation studies.
type Throttle = cluster.Throttle

// Segment re-exports the activity timeline element.
type Segment = cluster.Segment

// Utilisation levels for Compute/Instrument calls.
const (
	UtilIdle    = cluster.UtilIdle
	UtilComm    = cluster.UtilComm
	UtilMemory  = cluster.UtilMemory
	UtilCompute = cluster.UtilCompute
	UtilBurn    = cluster.UtilBurn
)

// Unit selects report temperature units.
type Unit = parser.Unit

// NodeProfile re-exports one node's parsed (or in-progress) profile —
// the type LiveSession.Snapshot returns.
type NodeProfile = parser.NodeProfile

// Units.
const (
	Fahrenheit = parser.Fahrenheit
	Celsius    = parser.Celsius
)

// Config describes a simulated profiling session.
type Config struct {
	// Nodes is the cluster size (default 1).
	Nodes int
	// RanksPerNode is the MPI ranks placed on each node (default 1).
	RanksPerNode int
	// Seed fixes all stochastic elements; runs with equal seeds are
	// byte-identical.
	Seed int64
	// Heterogeneous perturbs each node's thermal build (the paper's
	// node-to-node variance). Default false: identical nodes.
	Heterogeneous bool
	// SampleRateHz is tempd's sampling rate (default 4, the paper's).
	SampleRateHz float64
	// Unit of the reported statistics (default Fahrenheit, the paper's).
	Unit Unit
	// ThermalParams overrides the node thermal build (default: the
	// dual-socket Opteron model).
	ThermalParams *thermal.Params
	// Cost overrides the communication cost model.
	Cost *cluster.CostModel
}

// Session is a configured simulated profiling run. Create one per Run.
type Session struct {
	cfg     Config
	cluster *cluster.Cluster
}

// NewSession validates the configuration and builds the simulated cluster.
func NewSession(cfg Config) (*Session, error) {
	if cfg.Nodes == 0 {
		cfg.Nodes = 1
	}
	if cfg.RanksPerNode == 0 {
		cfg.RanksPerNode = 1
	}
	cc := cluster.Config{
		Nodes:         cfg.Nodes,
		RanksPerNode:  cfg.RanksPerNode,
		Seed:          cfg.Seed,
		Heterogeneous: cfg.Heterogeneous,
		SampleRateHz:  cfg.SampleRateHz,
	}
	if cfg.ThermalParams != nil {
		cc.Params = *cfg.ThermalParams
	}
	if cfg.Cost != nil {
		cc.Cost = *cfg.Cost
	}
	cl, err := cluster.New(cc)
	if err != nil {
		return nil, err
	}
	return &Session{cfg: cfg, cluster: cl}, nil
}

// Run executes body once per rank, performs the thermal post-pass, parses
// the traces and returns the profile. A session is single-use.
func (s *Session) Run(body func(rc *Rank) error) (*Profile, error) {
	if s.cluster == nil {
		return nil, errors.New("tempest: session already consumed")
	}
	cl := s.cluster
	s.cluster = nil
	res, err := cl.Run(body)
	if err != nil {
		return nil, err
	}
	parsed, err := parser.ParseAll(res.Traces, parser.Options{Unit: s.cfg.Unit})
	if err != nil {
		return nil, err
	}
	return &Profile{Profile: parsed, Traces: res.Traces, Duration: res.Duration}, nil
}

// Profile is a parsed thermal profile plus the raw traces it came from.
type Profile struct {
	*parser.Profile
	// Traces are the raw per-node traces (serialisable with WriteTrace).
	Traces []*trace.Trace
	// Duration is the workload's virtual makespan.
	Duration time.Duration
	// OverheadFraction is the measured instrumentation cost as a fraction
	// of workload wall clock (§3.4 bounds it below 7 %). Zero when the
	// producing pipeline did not account overhead (offline parsing).
	OverheadFraction float64
}

// WriteReport prints the paper-format per-function listing for every node.
// Profiles that carried overhead accounting append a one-line footer with
// the measured instrumentation cost.
func (p *Profile) WriteReport(w io.Writer) error {
	if err := report.WriteProfile(w, p.Profile, report.Options{OnlySignificant: true, Labels: true}); err != nil {
		return err
	}
	if p.OverheadFraction > 0 {
		_, err := fmt.Fprintf(w, "\ninstrumentation overhead: %.2f%% of wall clock\n", p.OverheadFraction*100)
		return err
	}
	return nil
}

// WriteCSV emits every temperature sample as CSV (the figures' raw data).
func (p *Profile) WriteCSV(w io.Writer) error {
	return report.WriteSeriesCSV(w, p.Profile)
}

// WriteJSON emits the full profile as JSON.
func (p *Profile) WriteJSON(w io.Writer) error {
	return report.WriteJSON(w, p.Profile)
}

// Plot renders ASCII temperature timelines, one stacked chart per node
// (the layout of the paper's Figures 3–4).
func (p *Profile) Plot(w io.Writer, sensor int) error {
	return report.PlotCluster(w, p.Profile, report.PlotOptions{Sensor: sensor, FunctionBand: true})
}

// HotFunctions ranks functions by thermal contribution on the sensor.
func (p *Profile) HotFunctions(sensor int) ([]hotspot.FunctionHeat, error) {
	return hotspot.HotFunctions(p.Profile, sensor)
}

// HotNodes ranks nodes by average temperature on the sensor.
func (p *Profile) HotNodes(sensor int) ([]hotspot.NodeHeat, error) {
	return hotspot.HotNodes(p.Profile, sensor)
}

// Compare reports the effect of an optimisation: p is the baseline,
// after the modified run.
func (p *Profile) Compare(after *Profile, sensor int) (*hotspot.Comparison, error) {
	return hotspot.Compare(p.Profile, after.Profile, sensor)
}

// WriteTrace serialises node n's raw trace in the TPST binary format.
func (p *Profile) WriteTrace(w io.Writer, n int) error {
	if n < 0 || n >= len(p.Traces) {
		return fmt.Errorf("tempest: node %d out of range [0,%d)", n, len(p.Traces))
	}
	return p.Traces[n].Write(w)
}

// ReadTrace parses a TPST trace stream (the inverse of WriteTrace).
func ReadTrace(r io.Reader) (*trace.Trace, error) { return trace.ReadTrace(r) }

// ParseTraces turns raw traces (e.g. loaded from files) into a Profile.
func ParseTraces(traces []*trace.Trace, unit Unit) (*Profile, error) {
	parsed, err := parser.ParseAll(traces, parser.Options{Unit: unit})
	if err != nil {
		return nil, err
	}
	var dur time.Duration
	for i := range parsed.Nodes {
		if parsed.Nodes[i].Duration > dur {
			dur = parsed.Nodes[i].Duration
		}
	}
	return &Profile{Profile: parsed, Traces: traces, Duration: dur}, nil
}

// DefaultThermalParams returns the paper-calibrated dual-socket Opteron
// node model, for callers who want to tweak it.
func DefaultThermalParams() thermal.Params { return thermal.DefaultOpteronParams() }
