GO ?= go

.PHONY: all build vet test race chaos bench clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages with real concurrency: the MPI
# transports, the sampling daemon, the resilient sensor wrappers and the
# multi-lane tracer.
race:
	$(GO) test -race ./internal/mpi/... ./internal/tempd/... ./internal/sensors/... ./internal/trace/...

# Seeded end-to-end fault-injection scenario (sensor dropout + torn trace
# tail + flaky TCP link), plus the per-package chaos tests.
chaos:
	$(GO) test -run TestChaos -v .
	$(GO) test -run 'TestTCPChaos|TestTCPRank' -v ./internal/mpi/
	$(GO) test -run 'TestSegmentedSalvage|TestSegmentedChecksum' -v ./internal/trace/

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

clean:
	$(GO) clean ./...
