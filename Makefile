GO ?= go

.PHONY: all build vet test race chaos bench bench-smoke fuzz-smoke collectd-smoke clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages with real concurrency: the MPI
# transports, the sampling daemon, the resilient sensor wrappers, the
# multi-lane tracer and the parallel parser worker pool.
race:
	$(GO) test -race ./internal/mpi/... ./internal/tempd/... ./internal/sensors/... ./internal/trace/... ./internal/parser/... ./internal/collect/...

# Seeded end-to-end fault-injection scenario (sensor dropout + torn trace
# tail + flaky TCP link), plus the per-package chaos tests.
chaos:
	$(GO) test -run TestChaos -v .
	$(GO) test -run 'TestTCPChaos|TestTCPRank' -v ./internal/mpi/
	$(GO) test -run 'TestSegmentedSalvage|TestSegmentedChecksum' -v ./internal/trace/

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# One-iteration pass over the streaming-pipeline benchmarks: compiles and
# executes every benchmark body (batch vs stream allocation profile,
# sequential vs parallel ParseAll) without waiting for stable timings —
# the CI guard that the pipeline still runs end to end at 1M events.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Pipeline|ParseAll' -benchtime=1x -benchmem ./internal/parser/

# Run every fuzz target once over its checked-in seed corpus (no open-
# ended fuzzing): codec, streaming scanner, and friends.
fuzz-smoke:
	$(GO) test -run 'Fuzz' ./internal/trace/

# End-to-end fleet-collector smoke: start tempest-collectd on ephemeral
# ports, ship the canned trace, and diff /api/hotspots against its
# golden (pass UPDATE_GOLDEN=1 to regenerate after intentional changes).
collectd-smoke:
	UPDATE_GOLDEN=$(UPDATE_GOLDEN) ./scripts/collectd_smoke.sh

clean:
	$(GO) clean ./...
