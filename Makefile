GO ?= go

.PHONY: all build vet tempest-vet test race chaos bench bench-instrument bench-critpath bench-analysis bench-smoke fuzz-smoke collectd-smoke clean

all: vet tempest-vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific invariant checks (internal/analysis passes): Enter/Exit
# pairing, wall-clock bans in virtual-time packages, lock annotations,
# wire-frame seq/crc discipline, NaN comparisons, plus the program-wide
# passes — mutex acquisition-order cycles (lockorder) and goroutines with
# no termination path (goroleak). Must exit 0.
tempest-vet:
	$(GO) run ./cmd/tempest-vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the whole module. Everything here runs real
# concurrency somewhere (tracer lanes, tempd, transports, parser pool,
# collector, auto-instrument hooks), so nothing is hand-picked.
race:
	$(GO) test -race ./...

# Seeded end-to-end fault-injection scenario (sensor dropout + torn trace
# tail + flaky TCP link), plus the per-package chaos tests, the
# durable-store crash drill (SIGKILL a real collectd mid-ingest, restart,
# assert nothing acked was lost), and the adaptive control-loop drills
# (seeded link chaos on the control channel; closed-loop promotion at an
# event density that overflows the lane buffer under full detail).
chaos:
	$(GO) test -run 'TestChaos|TestAdaptiveSampling' -v .
	$(GO) test -run TestChaos -v ./internal/collect/
	$(GO) test -run 'TestTCPChaos|TestTCPRank' -v ./internal/mpi/
	$(GO) test -run 'TestSegmentedSalvage|TestSegmentedChecksum' -v ./internal/trace/
	$(GO) test -run 'TestDaemonStoreChaosSIGKILL' -v ./cmd/tempest-collectd/

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# Per-call instrumentation cost in each sampling mode, written to
# BENCH_instrument.json (the committed baseline). Re-run and commit when
# touching instrument.Trace's fast paths; the inert cost must not move.
bench-instrument:
	./scripts/bench/instrument_bench.sh

# Critical-path analyzer throughput over a 1M-event stream (with and
# without timeline tracks), written to BENCH_critpath.json (the committed
# baseline). Re-run and commit when touching internal/critpath's sweep.
bench-critpath:
	./scripts/bench/critpath_bench.sh

# Interprocedural analysis cost over this repository (loader vs
# callgraph+costmodel), written to BENCH_analysis.json (the committed
# baseline). Re-run and commit when touching internal/analysis/callgraph
# or internal/analysis/costmodel.
bench-analysis:
	./scripts/bench/analysis_bench.sh

# One-iteration pass over the streaming-pipeline benchmarks: compiles and
# executes every benchmark body (batch vs stream allocation profile,
# sequential vs parallel ParseAll, critical-path sweep) without waiting
# for stable timings — the CI guard that the pipeline still runs end to
# end at 1M events.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Pipeline|ParseAll' -benchtime=1x -benchmem ./internal/parser/
	$(GO) test -run '^$$' -bench 'CritPath' -benchtime=1x -benchmem ./internal/critpath/

# Run every fuzz target once over its checked-in seed corpus (no open-
# ended fuzzing): codec, streaming scanner, the collector's ship-mode
# frame decoder, the durable store's crash/tamper recovery, and the
# critical-path analyzer (never panics; stream==batch; agrees with the
# Builder's stack discipline on accepted streams).
fuzz-smoke:
	$(GO) test -run 'Fuzz' ./internal/trace/ ./internal/collect/ ./internal/store/ ./internal/critpath/

# End-to-end fleet-collector smoke: start tempest-collectd on ephemeral
# ports, ship the canned trace, and diff /api/hotspots against its
# golden (pass UPDATE_GOLDEN=1 to regenerate after intentional changes).
collectd-smoke:
	UPDATE_GOLDEN=$(UPDATE_GOLDEN) ./scripts/collectd_smoke.sh

clean:
	$(GO) clean ./...
