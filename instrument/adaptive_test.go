package instrument

import (
	"fmt"
	"sync"
	"testing"

	"tempest/internal/trace"
	"tempest/internal/vclock"
)

// resetPolicy restores the package's process-wide policy state between
// tests: detail default, no overrides, empty buckets.
func resetPolicy(t *testing.T) {
	t.Helper()
	restore := func() {
		Detach(nil)
		Apply(Directive{Default: ModeDetail})
		FlushCoarse()
	}
	restore()
	t.Cleanup(restore)
}

func TestModeOffRecordsNothing(t *testing.T) {
	resetPolicy(t)
	tr := newTracer(t)
	slots := Register("pkg/off", []string{"pkg.Off"})
	Attach(tr)
	defer Detach(tr)
	if !SetFunctionMode("pkg.Off", ModeOff) {
		t.Fatal("SetFunctionMode: name not registered")
	}
	Trace(slots[0])()
	events, _ := tr.Snapshot()
	for _, e := range events {
		if e.Kind == trace.KindEnter || e.Kind == trace.KindExit {
			t.Fatalf("ModeOff recorded event %v", e)
		}
	}
	if rep := FlushCoarse(); len(rep) != 0 {
		t.Fatalf("ModeOff filled coarse bucket: %v", rep)
	}
}

func TestModeCoarseBucketsWithoutEvents(t *testing.T) {
	resetPolicy(t)
	clk := vclock.NewVirtualClock()
	tr, err := trace.NewTracer(trace.Config{Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	slots := Register("pkg/coarse", []string{"pkg.CoarseA", "pkg.CoarseB"})
	Attach(tr)
	defer Detach(tr)
	SetDefaultMode(ModeCoarse)

	for i := 0; i < 3; i++ {
		exit := Trace(slots[0])
		clk.Advance(1000) // 1µs inside the function
		exit()
	}
	Trace(slots[1])()

	events, _ := tr.Snapshot()
	for _, e := range events {
		if e.Kind == trace.KindEnter || e.Kind == trace.KindExit {
			t.Fatalf("ModeCoarse recorded event %v", e)
		}
	}
	rep := FlushCoarse()
	if len(rep) != 2 {
		t.Fatalf("coarse report has %d entries, want 2: %v", len(rep), rep)
	}
	if rep[0].Name != "pkg.CoarseA" || rep[0].Calls != 3 || rep[0].Nanos != 3000 {
		t.Fatalf("bucket A = %+v, want 3 calls / 3000 ns", rep[0])
	}
	if rep[1].Name != "pkg.CoarseB" || rep[1].Calls != 1 {
		t.Fatalf("bucket B = %+v, want 1 call", rep[1])
	}
	// Flush drains: a second flush is empty.
	if rep := FlushCoarse(); len(rep) != 0 {
		t.Fatalf("second flush not empty: %v", rep)
	}
}

func TestModeDetailAlsoBuckets(t *testing.T) {
	resetPolicy(t)
	tr := newTracer(t)
	slots := Register("pkg/both", []string{"pkg.Both"})
	Attach(tr)
	defer Detach(tr)
	Trace(slots[0])()
	events, _ := tr.Snapshot()
	n := 0
	for _, e := range events {
		if e.Kind == trace.KindEnter || e.Kind == trace.KindExit {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("detail mode recorded %d events, want 2", n)
	}
	rep := FlushCoarse()
	if len(rep) != 1 || rep[0].Calls != 1 {
		t.Fatalf("detail mode bucket = %v, want one call for pkg.Both", rep)
	}
}

func TestApplyDirectiveFullSetSemantics(t *testing.T) {
	resetPolicy(t)
	Register("pkg/dir", []string{"pkg.DirA", "pkg.DirB", "pkg.DirC"})

	if !Apply(Directive{Rev: 5, Default: ModeCoarse, Funcs: []FuncMode{
		{Name: "pkg.DirA", Mode: ModeDetail},
		{Name: "pkg.DirB", Mode: ModeOff},
		{Name: "pkg.NotRegistered", Mode: ModeDetail},
	}}) {
		t.Fatal("rev 5 not applied")
	}
	s := Current()
	if s.Rev != 5 || s.Default != ModeCoarse {
		t.Fatalf("status = %+v, want rev 5 default coarse", s)
	}
	got := map[string]Mode{}
	for _, f := range s.Overrides {
		got[f.Name] = f.Mode
	}
	if got["pkg.DirA"] != ModeDetail || got["pkg.DirB"] != ModeOff {
		t.Fatalf("overrides = %v", s.Overrides)
	}
	if _, ok := got["pkg.DirC"]; ok {
		t.Fatal("pkg.DirC should inherit the default, not carry an override")
	}

	// A stale (lower or equal) revision must not roll the policy back.
	if Apply(Directive{Rev: 4, Default: ModeDetail}) {
		t.Fatal("stale rev 4 applied over rev 5")
	}
	if Apply(Directive{Rev: 5, Default: ModeDetail}) {
		t.Fatal("duplicate rev 5 applied")
	}
	if Current().Default != ModeCoarse {
		t.Fatal("stale directive changed the default")
	}

	// The next revision replaces the full set: old overrides clear.
	if !Apply(Directive{Rev: 6, Default: ModeDetail}) {
		t.Fatal("rev 6 not applied")
	}
	s = Current()
	if s.Default != ModeDetail || len(s.Overrides) != 0 {
		t.Fatalf("after rev 6 status = %+v, want clean detail default", s)
	}
}

func TestApplyRevZeroAlwaysApplies(t *testing.T) {
	resetPolicy(t)
	Apply(Directive{Rev: 9, Default: ModeCoarse})
	if !Apply(Directive{Default: ModeDetail}) {
		t.Fatal("rev 0 (manual) directive skipped")
	}
	if Current().Default != ModeDetail {
		t.Fatal("rev 0 directive had no effect")
	}
}

// TestToggleRacesTrace drives concurrent Attach/Detach, per-function
// toggles and full directive swaps against a storm of active Trace
// calls — the satellite's -race coverage. Correctness here is "no race,
// no panic, exits stay callable"; the event stream is deliberately torn.
func TestToggleRacesTrace(t *testing.T) {
	resetPolicy(t)
	fnames := make([]string, 8)
	for i := range fnames {
		fnames[i] = fmt.Sprintf("pkg.Race%d", i)
	}
	slots := Register("pkg/race", fnames)

	tracers := []*trace.Tracer{newTracer(t), newTracer(t)}
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Tracer churn: attach one of two tracers, detach, repeat.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			Attach(tracers[i%2])
			if i%3 == 0 {
				Detach(tracers[i%2])
			}
		}
	}()
	// Policy churn: per-function toggles and full directive swaps.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 4 {
			case 0:
				SetFunctionMode(fnames[i%len(fnames)], Mode(i%3))
			case 1:
				SetDefaultMode(Mode(i % 3))
			case 2:
				Apply(Directive{Default: ModeCoarse, Funcs: []FuncMode{{Name: fnames[i%len(fnames)], Mode: ModeDetail}}})
			case 3:
				ClearFunctionMode(fnames[i%len(fnames)])
			}
			if i%16 == 0 {
				FlushCoarse()
			}
			if i%32 == 0 {
				Current()
			}
		}
	}()
	// Late registration racing everything else.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			Register("pkg/race/late", []string{fmt.Sprintf("pkg.RaceLate%d", i%4)})
		}
	}()
	// The workload: Trace storms from several goroutines.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				exit := Trace(slots[(w+i)%len(slots)])
				inner := Trace(slots[i%len(slots)])
				inner()
				exit()
			}
		}(w)
	}

	for i := 0; i < 2000; i++ {
		Trace(slots[i%len(slots)])()
	}
	close(stop)
	wg.Wait()
	Detach(nil)
}

func TestRegisterDedupsNames(t *testing.T) {
	resetPolicy(t)
	a := Register("pkg/dup", []string{"pkg.Dup"})
	b := Register("pkg/dup", []string{"pkg.Dup"})
	if a[0] != b[0] {
		t.Fatalf("re-registering returned slot %d then %d", a[0], b[0])
	}
}
