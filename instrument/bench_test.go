package instrument

import (
	"testing"

	"tempest/internal/trace"
	"tempest/internal/vclock"
)

// The three costs the adaptive control plane trades between, measured
// per Trace call. scripts/bench/instrument.sh runs these and commits
// the result as BENCH_instrument.json; the inert number is the one the
// refactor must not regress (it is every uninstrumented binary's tax).

func benchTracer(b *testing.B) *trace.Tracer {
	b.Helper()
	tr, err := trace.NewTracer(trace.Config{Clock: vclock.NewRealClock(), LaneBufferCap: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func BenchmarkTraceInert(b *testing.B) {
	Detach(nil)
	slots := Register("bench/inert", []string{"bench.Inert"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Trace(slots[0])()
	}
}

func BenchmarkTraceDetail(b *testing.B) {
	tr := benchTracer(b)
	slots := Register("bench/detail", []string{"bench.Detail"})
	Apply(Directive{Default: ModeDetail})
	Attach(tr)
	defer Detach(tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Trace(slots[0])()
		if i%32768 == 0 {
			b.StopTimer()
			tr.Drain()
			b.StartTimer()
		}
	}
	b.StopTimer()
	FlushCoarse()
}

func BenchmarkTraceCoarse(b *testing.B) {
	tr := benchTracer(b)
	slots := Register("bench/coarse", []string{"bench.Coarse"})
	Apply(Directive{Default: ModeCoarse})
	Attach(tr)
	defer func() {
		Detach(tr)
		Apply(Directive{Default: ModeDetail})
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Trace(slots[0])()
	}
	b.StopTimer()
	FlushCoarse()
}

func BenchmarkTraceOff(b *testing.B) {
	tr := benchTracer(b)
	slots := Register("bench/off", []string{"bench.Off"})
	Apply(Directive{Default: ModeOff})
	Attach(tr)
	defer func() {
		Detach(tr)
		Apply(Directive{Default: ModeDetail})
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Trace(slots[0])()
	}
}
