// Package instrument is the runtime half of Tempest's automatic
// source-level instrumentation — the Go stand-in for the paper's
// `gcc -finstrument-functions` entry/exit hooks.
//
// cmd/tempest-instrument rewrites a package so that every selected
// function begins with
//
//	defer instrument.Trace(tempestInstrSlots[i])()
//
// next to a generated registration block
//
//	var tempestInstrSlots = instrument.Register("pkg/path", []string{...})
//
// The package is inert until a profiling session attaches a tracer
// (LiveSession.EnableAutoInstrument, or Attach directly): before that,
// Trace is a single atomic load and a no-op closure, so instrumented
// binaries run unprofiled at negligible cost — the same property the
// paper gets from shipping separate instrumented builds, without the
// separate build.
//
// While attached, every function runs in one of three modes:
//
//   - ModeDetail records full enter/exit events on the calling
//     goroutine's lane (the paper's fine-grained path) and maintains
//     the coarse call/time bucket alongside.
//   - ModeCoarse skips the event stream entirely and only accumulates
//     a gprof-style bucket (call count + cumulative wall time) in two
//     atomics — cheap enough to leave on everywhere, and still enough
//     signal for a collector to rank candidates.
//   - ModeOff records nothing.
//
// Modes are set per function (SetFunctionMode) or as a process default
// (SetDefaultMode), and a full desired set arrives as a Directive from
// the fleet control plane (Apply). Toggling is lock-free on the Trace
// path: each slot carries one atomic mode word, so a collector can
// flip instrumentation density on a live, saturated workload.
//
// Lanes are allocated per goroutine (keyed by goroutine id), matching
// the tracer's one-lane-per-worker model, so instrumented code may be
// freely concurrent.
package instrument

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"tempest/internal/trace"
)

// Mode selects how much an instrumented function records while a tracer
// is attached.
type Mode uint8

const (
	// ModeDetail records enter/exit events (full profile resolution)
	// and maintains the coarse bucket so ranking signals stay uniform
	// across modes.
	ModeDetail Mode = iota
	// ModeCoarse accumulates only a call-count/cumulative-time bucket.
	ModeCoarse
	// ModeOff records nothing for the function.
	ModeOff
)

// String renders the mode the way directives and status reports spell it.
func (m Mode) String() string {
	switch m {
	case ModeDetail:
		return "detail"
	case ModeCoarse:
		return "coarse"
	case ModeOff:
		return "off"
	}
	return "invalid"
}

// slotState is the per-function runtime cell. The mode word and bucket
// fields are atomics so Trace never takes a lock; everything else is
// immutable after Register.
type slotState struct {
	name string
	// mode is 0 when the slot inherits the process default, otherwise
	// Mode+1. One atomic load on the hot path resolves it.
	mode atomic.Uint32
	// Coarse bucket: calls and cumulative nanoseconds spent in the
	// function. Maintained in ModeCoarse and ModeDetail, flushed (and
	// zeroed) by FlushCoarse.
	calls atomic.Uint64
	nanos atomic.Int64
}

var (
	regMu sync.Mutex
	// names is the global slot table: Register appends, Attach interns
	// into the tracer's symbol table.
	names []string // guarded by regMu
	// slotIndex resolves a function name to its slot for directives.
	slotIndex = map[string]int{} // guarded by regMu
	// slots is the copy-on-write per-slot state table. Register swaps in
	// a grown copy; Trace reads it with one atomic load. Existing
	// *slotState cells are shared between copies, so mode words and
	// buckets survive growth.
	slots atomic.Pointer[[]*slotState]
	// defaultMode holds the Mode applied to slots without an override.
	defaultMode atomic.Uint32
	// appliedRev is the revision of the last Apply'd directive.
	appliedRev atomic.Uint64
	// active is the currently attached binding, nil when disabled.
	active atomic.Pointer[binding]
)

func init() {
	empty := []*slotState{}
	slots.Store(&empty)
}

// binding connects the slot table to one tracer.
type binding struct {
	tracer *trace.Tracer
	mu     sync.Mutex
	fids   []uint32 // guarded by mu; slot → tracer function id
	lanes  sync.Map // goroutine id (uint64) → *trace.Lane
}

// Register interns a package's instrumented function names and returns
// their slot indices. It is called from generated init-time code and is
// safe before, during and after Attach. Re-registering a name returns
// the existing slot.
func Register(pkgPath string, fnNames []string) []int {
	regMu.Lock()
	defer regMu.Unlock()
	old := *slots.Load()
	grown := make([]*slotState, len(old), len(old)+len(fnNames))
	copy(grown, old)
	out := make([]int, len(fnNames))
	for i, fn := range fnNames {
		if s, ok := slotIndex[fn]; ok {
			out[i] = s
			continue
		}
		slot := len(names)
		names = append(names, fn)
		slotIndex[fn] = slot
		grown = append(grown, &slotState{name: fn})
		out[i] = slot
	}
	slots.Store(&grown)
	if b := active.Load(); b != nil {
		b.extend(names)
	}
	return out
}

// Attach enables auto-instrumentation against tr. Any previously
// attached tracer is replaced. Passing nil detaches. Modes and coarse
// buckets are process state, not binding state: they survive
// detach/re-attach so a control plane's policy outlives a session
// bounce.
func Attach(tr *trace.Tracer) {
	if tr == nil {
		active.Store(nil)
		return
	}
	b := &binding{tracer: tr}
	regMu.Lock()
	b.extend(names)
	regMu.Unlock()
	active.Store(b)
}

// Detach disables auto-instrumentation if tr is the attached tracer
// (nil detaches unconditionally). Sessions call this on Close so a dying
// session never strands hooks pointing at a stopped tracer.
func Detach(tr *trace.Tracer) {
	b := active.Load()
	if b == nil {
		return
	}
	if tr == nil || b.tracer == tr {
		active.CompareAndSwap(b, nil)
	}
}

// Attached reports whether any tracer is currently bound.
func Attached() bool { return active.Load() != nil }

// extend interns every known name, growing the slot→fid table.
func (b *binding) extend(all []string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := len(b.fids); i < len(all); i++ {
		b.fids = append(b.fids, b.tracer.RegisterFunc(all[i]))
	}
}

// noop is returned when instrumentation is detached.
var noop = func() {}

// Trace is the injected prologue hook: it records function entry on the
// calling goroutine's lane and returns the matching exit hook for defer.
// With no tracer attached it costs one atomic load. With a tracer
// attached, the slot's mode decides the cost: ModeOff is three atomic
// loads and the shared no-op, ModeCoarse is a clock read plus two
// atomic adds on exit, ModeDetail is the full lane enter/exit pair.
func Trace(slot int) func() {
	b := active.Load()
	if b == nil {
		return noop
	}
	tab := *slots.Load()
	if slot < 0 || slot >= len(tab) {
		return noop
	}
	st := tab[slot]
	m := st.mode.Load()
	var mode Mode
	if m == 0 {
		mode = Mode(defaultMode.Load())
	} else {
		mode = Mode(m - 1)
	}
	switch mode {
	case ModeOff:
		return noop
	case ModeCoarse:
		start := b.tracer.Now()
		return func() {
			st.calls.Add(1)
			st.nanos.Add(int64(b.tracer.Now() - start))
		}
	}
	// ModeDetail (and any unknown mode value, defensively).
	b.mu.Lock()
	if slot >= len(b.fids) {
		b.mu.Unlock()
		return noop
	}
	fid := b.fids[slot]
	b.mu.Unlock()
	lane := b.lane(goroutineID())
	start := b.tracer.Now()
	// Balanced by construction: the returned closure is the Exit and
	// callers defer it.
	lane.Enter(fid) //tempest:ignore enterexit
	return func() {
		_ = lane.Exit(fid)
		st.calls.Add(1)
		st.nanos.Add(int64(b.tracer.Now() - start))
	}
}

// SetDefaultMode sets the mode for every instrumented function without
// an explicit override.
func SetDefaultMode(m Mode) { defaultMode.Store(uint32(m)) }

// DefaultMode reports the current process-wide default mode.
func DefaultMode() Mode { return Mode(defaultMode.Load()) }

// SetFunctionMode overrides one function's mode by name. It reports
// whether the name is registered; unknown names are a no-op (the
// function may live in a package this binary doesn't link).
func SetFunctionMode(name string, m Mode) bool {
	regMu.Lock()
	slot, ok := slotIndex[name]
	regMu.Unlock()
	if !ok {
		return false
	}
	tab := *slots.Load()
	tab[slot].mode.Store(uint32(m) + 1)
	return true
}

// ClearFunctionMode removes a function's override so it inherits the
// default again. It reports whether the name is registered.
func ClearFunctionMode(name string) bool {
	regMu.Lock()
	slot, ok := slotIndex[name]
	regMu.Unlock()
	if !ok {
		return false
	}
	tab := *slots.Load()
	tab[slot].mode.Store(0)
	return true
}

// FuncMode is one function's entry in a Directive or Status.
type FuncMode struct {
	Name string `json:"name"`
	Mode Mode   `json:"mode"`
}

// Directive is a full desired instrumentation set, as issued by a
// collector's policy engine. Rev orders directives: the control plane
// re-sends full sets (never deltas) so applying the latest revision is
// always correct regardless of loss, duplication or reordering on the
// way here.
type Directive struct {
	// Rev is the policy revision, monotonically increasing per node.
	Rev uint64 `json:"rev"`
	// Default is the mode for every function not listed in Funcs.
	Default Mode `json:"default"`
	// Funcs lists explicit per-function overrides by symbol name.
	Funcs []FuncMode `json:"funcs,omitempty"`
}

// Apply installs a full desired set: the default mode is replaced, every
// listed function gets an explicit override, and every other override is
// cleared. Unknown names are ignored. Revisions at or below the last
// applied revision are skipped (stale directive), except Rev 0 which is
// always applied (local/manual control without a revision sequence).
// It reports whether the directive was applied.
func Apply(d Directive) bool {
	if d.Rev != 0 {
		for {
			last := appliedRev.Load()
			if d.Rev <= last {
				return false
			}
			if appliedRev.CompareAndSwap(last, d.Rev) {
				break
			}
		}
	}
	want := make(map[string]Mode, len(d.Funcs))
	for _, f := range d.Funcs {
		want[f.Name] = f.Mode
	}
	defaultMode.Store(uint32(d.Default))
	tab := *slots.Load()
	for _, st := range tab {
		if m, ok := want[st.name]; ok {
			st.mode.Store(uint32(m) + 1)
		} else {
			st.mode.Store(0)
		}
	}
	return true
}

// AppliedRev reports the revision of the last applied directive.
func AppliedRev() uint64 { return appliedRev.Load() }

// CoarseStat is one flushed coarse bucket: how often a function ran and
// how long it spent, since the previous flush.
type CoarseStat struct {
	Name  string `json:"name"`
	Calls uint64 `json:"calls"`
	Nanos int64  `json:"nanos"`
}

// FlushCoarse drains every non-empty coarse bucket and resets it,
// returning per-function deltas since the previous flush in slot order.
// The live session calls this each drain tick and ships the report to
// the collector, where it feeds candidate ranking for functions that
// aren't detail-instrumented.
func FlushCoarse() []CoarseStat {
	tab := *slots.Load()
	var out []CoarseStat
	for _, st := range tab {
		calls := st.calls.Swap(0)
		nanos := st.nanos.Swap(0)
		if calls == 0 && nanos == 0 {
			continue
		}
		out = append(out, CoarseStat{Name: st.name, Calls: calls, Nanos: nanos})
	}
	return out
}

// Status is a snapshot of the runtime's instrumentation policy.
type Status struct {
	// Rev is the last applied directive revision.
	Rev uint64 `json:"rev"`
	// Default is the process-wide default mode.
	Default Mode `json:"default"`
	// Registered counts known instrumented functions.
	Registered int `json:"registered"`
	// Overrides lists functions with explicit per-function modes,
	// sorted by name.
	Overrides []FuncMode `json:"overrides,omitempty"`
}

// Current reports the runtime's instrumentation policy: the default
// mode and every explicit per-function override.
func Current() Status {
	tab := *slots.Load()
	s := Status{
		Rev:        appliedRev.Load(),
		Default:    Mode(defaultMode.Load()),
		Registered: len(tab),
	}
	for _, st := range tab {
		if m := st.mode.Load(); m != 0 {
			s.Overrides = append(s.Overrides, FuncMode{Name: st.name, Mode: Mode(m - 1)})
		}
	}
	sort.Slice(s.Overrides, func(i, j int) bool { return s.Overrides[i].Name < s.Overrides[j].Name })
	return s
}

// lane returns (or allocates) the lane for one goroutine.
func (b *binding) lane(gid uint64) *trace.Lane {
	if l, ok := b.lanes.Load(gid); ok {
		return l.(*trace.Lane)
	}
	l, _ := b.lanes.LoadOrStore(gid, b.tracer.NewLane())
	return l.(*trace.Lane)
}

// goroutineID parses the current goroutine's id from its stack header
// ("goroutine 123 [running]: …"). The ~µs cost is the price of
// transparent per-goroutine lanes without threading context through
// instrumented signatures; it is far below the per-sample costs the
// paper budgets for (§3.2), and only paid while a tracer is attached.
func goroutineID() uint64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	// Skip "goroutine ".
	var id uint64
	for _, c := range buf[10:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}
