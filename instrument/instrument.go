// Package instrument is the runtime half of Tempest's automatic
// source-level instrumentation — the Go stand-in for the paper's
// `gcc -finstrument-functions` entry/exit hooks.
//
// cmd/tempest-instrument rewrites a package so that every selected
// function begins with
//
//	defer instrument.Trace(tempestInstrSlots[i])()
//
// next to a generated registration block
//
//	var tempestInstrSlots = instrument.Register("pkg/path", []string{...})
//
// The package is inert until a profiling session attaches a tracer
// (LiveSession.EnableAutoInstrument, or Attach directly): before that,
// Trace is a few atomic loads and a no-op closure, so instrumented
// binaries run unprofiled at negligible cost — the same property the
// paper gets from shipping separate instrumented builds, without the
// separate build.
//
// Lanes are allocated per goroutine (keyed by goroutine id), matching
// the tracer's one-lane-per-worker model, so instrumented code may be
// freely concurrent.
package instrument

import (
	"runtime"
	"sync"
	"sync/atomic"

	"tempest/internal/trace"
)

var (
	regMu sync.Mutex
	// names is the global slot table: Register appends, Attach interns
	// into the tracer's symbol table.
	names []string
	// active is the currently attached binding, nil when disabled.
	active atomic.Pointer[binding]
)

// binding connects the slot table to one tracer.
type binding struct {
	tracer *trace.Tracer
	mu     sync.Mutex
	fids   []uint32 // guarded by mu; slot → tracer function id
	lanes  sync.Map // goroutine id (uint64) → *trace.Lane
}

// Register interns a package's instrumented function names and returns
// their slot indices. It is called from generated init-time code and is
// safe before, during and after Attach.
func Register(pkgPath string, fnNames []string) []int {
	regMu.Lock()
	defer regMu.Unlock()
	base := len(names)
	names = append(names, fnNames...)
	slots := make([]int, len(fnNames))
	for i := range slots {
		slots[i] = base + i
	}
	if b := active.Load(); b != nil {
		b.extend(names)
	}
	return slots
}

// Attach enables auto-instrumentation against tr. Any previously
// attached tracer is replaced. Passing nil detaches.
func Attach(tr *trace.Tracer) {
	if tr == nil {
		active.Store(nil)
		return
	}
	b := &binding{tracer: tr}
	regMu.Lock()
	b.extend(names)
	regMu.Unlock()
	active.Store(b)
}

// Detach disables auto-instrumentation if tr is the attached tracer
// (nil detaches unconditionally). Sessions call this on Close so a dying
// session never strands hooks pointing at a stopped tracer.
func Detach(tr *trace.Tracer) {
	b := active.Load()
	if b == nil {
		return
	}
	if tr == nil || b.tracer == tr {
		active.CompareAndSwap(b, nil)
	}
}

// Attached reports whether any tracer is currently bound.
func Attached() bool { return active.Load() != nil }

// extend interns every known name, growing the slot→fid table.
func (b *binding) extend(all []string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := len(b.fids); i < len(all); i++ {
		b.fids = append(b.fids, b.tracer.RegisterFunc(all[i]))
	}
}

// noop is returned when instrumentation is detached.
var noop = func() {}

// Trace is the injected prologue hook: it records function entry on the
// calling goroutine's lane and returns the matching exit hook for defer.
// With no tracer attached it costs one atomic load.
func Trace(slot int) func() {
	b := active.Load()
	if b == nil {
		return noop
	}
	b.mu.Lock()
	if slot < 0 || slot >= len(b.fids) {
		b.mu.Unlock()
		return noop
	}
	fid := b.fids[slot]
	b.mu.Unlock()
	lane := b.lane(goroutineID())
	// Balanced by construction: the returned closure is the Exit and
	// callers defer it.
	lane.Enter(fid) //tempest:ignore enterexit
	return func() { _ = lane.Exit(fid) }
}

// lane returns (or allocates) the lane for one goroutine.
func (b *binding) lane(gid uint64) *trace.Lane {
	if l, ok := b.lanes.Load(gid); ok {
		return l.(*trace.Lane)
	}
	l, _ := b.lanes.LoadOrStore(gid, b.tracer.NewLane())
	return l.(*trace.Lane)
}

// goroutineID parses the current goroutine's id from its stack header
// ("goroutine 123 [running]: …"). The ~µs cost is the price of
// transparent per-goroutine lanes without threading context through
// instrumented signatures; it is far below the per-sample costs the
// paper budgets for (§3.2), and only paid while a tracer is attached.
func goroutineID() uint64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	// Skip "goroutine ".
	var id uint64
	for _, c := range buf[10:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}
