package instrument

import (
	"sync"
	"testing"

	"tempest/internal/trace"
	"tempest/internal/vclock"
)

func newTracer(t *testing.T) *trace.Tracer {
	t.Helper()
	tr, err := trace.NewTracer(trace.Config{Clock: vclock.NewVirtualClock()})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTraceNoopWhenDetached(t *testing.T) {
	Detach(nil)
	slots := Register("pkg/a", []string{"pkg.A"})
	exit := Trace(slots[0])
	exit() // must not panic, must not record
	if Attached() {
		t.Fatal("no tracer should be attached")
	}
}

func TestTraceRecordsEnterExit(t *testing.T) {
	tr := newTracer(t)
	slots := Register("pkg/b", []string{"pkg.B", "pkg.C"})
	Attach(tr)
	defer Detach(tr)

	exit := Trace(slots[0])
	inner := Trace(slots[1])
	inner()
	exit()

	events, sym := tr.Snapshot()
	var got []string
	for _, e := range events {
		name, err := sym.Name(e.FuncID)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, e.Kind.String()+":"+name)
	}
	want := []string{"enter:pkg.B", "enter:pkg.C", "exit:pkg.C", "exit:pkg.B"}
	if len(got) != len(want) {
		t.Fatalf("events %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestRegisterAfterAttach(t *testing.T) {
	tr := newTracer(t)
	Attach(tr)
	defer Detach(tr)
	slots := Register("pkg/late", []string{"pkg.Late"})
	exit := Trace(slots[0])
	exit()
	events, sym := tr.Snapshot()
	found := false
	for _, e := range events {
		if name, _ := sym.Name(e.FuncID); name == "pkg.Late" {
			found = true
		}
	}
	if !found {
		t.Fatal("late-registered function was not traced")
	}
}

func TestPerGoroutineLanes(t *testing.T) {
	tr := newTracer(t)
	slots := Register("pkg/conc", []string{"pkg.Conc"})
	Attach(tr)
	defer Detach(tr)

	const workers = 8
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				exit := Trace(slots[0])
				exit()
			}
		}()
	}
	wg.Wait()

	events, _ := tr.Snapshot()
	// Every goroutine got its own lane, so each lane's stream must be
	// internally balanced; the merged stream has 2*50*workers events.
	if len(events) != 2*50*workers {
		t.Fatalf("got %d events, want %d", len(events), 2*50*workers)
	}
	depth := map[uint32]int{}
	for _, e := range events {
		switch e.Kind {
		case trace.KindEnter:
			depth[e.Lane]++
		case trace.KindExit:
			depth[e.Lane]--
			if depth[e.Lane] < 0 {
				t.Fatalf("lane %d: exit before enter", e.Lane)
			}
		}
	}
	for lane, d := range depth {
		if d != 0 {
			t.Fatalf("lane %d finished at depth %d", lane, d)
		}
	}
}

func TestDetachOnlyMatchingTracer(t *testing.T) {
	a, b := newTracer(t), newTracer(t)
	Attach(a)
	Detach(b) // not the attached one: no effect
	if !Attached() {
		t.Fatal("Detach(other) removed the active binding")
	}
	Detach(a)
	if Attached() {
		t.Fatal("Detach(active) left the binding attached")
	}
}

func TestOutOfRangeSlotIsNoop(t *testing.T) {
	tr := newTracer(t)
	Attach(tr)
	defer Detach(tr)
	Trace(1 << 30)() // must not panic
	Trace(-1)()
}
