// suite_bench_test.go profiles the thermal signature of every NAS kernel
// — the paper's broader §4 claim that Tempest characterises "several
// classes of parallel applications", with workload type visibly driving
// the thermals (EP hot end-to-end, FT cooled by its all-to-all phases,
// LU staggered by its pipeline).
package tempest

import (
	"testing"

	"tempest/internal/cluster"
	"tempest/internal/nas"
	"tempest/internal/parser"
)

// kernelSignature runs one kernel on the standard 4-node cluster and
// returns (avg °F, max °F, comm share %) of node 0's CPU sensor.
func kernelSignature(b *testing.B, body func(rc *cluster.Rank) error) (avg, maxV, commPct float64) {
	b.Helper()
	c, err := cluster.New(cluster.Config{
		Nodes: 4, RanksPerNode: 1, Seed: 7, Cost: nas.FTCost(), Heterogeneous: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	res, err := c.Run(body)
	if err != nil {
		b.Fatal(err)
	}
	p, err := parser.ParseAll(res.Traces, parser.Options{})
	if err != nil {
		b.Fatal(err)
	}
	np := &p.Nodes[0]
	mainP, ok := np.Function("main")
	if !ok {
		b.Fatal("main missing")
	}
	avg, maxV = mainP.Sensors[0].Avg, mainP.Sensors[0].Max
	var comm float64
	for _, name := range []string{"MPI_Alltoall", "MPI_Allreduce", "MPI_Allgather", "MPI_Barrier", "MPI_Recv", "MPI_Send", "MPI_Bcast", "MPI_Reduce"} {
		if fp, ok := np.Function(name); ok {
			comm += fp.TotalTime.Seconds()
		}
	}
	commPct = comm / mainP.TotalTime.Seconds() * 100
	return avg, maxV, commPct
}

// BenchmarkSuite_ThermalSignatures reproduces the cross-kernel contrast:
// communication-heavy codes run cooler than compute-bound ones.
func BenchmarkSuite_ThermalSignatures(b *testing.B) {
	kernels := []struct {
		name string
		body func(rc *cluster.Rank) error
	}{
		{"ft", func(rc *cluster.Rank) error { _, err := nas.RunFT(rc, nas.ClassS); return err }},
		{"bt", func(rc *cluster.Rank) error { _, err := nas.RunBT(rc, nas.ClassS); return err }},
		{"sp", func(rc *cluster.Rank) error { _, err := nas.RunSP(rc, nas.ClassS); return err }},
		{"lu", func(rc *cluster.Rank) error { _, err := nas.RunLU(rc, nas.ClassS); return err }},
		{"ep", func(rc *cluster.Rank) error { _, err := nas.RunEP(rc, nas.ClassS); return err }},
		{"cg", func(rc *cluster.Rank) error { _, err := nas.RunCG(rc, nas.ClassS); return err }},
		{"mg", func(rc *cluster.Rank) error { _, err := nas.RunMG(rc, nas.ClassS); return err }},
		{"is", func(rc *cluster.Rank) error { _, err := nas.RunIS(rc, nas.ClassS); return err }},
	}
	sig := map[string][3]float64{}
	for i := 0; i < b.N; i++ {
		for _, k := range kernels {
			avg, maxV, comm := kernelSignature(b, k.body)
			sig[k.name] = [3]float64{avg, maxV, comm}
		}
		// Cross-kernel shape claims:
		// BT (compute-bound block solves) must peak hotter than FT
		// (half its time in all-to-all), and FT must be far more
		// communication-heavy than BT.
		if sig["bt"][1] <= sig["ft"][1] {
			b.Fatalf("BT peak %.1f °F not above FT peak %.1f °F", sig["bt"][1], sig["ft"][1])
		}
		if sig["ft"][2] <= sig["bt"][2] {
			b.Fatalf("FT comm share %.0f%% not above BT's %.0f%%", sig["ft"][2], sig["bt"][2])
		}
	}
	for name, s := range sig {
		b.ReportMetric(s[1], name+"_peak_F")
	}
	b.ReportMetric(sig["ft"][2], "ft_comm_pct")
	b.ReportMetric(sig["bt"][2], "bt_comm_pct")
}
