// ablation_bench_test.go quantifies the design choices DESIGN.md §5 calls
// out: sampling rate, sensor quantisation, ring-buffer sizing, transport
// choice and core binding. Each benchmark sweeps one knob and reports the
// accuracy/overhead trade-off as custom metrics.
package tempest

import (
	"math"
	"testing"
	"time"

	"tempest/internal/cluster"
	"tempest/internal/mpi"
	"tempest/internal/nas"
	"tempest/internal/parser"
	"tempest/internal/trace"
	"tempest/internal/vclock"
)

// burnThenCool is the reference workload for sampling ablations: 30 s of
// burn, 30 s of idle.
func burnThenCool(rc *cluster.Rank) error {
	if err := rc.Instrument("burn", cluster.UtilBurn, 30*time.Second, nil); err != nil {
		return err
	}
	return rc.Instrument("cool", cluster.UtilIdle, 30*time.Second, nil)
}

// profileAtRate runs the reference workload sampled at rateHz with
// quantisation quantC and returns the burn function's sensor-0 summary
// plus the total sample count.
func profileAtRate(b *testing.B, rateHz, quantC float64) (avg, maxV float64, samples int) {
	b.Helper()
	c, err := cluster.New(cluster.Config{
		Nodes: 1, RanksPerNode: 1, Seed: 31,
		SampleRateHz: rateHz, SensorQuantC: quantC,
	})
	if err != nil {
		b.Fatal(err)
	}
	res, err := c.Run(burnThenCool)
	if err != nil {
		b.Fatal(err)
	}
	p, err := parser.Parse(res.Traces[0], parser.Options{})
	if err != nil {
		b.Fatal(err)
	}
	fp, ok := p.Function("burn")
	if !ok {
		b.Fatal("burn missing")
	}
	return fp.Sensors[0].Avg, fp.Sensors[0].Max, len(p.Samples[0])
}

// Ablation: sampling rate. 4 Hz (the paper's choice) must agree with a
// 64 Hz reference within a fraction of a degree while taking 16× fewer
// samples — the accuracy/overhead balance that justifies the choice.
func BenchmarkAblation_SamplingRate(b *testing.B) {
	var err4 float64
	var n4, n64 int
	for i := 0; i < b.N; i++ {
		avgRef, maxRef, nRef := profileAtRate(b, 64, -1)
		avg4, max4, n := profileAtRate(b, 4, -1)
		n4, n64 = n, nRef
		err4 = math.Max(math.Abs(avg4-avgRef), math.Abs(max4-maxRef))
		avg1, _, _ := profileAtRate(b, 1, -1)
		// 1 Hz visibly degrades the average of a 30 s transient relative
		// to 4 Hz's agreement with the reference.
		if e1 := math.Abs(avg1 - avgRef); e1 < err4/2 && err4 > 0.5 {
			b.Logf("note: 1 Hz error %.2f vs 4 Hz error %.2f", e1, err4)
		}
	}
	b.ReportMetric(err4, "err_4Hz_vs_64Hz_F")
	b.ReportMetric(float64(n4), "samples_4Hz")
	b.ReportMetric(float64(n64), "samples_64Hz")
	if err4 > 1.5 {
		b.Fatalf("4 Hz deviates %.2f °F from the 64 Hz reference", err4)
	}
}

// Ablation: sensor quantisation. Whole-degree reporting (real chips)
// inflates Sdv/Var relative to raw model values but leaves Avg within
// half a step — the reason the paper's tables show exact value grids.
func BenchmarkAblation_Quantisation(b *testing.B) {
	var avgShift, sdvRaw, sdvQuant float64
	for i := 0; i < b.N; i++ {
		profile := func(quantC float64) (float64, float64) {
			c, err := cluster.New(cluster.Config{
				Nodes: 1, RanksPerNode: 1, Seed: 31, SensorQuantC: quantC,
			})
			if err != nil {
				b.Fatal(err)
			}
			res, err := c.Run(func(rc *cluster.Rank) error {
				return rc.Instrument("steady", cluster.UtilCompute, 40*time.Second, nil)
			})
			if err != nil {
				b.Fatal(err)
			}
			p, err := parser.Parse(res.Traces[0], parser.Options{})
			if err != nil {
				b.Fatal(err)
			}
			fp, _ := p.Function("steady")
			return fp.Sensors[0].Avg, fp.Sensors[0].Sdv
		}
		avgRaw, sr := profile(-1)
		avgQ, sq := profile(1)
		avgShift = math.Abs(avgQ - avgRaw)
		sdvRaw, sdvQuant = sr, sq
		if avgShift > 1.0 { // half a °C step is 0.9 °F
			b.Fatalf("quantisation shifted Avg by %.2f °F", avgShift)
		}
	}
	b.ReportMetric(avgShift, "avg_shift_F")
	b.ReportMetric(sdvRaw, "sdv_raw_F")
	b.ReportMetric(sdvQuant, "sdv_quantised_F")
}

// Ablation: lane ring-buffer capacity vs drop rate under the short-lived
// call storms §3.3 warns about.
func BenchmarkAblation_RingBufferPressure(b *testing.B) {
	var dropPctSmall, dropPctBig float64
	for i := 0; i < b.N; i++ {
		storm := func(cap int) float64 {
			tr, err := trace.NewTracer(trace.Config{Clock: vclock.NewRealClock(), LaneBufferCap: cap})
			if err != nil {
				b.Fatal(err)
			}
			lane := tr.NewLane()
			fid := tr.RegisterFunc("tiny")
			const calls = 100000
			for k := 0; k < calls; k++ {
				lane.Enter(fid)
				_ = lane.Exit(fid)
			}
			total := float64(tr.EventCount() + tr.DroppedCount())
			return float64(tr.DroppedCount()) / total * 100
		}
		dropPctSmall = storm(1 << 10)
		dropPctBig = storm(1 << 18)
		if dropPctBig > 0 {
			b.Fatalf("large buffer dropped %.2f%%", dropPctBig)
		}
		if dropPctSmall == 0 {
			b.Fatal("small buffer dropped nothing — pressure not exercised")
		}
	}
	b.ReportMetric(dropPctSmall, "drop_pct_1Ki")
	b.ReportMetric(dropPctBig, "drop_pct_256Ki")
}

// Ablation: in-process vs TCP transport for the same collective program.
func BenchmarkAblation_TransportChanVsTCP(b *testing.B) {
	const size = 4
	program := func(c *mpi.Comm) error {
		for k := 0; k < 20; k++ {
			in := make([]float64, 256)
			out := make([]float64, 256)
			if err := c.Alltoall(in, out); err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	}
	var chanNS, tcpNS float64
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if err := mpi.Run(size, program); err != nil {
			b.Fatal(err)
		}
		chanNS = float64(time.Since(start).Nanoseconds())

		nodes := make([]*mpi.TCPTransport, size)
		addrs := make([]string, size)
		for r := range addrs {
			addrs[r] = "127.0.0.1:0"
		}
		for r := range nodes {
			n, err := mpi.NewTCPNode(r, addrs)
			if err != nil {
				b.Fatal(err)
			}
			nodes[r] = n
		}
		for _, n := range nodes {
			for pr, peer := range nodes {
				if err := n.SetPeerAddr(pr, peer.Addr()); err != nil {
					b.Fatal(err)
				}
			}
		}
		start = time.Now()
		errCh := make(chan error, size)
		for r := range nodes {
			go func(r int) {
				w, err := mpi.NewWorldOver(nodes[r])
				if err != nil {
					errCh <- err
					return
				}
				comm, err := w.Comm(r)
				if err != nil {
					errCh <- err
					return
				}
				errCh <- program(comm)
			}(r)
		}
		for r := 0; r < size; r++ {
			if err := <-errCh; err != nil {
				b.Fatal(err)
			}
		}
		tcpNS = float64(time.Since(start).Nanoseconds())
		for _, n := range nodes {
			_ = n.Close()
		}
	}
	b.ReportMetric(chanNS/1e6, "chan_ms")
	b.ReportMetric(tcpNS/1e6, "tcp_ms")
	b.ReportMetric(tcpNS/chanNS, "tcp_slowdown_x")
}

// Ablation: bound vs calibrated-unbound timestamping (the §3.3 mitigation
// the paper defers to future work).
func BenchmarkAblation_CalibratedUnbound(b *testing.B) {
	var rawErrNS, calErrNS float64
	for i := 0; i < b.N; i++ {
		clk := vclock.NewVirtualClock()
		tsc, err := vclock.NewTSC(clk, vclock.SkewedCores(4, 1.8e9, 20_000_000, 0, 11))
		if err != nil {
			b.Fatal(err)
		}
		worst := func(r *vclock.Reader) float64 {
			var w float64
			prev, _ := r.Read()
			for k := 0; k < 200; k++ {
				clk.Advance(time.Millisecond)
				cur, _ := r.Read()
				got := float64(cur-prev) / 1.8e9 * 1e9
				if e := math.Abs(got - 1e6); e > w {
					w = e
				}
				prev = cur
			}
			return w
		}
		raw := vclock.NewUnboundReader(tsc, 5)
		rawErrNS = worst(raw)
		cal := vclock.NewUnboundReader(tsc, 5)
		cal.Calibrate()
		calErrNS = worst(cal)
		if calErrNS >= rawErrNS {
			b.Fatalf("calibration did not help: %.0f vs %.0f ns", calErrNS, rawErrNS)
		}
	}
	b.ReportMetric(rawErrNS, "uncalibrated_err_ns")
	b.ReportMetric(calErrNS, "calibrated_err_ns")
}

// Ablation: interconnect speed. FT's character — half its time in
// all-to-all — is a property of the network, not the code: on a faster
// fabric the same kernel becomes compute-bound. (Peak temperature does
// NOT simply rise with fabric speed: a slow network stretches the run,
// giving the die longer to heat at lower utilisation — the sweep reports
// both numbers rather than assuming.)
func BenchmarkAblation_InterconnectSweep(b *testing.B) {
	shares := map[string]float64{}
	peaks := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for _, bw := range []struct {
			name  string
			scale float64 // bandwidth multiplier vs the calibrated model
		}{{"slow", 0.25}, {"base", 1}, {"fast", 4}} {
			cost := nas.FTCost()
			cost.BandwidthBytesPerS *= bw.scale
			cost.LatencyS /= bw.scale
			c, err := cluster.New(cluster.Config{
				Nodes: 4, RanksPerNode: 1, Seed: 7, Cost: cost,
			})
			if err != nil {
				b.Fatal(err)
			}
			res, err := c.Run(func(rc *cluster.Rank) error {
				_, err := nas.RunFT(rc, nas.ClassS)
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
			p, err := parser.ParseAll(res.Traces, parser.Options{})
			if err != nil {
				b.Fatal(err)
			}
			mainP, _ := p.Nodes[0].Function("main")
			a2a, _ := p.Nodes[0].Function("MPI_Alltoall")
			shares[bw.name] = float64(a2a.TotalTime) / float64(mainP.TotalTime) * 100
			peaks[bw.name] = mainP.Sensors[0].Max
		}
		// Faster network → smaller communication share.
		if !(shares["slow"] > shares["base"] && shares["base"] > shares["fast"]) {
			b.Fatalf("comm share not monotone in bandwidth: %v", shares)
		}
	}
	b.ReportMetric(shares["slow"], "share_quarter_bw_pct")
	b.ReportMetric(shares["base"], "share_base_bw_pct")
	b.ReportMetric(shares["fast"], "share_4x_bw_pct")
	b.ReportMetric(peaks["fast"]-peaks["slow"], "peak_rise_fast_vs_slow_F")
}
