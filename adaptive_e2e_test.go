package tempest

import (
	"math"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"tempest/instrument"
	"tempest/internal/collect"
	"tempest/internal/trace"
)

var adaptiveSink float64

// e2eSlots are the test workload's instrumented functions, interned the
// way cmd/tempest-instrument's generated init code would.
var (
	e2eOnce  sync.Once
	e2eSlots []int
)

func e2eRegister() []int {
	e2eOnce.Do(func() {
		e2eSlots = instrument.Register("tempest/adaptive_e2e", []string{"e2e.hotLoop", "e2e.coldTick"})
	})
	return e2eSlots
}

// e2eHot is the hot spot: ~2 ms of real floating-point work per call,
// so its detail-mode event rate stays far under the lane cap while its
// cumulative time dominates the coarse ranking.
func e2eHot() {
	defer instrument.Trace(e2eRegister()[0])()
	deadline := time.Now().Add(2 * time.Millisecond)
	s := adaptiveSink
	for time.Now().Before(deadline) {
		for i := 0; i < 500; i++ {
			s += math.Sqrt(s + float64(i))
		}
	}
	adaptiveSink = s
}

// e2eCold is the high-frequency noise: near-zero time per call but
// called three orders of magnitude more often than e2eHot — under full
// detail instrumentation its enter/exit pairs flood the lane buffer.
func e2eCold() {
	defer instrument.Trace(e2eRegister()[1])()
}

// e2eWorkload runs one iteration: one hot burst and a swarm of cold calls.
func e2eWorkload() {
	e2eHot()
	for i := 0; i < 1000; i++ {
		e2eCold()
	}
}

// resetInstrument restores the process-wide instrumentation policy
// around a test that drives it (mirrors instrument's own test helper).
func resetInstrument(t *testing.T) {
	t.Helper()
	restore := func() {
		instrument.Detach(nil)
		instrument.SetDefaultMode(instrument.ModeDetail)
		instrument.Apply(instrument.Directive{Default: instrument.ModeDetail})
		instrument.FlushCoarse()
	}
	restore()
	t.Cleanup(restore)
}

func e2eLiveConfig(t *testing.T, drain time.Duration) LiveConfig {
	t.Helper()
	return LiveConfig{
		HwmonRoot:             filepath.Join(t.TempDir(), "none"),
		AllowSimulatedSensors: true,
		SampleRateHz:          4,
		NodeID:                21,
		DrainInterval:         drain,
		LaneBufferCap:         256,
	}
}

func hasDetailOverride(st instrument.Status, name string) bool {
	for _, f := range st.Overrides {
		if f.Name == name && f.Mode == instrument.ModeDetail {
			return true
		}
	}
	return false
}

// TestAdaptiveSamplingClosesTheLoop is the closed-loop acceptance test
// for the adaptive control plane. Phase 1 establishes the problem: the
// workload under full detail instrumentation overruns a small lane
// buffer between drains (dropped events — the failure adaptive sampling
// exists to prevent). Phase 2 runs the same workload and lane cap
// end-to-end through the loop — coarse default, buckets shipped to a
// policy-enabled collector, directives piggybacked on acks and applied
// between drains — and must promote the hot function to detail within
// two policy rounds while dropping nothing, with measured overhead
// still under the paper's 7 % bound.
func TestAdaptiveSamplingClosesTheLoop(t *testing.T) {
	resetInstrument(t)
	e2eRegister()

	// Phase 1: full detail instrumentation at this event density loses
	// events — every cold call pays the enter/exit pair into a 256-event
	// lane drained only every 200 ms.
	s1, err := NewLiveSession(e2eLiveConfig(t, 200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	s1.EnableAutoInstrument()
	for i := 0; i < 100; i++ {
		e2eWorkload()
	}
	fullDrops := s1.tracer.DroppedCount()
	if _, err := s1.Close(); err != nil {
		// Expected at this density: dropped enters orphan their exits and
		// the builder reports the desync — the very failure the adaptive
		// loop exists to prevent.
		t.Logf("full-detail close reported desync (expected): %v", err)
	}
	instrument.FlushCoarse() // phase 1's buckets are not phase 2's signal
	if fullDrops == 0 {
		t.Fatal("full detail instrumentation did not overflow the lane buffer; the workload no longer exercises the failure mode")
	}

	// Phase 2: the same workload, same lane cap, adaptive.
	c := collect.New(collect.Options{Policy: collect.PolicyOptions{
		Enabled: true, TopK: 1, Interval: 100 * time.Millisecond,
	}})
	defer c.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go c.Serve(ln)

	// The holder bridges OnControl (downstream reader goroutine, may fire
	// before the session exists) to ApplyControl — tempest-live's wiring.
	var ctlMu sync.Mutex
	var ctlSession *LiveSession
	var ctlPending *instrument.Directive
	shipper := collect.NewShipper(ln.Addr().String(), 21, 0, collect.ShipperOptions{
		FlushTimeout: 10 * time.Second,
		OnControl: func(d instrument.Directive) {
			ctlMu.Lock()
			defer ctlMu.Unlock()
			if ctlSession != nil {
				ctlSession.ApplyControl(d)
				return
			}
			ctlPending = &d
		},
	})

	instrument.SetDefaultMode(instrument.ModeCoarse)
	cfg := e2eLiveConfig(t, 50*time.Millisecond)
	cfg.DrainSink = func(ev []trace.Event, sym *trace.SymTab) { _ = shipper.Ship(ev, sym) }
	cfg.CoarseSink = func(cs []instrument.CoarseStat) { _ = shipper.ShipCoarse(cs) }
	s2, err := NewLiveSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctlMu.Lock()
	ctlSession = s2
	if ctlPending != nil {
		s2.ApplyControl(*ctlPending)
		ctlPending = nil
	}
	ctlMu.Unlock()
	s2.EnableAutoInstrument()

	deadline := time.Now().Add(15 * time.Second)
	var promotedSt instrument.Status
	promoted := false
	for time.Now().Before(deadline) {
		e2eWorkload()
		if st := s2.Instrumentation(); hasDetailOverride(st, "e2e.hotLoop") {
			promotedSt = st
			promoted = true
			break
		}
	}
	if !promoted {
		t.Fatalf("hot function never promoted to detail; instrumentation %+v, policy %+v",
			s2.Instrumentation(), c.PolicyStatuses())
	}
	// "Within two policy rounds": the applied directive revision counts
	// issued policy changes, and promotion must be among the first two.
	if promotedSt.Rev == 0 || promotedSt.Rev > 2 {
		t.Fatalf("promotion arrived at directive rev %d, want 1 or 2", promotedSt.Rev)
	}
	if promotedSt.Default != instrument.ModeCoarse {
		t.Fatalf("default mode = %v after promotion, want coarse", promotedSt.Default)
	}
	if hasDetailOverride(promotedSt, "e2e.coldTick") {
		t.Fatalf("cold function promoted to detail: %+v", promotedSt.Overrides)
	}

	// Keep the loop running under the nominated policy: the hot function
	// now streams full events, and nothing may overflow.
	for i := 0; i < 30; i++ {
		e2eWorkload()
	}
	adaptiveDrops := s2.tracer.DroppedCount()
	p, err := s2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := shipper.Close(); err != nil {
		t.Fatal(err)
	}
	if adaptiveDrops != 0 {
		t.Fatalf("adaptive run dropped %d events; the loop did not relieve lane pressure", adaptiveDrops)
	}
	if p.OverheadFraction >= 0.07 {
		t.Fatalf("adaptive overhead %.4f exceeds the paper's 7%% bound", p.OverheadFraction)
	}
	sts := c.PolicyStatuses()
	if len(sts) != 1 || sts[0].Tracked < 2 {
		t.Fatalf("collector policy state = %+v, want 1 node tracking both functions", sts)
	}
	if len(sts[0].Detail) != 1 || sts[0].Detail[0].Name != "e2e.hotLoop" {
		t.Fatalf("collector detail set = %+v, want [e2e.hotLoop]", sts[0].Detail)
	}
}
