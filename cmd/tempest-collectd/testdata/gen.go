//go:build ignore

// gen.go regenerates smoke.tpst, the canned single-node trace the
// collectd smoke test ships through a live collector:
//
//	go run testdata/gen.go
//
// The trace is fully deterministic (virtual clock, fixed workload), so
// the hotspot answer it produces is stable and the smoke test can diff
// the collector's /api/hotspots response against hotspots.golden. After
// changing the workload here, regenerate the golden too:
//
//	go run testdata/gen.go && make collectd-smoke UPDATE_GOLDEN=1
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"tempest/internal/trace"
	"tempest/internal/vclock"
)

func main() {
	clk := vclock.NewVirtualClock()
	tr, err := trace.NewTracer(trace.Config{Clock: clk, NodeID: 1, Rank: 0, LaneBufferCap: 1 << 20})
	if err != nil {
		panic(err)
	}
	lane := tr.NewLane()
	compute := tr.RegisterFunc("compute_kernel")
	exchange := tr.RegisterFunc("halo_exchange")
	idle := tr.RegisterFunc("idle_wait")

	// Three phases with distinct thermal signatures: hot compute, warm
	// exchange, cool idle — a clean top-3 for the smoke assertion.
	temp := 40.0
	sample := func(delta float64) {
		temp += delta
		clk.Advance(50 * time.Millisecond)
		tr.Sample(0, temp)
	}
	for cycle := 0; cycle < 10; cycle++ {
		lane.Enter(compute)
		for i := 0; i < 4; i++ {
			sample(0.5)
		}
		lane.Exit(compute)
		lane.Enter(exchange)
		for i := 0; i < 2; i++ {
			sample(0.125)
		}
		lane.Exit(exchange)
		lane.Enter(idle)
		for i := 0; i < 3; i++ {
			sample(-0.75)
		}
		lane.Exit(idle)
	}

	out := filepath.Join(filepath.Dir(os.Args[0]), "smoke.tpst")
	if len(os.Args) > 1 {
		out = os.Args[1]
	} else {
		out = "testdata/smoke.tpst"
	}
	f, err := os.Create(out)
	if err != nil {
		panic(err)
	}
	t := tr.Finish()
	if err := t.WriteSegmented(f, 32); err != nil {
		panic(err)
	}
	if err := f.Close(); err != nil {
		panic(err)
	}
	fmt.Printf("wrote %s: %d events, %d symbols\n", out, len(t.Events), t.Sym.Len())
}
