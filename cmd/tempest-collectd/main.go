// Command tempest-collectd is Tempest's fleet collector daemon: it
// ingests live trace streams (tempest-live -ship) and bulk trace uploads
// from many nodes at once, maintains a streaming per-node profile for
// each, and answers cluster-wide hot-spot queries over HTTP.
//
// Usage:
//
//	tempest-collectd -listen :7077 -http :7078
//	tempest-collectd -listen :7077 -http :7078 -unit C -shards 8
//	tempest-collectd -upload trace.tpst -to collector:7077
//
// Server mode runs until SIGINT/SIGTERM, then shuts down gracefully
// (in-flight ingest drains first). On startup it prints the bound
// addresses as "ingest=HOST:PORT http=HOST:PORT" — with ":0" this is
// how scripts learn the real ports. With -debug-addr a third
// "debug=HOST:PORT" token is appended for the debug server, which serves
// net/http/pprof under /debug/pprof/, expvar under /debug/vars, and the
// full metric set (public plus internal) under /debug/introspect
// (?format=json|prometheus). The debug surface is opt-in and should stay
// on a loopback or otherwise firewalled address.
//
// With -store-dir the collector is durable: every acknowledged ingest
// batch is fsynced into an append-only, hash-chained store before the
// ack, so a crash — SIGKILL included — loses nothing a shipper was told
// is safe; on restart the store replays into warm profiles and shippers
// resume where they left off. -retention folds raw history older than
// the window into compact hot-spot archives (fleet rankings keep their
// full history; per-sample profiles cover the retained window), bucketed
// by -archive-granule so folded history still answers windowed hot-spot
// queries. The store is also the query substrate for historical reads:
// /api/series/{node}?from=&to= rebuilds a node's series over any stored
// range, /api/hotspots?window=30m ranks the trailing window, and
// /api/windows/{node} lists the granularities a node's history can be
// queried at (raw segments vs folded archives).
// -verify-store walks the chains offline, prints a per-shard report and
// exits non-zero if any committed history fails to verify (a torn tail
// on the final segment is indistinguishable from a crash mid-write, so
// it is reported as a note, not a failure).
//
// Upload mode (-upload/-to) is the client for the bulk path: it streams
// one recorded trace file to a running collector over TCP and exits.
// The collector scans it exactly like tempest-parse would, so the
// resulting per-node profile is identical to an offline parse.
//
// With -policy the adaptive-sampling engine closes the loop: the
// collector ranks each node's coarse instrumentation buckets by the
// same degree-seconds scoring as /api/hotspots and piggybacks
// per-function detail/coarse directives on ship-stream acks
// (tempest-live -adaptive consumes them). -policy-topk, -policy-interval
// and -policy-budget tune nomination width, round cadence and the
// per-node overhead budget.
//
// Query API (see internal/collect):
//
//	curl http://collector:7078/api/nodes
//	curl http://collector:7078/api/hotspots?k=5
//	curl 'http://collector:7078/api/hotspots?window=30m'
//	curl http://collector:7078/api/profile/3?format=text
//	curl http://collector:7078/api/series/3
//	curl 'http://collector:7078/api/series/3?from=2026-08-06T12:00:00Z&to=2026-08-06T12:05:00Z'
//	curl http://collector:7078/api/windows/3
//	curl http://collector:7078/api/policy
//	curl http://collector:7078/metrics
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tempest/internal/analysis/costmodel"
	"tempest/internal/collect"
	"tempest/internal/introspect"
	"tempest/internal/parser"
	"tempest/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "tempest-collectd:", err)
		os.Exit(1)
	}
}

// run starts the daemon (or performs one upload). ready, when non-nil,
// receives the collector once both listeners are bound — the test hook
// for driving a daemon in-process.
func run(args []string, out io.Writer, ready chan<- *collect.Collector) error {
	fs := flag.NewFlagSet("tempest-collectd", flag.ContinueOnError)
	listen := fs.String("listen", ":7077", "ingest TCP address (shippers and bulk uploads)")
	httpAddr := fs.String("http", ":7078", "HTTP query/metrics address")
	unit := fs.String("unit", "F", "temperature unit of aggregated profiles: F|C")
	shards := fs.Int("shards", 0, "ingest shards (0 = default)")
	upload := fs.String("upload", "", "upload this trace file to a collector and exit (client mode)")
	to := fs.String("to", "", "collector ingest address for -upload")
	storeDir := fs.String("store-dir", "", "durable store directory: acked ingest survives a crash and is replayed on restart (empty = memory-only)")
	retention := fs.Duration("retention", 0, "compact raw store history older than this into folded hot-spot archives (0 = keep raw forever)")
	storeWindow := fs.Duration("store-window", 0, "store segment roll window (0 = default 1h); retention granularity")
	archiveGranule := fs.Duration("archive-granule", 0, "wall-clock bucket width retention folds archived heat into (0 = store window); finer granules keep compacted history answerable for narrower ?window= queries")
	verifyStore := fs.Bool("verify-store", false, "verify -store-dir's hash chains end to end, print a report and exit (0 = intact)")
	debugAddr := fs.String("debug-addr", "", "opt-in debug HTTP address (pprof, /debug/vars, /debug/introspect); keep it loopback")
	policy := fs.Bool("policy", false, "enable the adaptive-sampling policy engine: rank coarse reports and steer per-function instrumentation on adaptive shippers")
	policyTopK := fs.Int("policy-topk", 0, "functions per node nominated for detail instrumentation (0 = default 5)")
	policyInterval := fs.Duration("policy-interval", 0, "minimum time between policy rounds per node (0 = default 2s)")
	policyBudget := fs.Uint64("policy-budget", 0, "per-round detail event budget per node before backpressure (0 = default 100000)")
	policyPriors := fs.String("policy-priors", "", "instrumentation-plan JSON (tempest-instrument -plan) whose static scores seed each new node's detail set before the first measurement round")
	logLevel := fs.String("log-level", "", "log verbosity: debug|info|warn|error (default info)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	lvl, err := introspect.ParseLogLevel(*logLevel)
	if err != nil {
		return err
	}
	logger := introspect.NewLogger(os.Stderr, lvl)
	if *upload != "" {
		if *to == "" {
			return fmt.Errorf("-upload requires -to host:port")
		}
		return uploadTrace(*upload, *to)
	}
	if *verifyStore {
		if *storeDir == "" {
			return fmt.Errorf("-verify-store requires -store-dir")
		}
		rep, err := store.VerifyDir(*storeDir)
		if err != nil {
			return err
		}
		rep.WriteText(out)
		return rep.Err()
	}
	if *storeDir != "" {
		// Fail fast on a mistyped or unwritable directory instead of
		// booting a silently degraded collector.
		if err := store.CheckDir(*storeDir); err != nil {
			return err
		}
	}

	u := parser.Fahrenheit
	if *unit == "C" || *unit == "c" {
		u = parser.Celsius
	}
	var priors map[string]float64
	if *policyPriors != "" {
		if priors, err = loadPriors(*policyPriors); err != nil {
			return err
		}
		logger.Info("static priors loaded", "file", *policyPriors, "functions", len(priors))
	}
	c := collect.New(collect.Options{
		Unit: u, Shards: *shards, Logger: logger,
		StoreDir:       *storeDir,
		StoreOptions:   store.Options{Retention: *retention, Window: *storeWindow},
		ArchiveGranule: *archiveGranule,
		Policy: collect.PolicyOptions{
			Enabled:      *policy,
			TopK:         *policyTopK,
			Interval:     *policyInterval,
			EventBudget:  *policyBudget,
			StaticPriors: priors,
		},
	})
	defer c.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	hln, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		ln.Close()
		return err
	}
	var dln net.Listener
	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err = net.Listen("tcp", *debugAddr)
		if err != nil {
			ln.Close()
			hln.Close()
			return err
		}
		debugSrv = &http.Server{Handler: debugMux(c)}
		fmt.Fprintf(out, "ingest=%s http=%s debug=%s\n", ln.Addr(), hln.Addr(), dln.Addr())
	} else {
		fmt.Fprintf(out, "ingest=%s http=%s\n", ln.Addr(), hln.Addr())
	}
	if f, ok := out.(interface{ Sync() error }); ok {
		f.Sync()
	}
	if ready != nil {
		ready <- c
	}
	logger.Info("collector started", "ingest", ln.Addr().String(), "http", hln.Addr().String(), "debug", *debugAddr)

	srv := &http.Server{Handler: c.Handler()}
	errc := make(chan error, 3)
	go func() { errc <- c.Serve(ln) }()
	go func() {
		if err := srv.Serve(hln); err != http.ErrServerClosed {
			errc <- err
			return
		}
		errc <- nil
	}()
	if debugSrv != nil {
		go func() {
			if err := debugSrv.Serve(dln); err != http.ErrServerClosed {
				errc <- err
				return
			}
			errc <- nil
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	select {
	case s := <-sig:
		logger.Info("shutting down", "signal", s.String())
	case err := <-errc:
		if err != nil {
			return err
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
	if debugSrv != nil {
		debugSrv.Shutdown(ctx)
	}
	return c.Close()
}

// debugMux assembles the opt-in debug surface: pprof profiling, expvar's
// /debug/vars (the collector's registries published alongside cmdline and
// memstats), and /debug/introspect's renderings of every metric.
func debugMux(c *collect.Collector) *http.ServeMux {
	regs := c.IntrospectRegistries()
	introspect.PublishExpvar("tempest", regs...)
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/debug/introspect", introspect.Handler(regs...))
	return mux
}

// uploadTrace streams one recorded trace file to a collector's ingest
// port — the network equivalent of handing the file to tempest-parse.
// loadPriors reads an instrumentation plan (tempest-instrument -plan)
// and extracts its static scores as policy priors. Skipped functions
// are excluded: they carry no hooks, so nominating them is pointless.
func loadPriors(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	plan, err := costmodel.ParsePlan(raw)
	if err != nil {
		return nil, err
	}
	priors := make(map[string]float64, len(plan.Entries))
	for _, e := range plan.Entries {
		if e.Mode != "skip" && e.Score > 0 {
			priors[e.Sym] = e.Score
		}
	}
	if len(priors) == 0 {
		return nil, fmt.Errorf("%s: no usable priors (no instrumented functions with positive scores)", path)
	}
	return priors, nil
}

func uploadTrace(path, addr string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	n, err := io.Copy(conn, f)
	if err != nil {
		return fmt.Errorf("upload after %d bytes: %w", n, err)
	}
	// Half-close signals EOF to the collector's scanner; waiting for the
	// peer's close confirms the trace was fully ingested before we exit.
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseWrite()
		io.Copy(io.Discard, conn)
	}
	return nil
}
