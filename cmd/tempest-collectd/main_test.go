package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"

	"tempest/internal/collect"
)

// startDaemon runs the daemon in-process on ephemeral ports and returns
// its ingest, HTTP and (when -debug-addr was passed) debug addresses plus
// a stop function.
func startDaemon(t *testing.T, extra ...string) (ingest, httpAddr, debugAddr string, done chan error) {
	t.Helper()
	var out bytes.Buffer
	pr, pw := io.Pipe()
	ready := make(chan *collect.Collector, 1)
	done = make(chan error, 1)
	args := append([]string{"-listen", "127.0.0.1:0", "-http", "127.0.0.1:0"}, extra...)
	go func() {
		done <- run(args, io.MultiWriter(&out, pw), ready)
		pw.Close()
	}()
	line := make([]byte, 256)
	n, err := pr.Read(line)
	if err != nil {
		t.Fatalf("daemon never printed addresses: %v", err)
	}
	fields := strings.Fields(string(line[:n]))
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "ingest=") || !strings.HasPrefix(fields[1], "http=") {
		t.Fatalf("unexpected address line %q", string(line[:n]))
	}
	if len(fields) == 3 {
		if !strings.HasPrefix(fields[2], "debug=") {
			t.Fatalf("unexpected third address token %q", fields[2])
		}
		debugAddr = strings.TrimPrefix(fields[2], "debug=")
	}
	<-ready
	return strings.TrimPrefix(fields[0], "ingest="), strings.TrimPrefix(fields[1], "http="), debugAddr, done
}

func TestDaemonUploadAndQuery(t *testing.T) {
	ingest, httpAddr, debugAddr, done := startDaemon(t)
	if debugAddr != "" {
		t.Fatalf("debug address %q printed without -debug-addr", debugAddr)
	}

	// Client mode ships the canned trace into the running daemon.
	if err := run([]string{"-upload", "testdata/smoke.tpst", "-to", ingest}, io.Discard, nil); err != nil {
		t.Fatalf("upload: %v", err)
	}

	res, err := http.Get(fmt.Sprintf("http://%s/api/hotspots?k=3", httpAddr))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("/api/hotspots: %d %s", res.StatusCode, body)
	}
	var resp struct {
		Functions []struct {
			Name string `json:"name"`
		} `json:"functions"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	// halo_exchange executes at each cycle's thermal peak (right after
	// the compute burn), so it tops the contribution ranking.
	if len(resp.Functions) != 3 || resp.Functions[0].Name != "halo_exchange" {
		t.Fatalf("hotspot ranking = %+v, want 3 functions with halo_exchange first", resp.Functions)
	}

	res, err = http.Get(fmt.Sprintf("http://%s/metrics", httpAddr))
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if !strings.Contains(string(metrics), "tempest_collect_events_total 150") {
		t.Errorf("metrics missing ingested events:\n%s", metrics)
	}

	// SIGTERM shuts the daemon down cleanly.
	syscall.Kill(syscall.Getpid(), syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit on SIGTERM")
	}
}

// TestDaemonDebugSurface boots with -debug-addr and checks all three
// debug endpoints answer: pprof's index, expvar's /debug/vars (with the
// published tempest variable), and /debug/introspect in both renderings.
func TestDaemonDebugSurface(t *testing.T) {
	_, _, debugAddr, done := startDaemon(t, "-debug-addr", "127.0.0.1:0")
	if debugAddr == "" {
		t.Fatal("-debug-addr did not print a debug= address token")
	}

	getBody := func(path string) string {
		t.Helper()
		res, err := http.Get(fmt.Sprintf("http://%s%s", debugAddr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer res.Body.Close()
		body, _ := io.ReadAll(res.Body)
		if res.StatusCode != 200 {
			t.Fatalf("GET %s: %d %s", path, res.StatusCode, body)
		}
		return string(body)
	}

	if body := getBody("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index missing profiles:\n%.300s", body)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(getBody("/debug/vars")), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["tempest"]; !ok {
		t.Error("/debug/vars missing the published tempest variable")
	}
	if body := getBody("/debug/introspect"); !strings.Contains(body, "tempest_collect_segments_total") {
		t.Errorf("/debug/introspect one-pager missing counters:\n%.300s", body)
	}
	if body := getBody("/debug/introspect?format=prometheus"); !strings.Contains(body, "# TYPE tempest_collect_fold_seconds summary") {
		t.Errorf("/debug/introspect?format=prometheus missing debug-only families:\n%.300s", body)
	}

	syscall.Kill(syscall.Getpid(), syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit on SIGTERM")
	}
}

func TestDaemonFlagErrors(t *testing.T) {
	if err := run([]string{"-upload", "testdata/smoke.tpst"}, io.Discard, nil); err == nil {
		t.Error("-upload without -to accepted")
	}
	if err := run([]string{"-upload", "does-not-exist.tpst", "-to", "127.0.0.1:1"}, io.Discard, nil); err == nil {
		t.Error("missing upload file accepted")
	}
	if err := run([]string{"-listen", "256.0.0.1:bad"}, io.Discard, nil); err == nil {
		t.Error("bad listen address accepted")
	}
}
