package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"tempest/internal/collect"
	"tempest/internal/trace"
	"tempest/internal/vclock"
)

// stopDaemon sends the in-process daemon a SIGTERM and waits for a clean
// exit.
func stopDaemon(t *testing.T, done chan error) {
	t.Helper()
	syscall.Kill(syscall.Getpid(), syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit on SIGTERM")
	}
}

func getBody(t *testing.T, httpAddr, path string) string {
	t.Helper()
	res, err := http.Get(fmt.Sprintf("http://%s%s", httpAddr, path))
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer res.Body.Close()
	body, _ := io.ReadAll(res.Body)
	if res.StatusCode != 200 {
		t.Fatalf("GET %s: %d %s", path, res.StatusCode, body)
	}
	return string(body)
}

// TestDaemonStoreSurvivesRestart is the daemon-level durability loop:
// boot with -store-dir, ingest, SIGTERM (which must flush the store
// before exiting), verify the chains offline, restart on the same
// directory, and get the same fleet answer back.
func TestDaemonStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ingest, httpAddr, _, done := startDaemon(t, "-store-dir", dir)
	if err := run([]string{"-upload", "testdata/smoke.tpst", "-to", ingest}, io.Discard, nil); err != nil {
		t.Fatalf("upload: %v", err)
	}
	if body := getBody(t, httpAddr, "/healthz"); body != "ok\n" {
		t.Fatalf("/healthz with a healthy store = %q, want \"ok\\n\"", body)
	}
	before := getBody(t, httpAddr, "/api/hotspots?k=3")
	stopDaemon(t, done)

	// The flushed store verifies end to end, through the same entry point
	// operators use.
	var rep bytes.Buffer
	if err := run([]string{"-verify-store", "-store-dir", dir}, &rep, nil); err != nil {
		t.Fatalf("-verify-store: %v\n%s", err, rep.String())
	}
	if !strings.Contains(rep.String(), "ok") || strings.Contains(rep.String(), "FAIL") {
		t.Fatalf("-verify-store report:\n%s", rep.String())
	}

	// Restart on the same directory: replay must reproduce the answer.
	_, httpAddr2, _, done2 := startDaemon(t, "-store-dir", dir)
	if after := getBody(t, httpAddr2, "/api/hotspots?k=3"); after != before {
		t.Errorf("hotspots diverged across restart:\n--- before ---\n%s--- after ---\n%s", before, after)
	}
	if body := getBody(t, httpAddr2, "/api/profile/1?format=text"); !strings.Contains(body, "halo_exchange") {
		t.Errorf("recovered node profile missing functions:\n%s", body)
	}
	stopDaemon(t, done2)

	if err := run([]string{"-verify-store"}, io.Discard, nil); err == nil {
		t.Error("-verify-store without -store-dir accepted")
	}
}

// TestDaemonStoreDirFailFast pins the startup contract: a -store-dir the
// daemon can't use is a boot error, not a silently degraded collector.
func TestDaemonStoreDirFailFast(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-listen", "127.0.0.1:0", "-http", "127.0.0.1:0",
		"-store-dir", filepath.Join(blocker, "store")}, io.Discard, nil)
	if err == nil {
		t.Fatal("unusable -store-dir accepted")
	}
}

// --- SIGKILL chaos: the crash-recovery property, end to end ------------

var daemonBin struct {
	once sync.Once
	path string
	err  error
}

// buildDaemonBinary compiles tempest-collectd once per test run so chaos
// tests can kill a real process, not an in-process goroutine.
func buildDaemonBinary(t *testing.T) string {
	t.Helper()
	daemonBin.once.Do(func() {
		dir, err := os.MkdirTemp("", "tempest-collectd-bin-")
		if err != nil {
			daemonBin.err = err
			return
		}
		daemonBin.path = filepath.Join(dir, "tempest-collectd")
		out, err := exec.Command("go", "build", "-o", daemonBin.path, ".").CombinedOutput()
		if err != nil {
			daemonBin.err = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if daemonBin.err != nil {
		t.Fatal(daemonBin.err)
	}
	return daemonBin.path
}

// freeAddr reserves an ephemeral 127.0.0.1 port and releases it — chaos
// restarts need the daemon to come back on the same address.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startDaemonProc launches a real tempest-collectd subprocess and waits
// for its address line, so a test can SIGKILL it mid-ingest.
func startDaemonProc(t *testing.T, bin, ingest, httpAddr, dir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, "-listen", ingest, "-http", httpAddr, "-store-dir", dir, "-log-level", "error")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	lines := make(chan string, 1)
	go func() {
		line, _ := bufio.NewReader(stdout).ReadString('\n')
		lines <- line
	}()
	select {
	case line := <-lines:
		if !strings.HasPrefix(line, "ingest=") {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("daemon subprocess printed %q, want address line", line)
		}
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("daemon subprocess never printed addresses")
	}
	return cmd
}

// buildChaosTrace mirrors internal/collect's test trace: deterministic
// enter/sample/exit cycles whose sample values round-trip the ship-path
// quantisation bit-for-bit, so shipped and locally ingested profiles are
// byte-identical.
func buildChaosTrace(t *testing.T, node uint32, funcs []string, calls int) *trace.Trace {
	t.Helper()
	clk := vclock.NewVirtualClock()
	tr, err := trace.NewTracer(trace.Config{Clock: clk, NodeID: node, Rank: node, LaneBufferCap: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	lane := tr.NewLane()
	ids := make([]uint32, len(funcs))
	for i, name := range funcs {
		ids[i] = tr.RegisterFunc(name)
	}
	for i := 0; i < calls; i++ {
		f := ids[i%len(ids)]
		clk.Advance(time.Millisecond)
		lane.Enter(f)
		clk.Advance(time.Millisecond)
		tr.Sample(0, 40+float64(node)+0.25*float64(i%8)+float64(i%len(ids)))
		clk.Advance(time.Duration(1+i%3) * time.Millisecond)
		if err := lane.Exit(f); err != nil {
			t.Fatal(err)
		}
	}
	return tr.Finish()
}

// TestDaemonStoreChaosSIGKILL is the acceptance property from the issue:
// SIGKILL a durable collector mid-ingest, restart it on the same
// -store-dir, and every batch the shipper was ever acked for must be
// present — the fleet hot-spot answer equals an uninterrupted run's, and
// the store verifies end to end.
func TestDaemonStoreChaosSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test")
	}
	bin := buildDaemonBinary(t)
	dir := t.TempDir()
	ingestAddr, httpAddr := freeAddr(t), freeAddr(t)

	tr := buildChaosTrace(t, 1, []string{"compute", "halo_exchange", "io_flush"}, 120)
	const batchLen = 5
	ship := func(s *collect.Shipper, from, to int) {
		for i := from; i < to; i += batchLen {
			end := i + batchLen
			if end > to {
				end = to
			}
			if err := s.Ship(tr.Events[i:end], tr.Sym); err != nil {
				t.Fatalf("Ship at %d: %v", i, err)
			}
		}
	}

	proc1 := startDaemonProc(t, bin, ingestAddr, httpAddr, dir)
	s := collect.NewShipper(ingestAddr, tr.NodeID, tr.Rank, collect.ShipperOptions{
		DialBackoffBase: 5 * time.Millisecond,
		DialBackoffMax:  100 * time.Millisecond,
		FlushTimeout:    30 * time.Second,
	})
	half := len(tr.Events) / 2
	ship(s, 0, half)

	// Wait until the daemon has genuinely acked work, then kill it
	// without warning — no flush, no signal handler, nothing.
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().AckedSegments < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never acked segments: %+v", s.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := proc1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	proc1.Wait()

	// Restart on the same address and directory; the shipper reconnects,
	// resumes from the replayed cursor, and ships the rest.
	proc2 := startDaemonProc(t, bin, ingestAddr, httpAddr, dir)
	defer func() {
		proc2.Process.Signal(syscall.SIGTERM)
		proc2.Wait()
	}()
	ship(s, half, len(tr.Events))
	if err := s.Close(); err != nil {
		t.Fatalf("shipper close: %v", err)
	}
	st := s.Stats()
	if st.DroppedSegments != 0 || st.AckedSegments != st.EnqueuedSegments {
		t.Fatalf("shipper lost data across the crash: %+v", st)
	}

	// Oracle: the same trace into a collector that never crashed. The
	// recovered daemon must give the byte-identical API answer.
	oracle := collect.New(collect.Options{})
	defer oracle.Close()
	if err := oracle.IngestTrace(tr); err != nil {
		t.Fatal(err)
	}
	osrv := httptest.NewServer(oracle.Handler())
	defer osrv.Close()
	want := getBody(t, strings.TrimPrefix(osrv.URL, "http://"), "/api/hotspots?k=10")
	got := getBody(t, httpAddr, "/api/hotspots?k=10")
	if got != want {
		t.Errorf("hotspots after SIGKILL recovery diverge from uninterrupted run:\n--- recovered ---\n%s--- oracle ---\n%s", got, want)
	}
	gotProf := getBody(t, httpAddr, "/api/profile/1?format=text")
	wantProf := getBody(t, strings.TrimPrefix(osrv.URL, "http://"), "/api/profile/1?format=text")
	if gotProf != wantProf {
		t.Errorf("node profile after SIGKILL recovery diverges:\n--- recovered ---\n%s--- oracle ---\n%s", gotProf, wantProf)
	}

	// Graceful stop, then the operator-facing verifier over the full
	// crash-spanning history must pass.
	proc2.Process.Signal(syscall.SIGTERM)
	if err := proc2.Wait(); err != nil {
		t.Fatalf("daemon exit after SIGTERM: %v", err)
	}
	out, err := exec.Command(bin, "-verify-store", "-store-dir", dir).CombinedOutput()
	if err != nil {
		t.Fatalf("-verify-store after chaos: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "ok") {
		t.Fatalf("-verify-store report after chaos:\n%s", out)
	}
}
