package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunMicroDReport(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-bench", "micro-d", "-nodes", "1", "-format", "report"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Function: foo1", "not significant", "Min"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestRunAllFormats(t *testing.T) {
	for _, format := range []string{"report", "csv", "json", "plot", "gnuplot"} {
		var out bytes.Buffer
		err := run([]string{"-bench", "micro-c", "-nodes", "1", "-format", format}, &out)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if out.Len() == 0 {
			t.Errorf("%s produced no output", format)
		}
	}
}

func TestRunNASKernels(t *testing.T) {
	for _, bench := range []string{"ft", "ep", "is"} {
		var out bytes.Buffer
		err := run([]string{"-bench", bench, "-class", "S", "-nodes", "4", "-format", "csv"}, &out)
		if err != nil {
			t.Fatalf("%s: %v", bench, err)
		}
		if !strings.HasPrefix(out.String(), "time_s,") {
			t.Errorf("%s: csv header missing", bench)
		}
	}
}

func TestRunCelsius(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bench", "micro-a", "-nodes", "1", "-unit", "C", "-format", "json"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "°C") {
		t.Error("unit not propagated")
	}
}

func TestRunTraceDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "traces")
	var out bytes.Buffer
	err := run([]string{"-bench", "micro-a", "-nodes", "2", "-trace-dir", dir, "-format", "csv"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"node0.tpst", "node1.tpst"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("trace file %s: %v", f, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-bench", "nope"},
		{"-bench", "micro-z"},
		{"-bench", "ft", "-class", "Q"},
		{"-unit", "K"},
		{"-format", "pdf", "-bench", "micro-a", "-nodes", "1"},
		{"-nodes", "-1"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestWorkloadResolution(t *testing.T) {
	for _, name := range []string{"ft", "bt", "sp", "lu", "ep", "cg", "mg", "is"} {
		body, cost, err := workload(name, "S")
		if err != nil || body == nil || cost == nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	for _, name := range []string{"micro-a", "micro-e"} {
		body, cost, err := workload(name, "S")
		if err != nil || body == nil {
			t.Errorf("%s: %v", name, err)
		}
		if cost != nil {
			t.Errorf("%s should not set a NAS cost model", name)
		}
	}
}

func TestRunThrottleComparison(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-bench", "micro-b", "-nodes", "1", "-throttle", "foo1:0.6:1.4"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Thermal optimisation effect", "foo1", "makespan"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q:\n%s", want, s)
		}
	}
}

func TestRunThrottleBadSpec(t *testing.T) {
	for _, spec := range []string{"foo1", "foo1:x:1.4", "foo1:0.6:y"} {
		var out bytes.Buffer
		if err := run([]string{"-bench", "micro-b", "-nodes", "1", "-throttle", spec}, &out); err == nil {
			t.Errorf("spec %q: expected error", spec)
		}
	}
}
