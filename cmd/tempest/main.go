// Command tempest profiles a workload on the simulated cluster and prints
// its thermal profile — the end-to-end flow of the paper's Figure 1:
// instrument, run, sample, parse, report.
//
// Usage:
//
//	tempest -bench ft -class S -nodes 4 -format report
//	tempest -bench micro-d -format plot
//	tempest -bench bt -class W -nodes 4 -format csv > bt.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tempest"
	"tempest/internal/cluster"
	"tempest/internal/micro"
	"tempest/internal/nas"
	"tempest/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tempest:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tempest", flag.ContinueOnError)
	bench := fs.String("bench", "micro-d", "workload: ft|bt|sp|lu|ep|cg|cg2d|mg|is|micro-a..micro-e")
	class := fs.String("class", "S", "NAS problem class: S|W|A")
	nodes := fs.Int("nodes", 4, "cluster nodes")
	ranks := fs.Int("ranks", 1, "MPI ranks per node")
	seed := fs.Int64("seed", 1, "simulation seed")
	hetero := fs.Bool("hetero", true, "per-node thermal variation")
	unit := fs.String("unit", "F", "temperature unit: F|C")
	format := fs.String("format", "report", "output: report|csv|json|plot|gnuplot")
	sensor := fs.Int("sensor", 0, "sensor index for plot output")
	traceDir := fs.String("trace-dir", "", "directory to dump raw per-node traces")
	throttle := fs.String("throttle", "", "optimisation what-if: FUNC:UTILSCALE:TIMESCALE — run twice and print the comparison")
	if err := fs.Parse(args); err != nil {
		return err
	}

	u := tempest.Fahrenheit
	switch strings.ToUpper(*unit) {
	case "F":
	case "C":
		u = tempest.Celsius
	default:
		return fmt.Errorf("unknown unit %q", *unit)
	}

	body, cost, err := workload(*bench, *class)
	if err != nil {
		return err
	}
	cfg := tempest.Config{
		Nodes:         *nodes,
		RanksPerNode:  *ranks,
		Seed:          *seed,
		Heterogeneous: *hetero,
		Unit:          u,
		Cost:          cost,
	}
	if *throttle != "" {
		return runComparison(out, cfg, body, *throttle)
	}

	s, err := tempest.NewSession(cfg)
	if err != nil {
		return err
	}
	p, err := s.Run(body)
	if err != nil {
		return err
	}

	if *traceDir != "" {
		if err := dumpTraces(p, *traceDir); err != nil {
			return err
		}
	}

	switch *format {
	case "report":
		return p.WriteReport(out)
	case "csv":
		return p.WriteCSV(out)
	case "json":
		return p.WriteJSON(out)
	case "plot":
		return p.Plot(out, *sensor)
	case "gnuplot":
		return report.WriteGnuplot(out, p.Profile, *sensor)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}

// workload resolves the -bench flag to a body and (for NAS codes) the
// rate-matched cost model.
func workload(bench, classStr string) (func(rc *tempest.Rank) error, *cluster.CostModel, error) {
	cost := nas.FTCost()
	if strings.HasPrefix(bench, "micro-") {
		d := micro.Durations{}
		var b micro.Bench
		switch strings.ToUpper(strings.TrimPrefix(bench, "micro-")) {
		case "A":
			b = micro.A(d)
		case "B":
			b = micro.B(d)
		case "C":
			b = micro.C(d)
		case "D":
			b = micro.D(d)
		case "E":
			b = micro.E(d)
		default:
			return nil, nil, fmt.Errorf("unknown micro-benchmark %q", bench)
		}
		return b.Body, nil, nil
	}
	class, err := nas.ParseClass(classStr)
	if err != nil {
		return nil, nil, err
	}
	switch bench {
	case "ft":
		return func(rc *tempest.Rank) error { _, err := nas.RunFT(rc, class); return err }, &cost, nil
	case "bt":
		return func(rc *tempest.Rank) error { _, err := nas.RunBT(rc, class); return err }, &cost, nil
	case "ep":
		return func(rc *tempest.Rank) error { _, err := nas.RunEP(rc, class); return err }, &cost, nil
	case "cg":
		return func(rc *tempest.Rank) error { _, err := nas.RunCG(rc, class); return err }, &cost, nil
	case "cg2d":
		return func(rc *tempest.Rank) error {
			p, err := nas.CGClassParams(class)
			if err != nil {
				return err
			}
			_, err = nas.RunCG2DParams(rc, p)
			return err
		}, &cost, nil
	case "mg":
		return func(rc *tempest.Rank) error { _, err := nas.RunMG(rc, class); return err }, &cost, nil
	case "is":
		return func(rc *tempest.Rank) error { _, err := nas.RunIS(rc, class); return err }, &cost, nil
	case "sp":
		return func(rc *tempest.Rank) error { _, err := nas.RunSP(rc, class); return err }, &cost, nil
	case "lu":
		return func(rc *tempest.Rank) error { _, err := nas.RunLU(rc, class); return err }, &cost, nil
	default:
		return nil, nil, fmt.Errorf("unknown benchmark %q", bench)
	}
}

// runComparison executes the workload twice — baseline and with the
// requested per-function throttle — and prints the question-4 trade-off.
func runComparison(out io.Writer, cfg tempest.Config, body func(rc *tempest.Rank) error, spec string) error {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return fmt.Errorf("throttle spec %q, want FUNC:UTILSCALE:TIMESCALE", spec)
	}
	var utilScale, timeScale float64
	if _, err := fmt.Sscanf(parts[1], "%f", &utilScale); err != nil {
		return fmt.Errorf("bad util scale %q: %w", parts[1], err)
	}
	if _, err := fmt.Sscanf(parts[2], "%f", &timeScale); err != nil {
		return fmt.Errorf("bad time scale %q: %w", parts[2], err)
	}
	th := map[string]tempest.Throttle{parts[0]: {UtilScale: utilScale, TimeScale: timeScale}}

	runOnce := func(t map[string]tempest.Throttle) (*tempest.Profile, error) {
		s, err := tempest.NewSession(cfg)
		if err != nil {
			return nil, err
		}
		return s.Run(func(rc *tempest.Rank) error {
			rc.SetThrottles(t)
			return body(rc)
		})
	}
	before, err := runOnce(nil)
	if err != nil {
		return err
	}
	after, err := runOnce(th)
	if err != nil {
		return err
	}
	cmp, err := before.Compare(after, 0)
	if err != nil {
		return err
	}
	return report.WriteComparison(out, cmp, cfg.Unit.String())
}

func dumpTraces(p *tempest.Profile, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for n := range p.Traces {
		f, err := os.Create(fmt.Sprintf("%s/node%d.tpst", dir, n))
		if err != nil {
			return err
		}
		if err := p.WriteTrace(f, n); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
