package main

import (
	"testing"
)

func TestListExitsClean(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
}

func TestUnknownPassIsUsageError(t *testing.T) {
	if code := run([]string{"-passes", "nosuchpass", "./."}); code != 2 {
		t.Fatalf("unknown pass exited %d, want 2", code)
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	// vclock carries the sanctioned (ignored) wall-clock reads: a clean
	// run over it exercises loading, analysis and ignore handling.
	if code := run([]string{"./internal/vclock"}); code != 0 {
		t.Fatalf("vet over internal/vclock exited non-zero")
	}
}

func TestBadPatternExitsTwo(t *testing.T) {
	if code := run([]string{"./no/such/dir"}); code != 2 {
		t.Fatalf("bad pattern exited %d, want 2", code)
	}
}
