// Command tempest-vet runs Tempest's invariant suite — the project's
// custom static analyses — over a set of packages, in the style of
// go vet:
//
//	tempest-vet ./...                      # whole repo, all passes
//	tempest-vet -passes wallclock,naneq ./internal/...
//	tempest-vet -tests ./internal/trace    # include in-package _test.go
//	tempest-vet -list                      # catalogue of passes
//
// Exit status: 0 clean, 1 findings reported, 2 usage or load failure
// (including type errors in the target packages). Individual findings
// can be silenced with a `//tempest:ignore <pass>` comment on or above
// the flagged line; see internal/analysis.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"tempest/internal/analysis"
	"tempest/internal/analysis/passes"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("tempest-vet", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		passList = fs.String("passes", "", "comma-separated subset of passes to run (default: all)")
		tests    = fs.Bool("tests", false, "also analyse in-package _test.go files")
		list     = fs.Bool("list", false, "print the pass catalogue and exit")
	)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tempest-vet [flags] [package patterns]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	all := passes.All()
	if *list {
		for _, a := range all {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	selected := all
	if *passList != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*passList, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				known := make([]string, 0, len(byName))
				for n := range byName {
					known = append(known, n)
				}
				sort.Strings(known)
				fmt.Fprintf(os.Stderr, "tempest-vet: unknown pass %q (known: %s)\n", name, strings.Join(known, ", "))
				return 2
			}
			selected = append(selected, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: ".", IncludeTests: *tests}, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tempest-vet: %v\n", err)
		return 2
	}
	findings, err := analysis.Run(pkgs, selected)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tempest-vet: %v\n", err)
		return 2
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "tempest-vet: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}
