// Command nasrun drives the NAS Parallel Benchmark ports on the simulated
// cluster and prints each kernel's verification outcome and makespan —
// the workload driver behind the paper's §4.3 evaluation.
//
// Usage:
//
//	nasrun                     # all kernels, class S, 4 nodes
//	nasrun -kernels ft,bt -class W -nodes 4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"tempest/internal/cluster"
	"tempest/internal/nas"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nasrun:", err)
		os.Exit(1)
	}
}

type kernelRun struct {
	name string
	body func(rc *cluster.Rank) (nas.Verification, time.Duration, error)
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nasrun", flag.ContinueOnError)
	kernels := fs.String("kernels", "ft,bt,sp,lu,ep,cg,cg2d,mg,is", "comma-separated kernels")
	classStr := fs.String("class", "S", "problem class: S|W|A")
	nodes := fs.Int("nodes", 4, "cluster nodes")
	seed := fs.Int64("seed", 1, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	class, err := nas.ParseClass(*classStr)
	if err != nil {
		return err
	}

	table := map[string]kernelRun{
		"ft": {"FT", func(rc *cluster.Rank) (nas.Verification, time.Duration, error) {
			r, err := nas.RunFT(rc, class)
			if err != nil {
				return nas.Verification{}, 0, err
			}
			return r.Verification, r.Makespan, nil
		}},
		"bt": {"BT", func(rc *cluster.Rank) (nas.Verification, time.Duration, error) {
			r, err := nas.RunBT(rc, class)
			if err != nil {
				return nas.Verification{}, 0, err
			}
			return r.Verification, r.Makespan, nil
		}},
		"ep": {"EP", func(rc *cluster.Rank) (nas.Verification, time.Duration, error) {
			r, err := nas.RunEP(rc, class)
			if err != nil {
				return nas.Verification{}, 0, err
			}
			return r.Verification, r.Makespan, nil
		}},
		"cg": {"CG", func(rc *cluster.Rank) (nas.Verification, time.Duration, error) {
			r, err := nas.RunCG(rc, class)
			if err != nil {
				return nas.Verification{}, 0, err
			}
			return r.Verification, r.Makespan, nil
		}},
		"cg2d": {"CG2D", func(rc *cluster.Rank) (nas.Verification, time.Duration, error) {
			p, err := nas.CGClassParams(class)
			if err != nil {
				return nas.Verification{}, 0, err
			}
			r, err := nas.RunCG2DParams(rc, p)
			if err != nil {
				return nas.Verification{}, 0, err
			}
			return r.Verification, r.Makespan, nil
		}},
		"mg": {"MG", func(rc *cluster.Rank) (nas.Verification, time.Duration, error) {
			r, err := nas.RunMG(rc, class)
			if err != nil {
				return nas.Verification{}, 0, err
			}
			return r.Verification, r.Makespan, nil
		}},
		"is": {"IS", func(rc *cluster.Rank) (nas.Verification, time.Duration, error) {
			r, err := nas.RunIS(rc, class)
			if err != nil {
				return nas.Verification{}, 0, err
			}
			return r.Verification, r.Makespan, nil
		}},
		"sp": {"SP", func(rc *cluster.Rank) (nas.Verification, time.Duration, error) {
			r, err := nas.RunSP(rc, class)
			if err != nil {
				return nas.Verification{}, 0, err
			}
			return r.Verification, r.Makespan, nil
		}},
		"lu": {"LU", func(rc *cluster.Rank) (nas.Verification, time.Duration, error) {
			r, err := nas.RunLU(rc, class)
			if err != nil {
				return nas.Verification{}, 0, err
			}
			return r.Verification, r.Makespan, nil
		}},
	}

	fmt.Fprintf(out, "NAS Parallel Benchmarks (Go port) — class %s, NP=%d\n", class, *nodes)
	fmt.Fprintf(out, "%-4s %-8s %-12s %s\n", "code", "status", "makespan", "detail")
	failures := 0
	for _, key := range strings.Split(*kernels, ",") {
		key = strings.TrimSpace(strings.ToLower(key))
		k, ok := table[key]
		if !ok {
			return fmt.Errorf("unknown kernel %q", key)
		}
		c, err := cluster.New(cluster.Config{
			Nodes: *nodes, RanksPerNode: 1, Seed: *seed,
			Cost: nas.FTCost(), Heterogeneous: true,
		})
		if err != nil {
			return err
		}
		var verif nas.Verification
		var makespan time.Duration
		if _, err := c.Run(func(rc *cluster.Rank) error {
			v, m, err := k.body(rc)
			if rc.Rank() == 0 {
				verif, makespan = v, m
			}
			return err
		}); err != nil {
			return fmt.Errorf("%s: %w", k.name, err)
		}
		status := "PASS"
		if !verif.Passed {
			status = "FAIL"
			failures++
		}
		fmt.Fprintf(out, "%-4s %-8s %-12s %s\n", k.name, status, makespan.Round(time.Millisecond), verif.Detail)
	}
	if failures > 0 {
		return fmt.Errorf("%d kernels failed verification", failures)
	}
	return nil
}
