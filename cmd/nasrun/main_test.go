package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunFTandEP(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kernels", "ft,ep", "-class", "S", "-nodes", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "FT   PASS") || !strings.Contains(s, "EP   PASS") {
		t.Errorf("output:\n%s", s)
	}
}

func TestRunUnknownKernel(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kernels", "xx"}, &out); err == nil {
		t.Error("unknown kernel should fail")
	}
}

func TestRunBadClass(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-class", "C"}, &out); err == nil {
		t.Error("unwired class should fail")
	}
}
