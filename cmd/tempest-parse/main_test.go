package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tempest/internal/trace"
	"tempest/internal/vclock"
)

// writeSampleTrace creates a small TPST file on disk.
func writeSampleTrace(t *testing.T, nodeID uint32) string {
	t.Helper()
	clk := vclock.NewVirtualClock()
	tr, err := trace.NewTracer(trace.Config{Clock: clk, NodeID: nodeID})
	if err != nil {
		t.Fatal(err)
	}
	tr.MarkerAt("sensor:0:CPU 0 Core", 0)
	lane := tr.NewLane()
	fid := tr.RegisterFunc("hot")
	lane.EnterAt(fid, 0)
	for i := 0; i <= 40; i++ {
		tr.SampleAt(0, 35+float64(i)*0.2, time.Duration(i)*250*time.Millisecond)
	}
	_ = lane.ExitAt(fid, 10*time.Second)
	path := filepath.Join(t.TempDir(), "trace.tpst")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Finish().Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseReport(t *testing.T) {
	path := writeSampleTrace(t, 3)
	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Function: hot") || !strings.Contains(s, "node 3") {
		t.Errorf("output:\n%s", s)
	}
	if !strings.Contains(s, "CPU 0 Core") {
		t.Error("labels missing")
	}
}

func TestParseFormats(t *testing.T) {
	path := writeSampleTrace(t, 0)
	for _, format := range []string{"csv", "json", "plot"} {
		var out bytes.Buffer
		if err := run([]string{"-format", format, path}, &out); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if out.Len() == 0 {
			t.Errorf("%s produced no output", format)
		}
	}
}

func TestParseMultipleNodes(t *testing.T) {
	p1 := writeSampleTrace(t, 0)
	p2 := writeSampleTrace(t, 1)
	var out bytes.Buffer
	if err := run([]string{p1, p2}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "node 0") || !strings.Contains(out.String(), "node 1") {
		t.Error("multi-node output incomplete")
	}
}

func TestParseErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("no files should fail")
	}
	if err := run([]string{"-unit", "K", "x"}, &out); err == nil {
		t.Error("bad unit should fail")
	}
	if err := run([]string{"/nonexistent/trace.tpst"}, &out); err == nil {
		t.Error("missing file should fail")
	}
	garbage := filepath.Join(t.TempDir(), "garbage")
	if err := os.WriteFile(garbage, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{garbage}, &out); err == nil {
		t.Error("garbage file should fail")
	}
	path := writeSampleTrace(t, 0)
	if err := run([]string{"-format", "pdf", path}, &out); err == nil {
		t.Error("bad format should fail")
	}
}

// writeStaggerTrace records a two-lane barrier stagger on one node: the
// fast lane waits 3s in MPI_Barrier while "straggler_work" finishes.
func writeStaggerTrace(t *testing.T, nodeID uint32) string {
	t.Helper()
	clk := vclock.NewVirtualClock()
	tr, err := trace.NewTracer(trace.Config{Clock: clk, NodeID: nodeID})
	if err != nil {
		t.Fatal(err)
	}
	fast, slow := tr.NewLane(), tr.NewLane()
	fastWork := tr.RegisterFunc("fast_work")
	slowWork := tr.RegisterFunc("straggler_work")
	barrier := tr.RegisterFunc("MPI_Barrier")
	sec := time.Second
	fast.EnterAt(fastWork, 0)
	slow.EnterAt(slowWork, 0)
	_ = fast.ExitAt(fastWork, 4*sec)
	fast.EnterAt(barrier, 4*sec)
	_ = slow.ExitAt(slowWork, 7*sec)
	slow.EnterAt(barrier, 7*sec)
	_ = fast.ExitAt(barrier, 8*sec)
	_ = slow.ExitAt(barrier, 8*sec)
	path := filepath.Join(t.TempDir(), "stagger.tpst")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Finish().Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseCritPath(t *testing.T) {
	path := writeStaggerTrace(t, 0)
	var out bytes.Buffer
	if err := run([]string{"-critpath", path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"Critical path —",
		"straggler_work",
		"MPI_Barrier",
		"Straggler:",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "Function:") {
		t.Error("-critpath should replace the heat profile")
	}
}

func TestParseCritPathJSON(t *testing.T) {
	path := writeStaggerTrace(t, 0)
	var out bytes.Buffer
	if err := run([]string{"-critpath", "-format", "json", path}, &out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DurationS float64 `json:"duration_s"`
		SerialS   float64 `json:"serial_s"`
		Functions []struct {
			Name string `json:"name"`
		} `json:"functions"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if doc.DurationS != 8 || doc.SerialS != 3 {
		t.Errorf("doc = %+v", doc)
	}
	if len(doc.Functions) == 0 || doc.Functions[0].Name != "straggler_work" {
		t.Errorf("functions = %+v, want straggler_work ranked first", doc.Functions)
	}
}

func TestParseTimeline(t *testing.T) {
	path := writeStaggerTrace(t, 0)
	var out bytes.Buffer
	if err := run([]string{"-timeline", "-timeline-width", "8", path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Timeline —") || !strings.Contains(s, "#=busy ~=wait .=off") {
		t.Errorf("missing gantt header:\n%s", s)
	}
	// 8 columns over 8s: fast lane busy 4 then waits 4.
	if !strings.Contains(s, "|####~~~~|") {
		t.Errorf("missing fast-lane row:\n%s", s)
	}

	out.Reset()
	if err := run([]string{"-timeline", "-format", "json", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "\"state\": \"wait\"") {
		t.Errorf("timeline JSON missing wait segment:\n%s", out.String())
	}
}

func TestParseCritPathStreamMatchesBatch(t *testing.T) {
	path := writeStaggerTrace(t, 0)
	var batch, stream bytes.Buffer
	if err := run([]string{"-critpath", "-timeline", path}, &batch); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-critpath", "-timeline", "-stream", path}, &stream); err != nil {
		t.Fatal(err)
	}
	if batch.String() != stream.String() {
		t.Errorf("stream output differs from batch:\n--- batch\n%s\n--- stream\n%s", batch.String(), stream.String())
	}
	if err := run([]string{"-critpath", "-stream", "-format", "json", path}, &stream); err == nil {
		t.Error("-critpath -stream -format json should fail")
	}
}

func TestParseCritPathMergesNodes(t *testing.T) {
	p1 := writeStaggerTrace(t, 0)
	p2 := writeStaggerTrace(t, 1)
	var out bytes.Buffer
	if err := run([]string{"-critpath", p1, p2}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "over 4 lanes") {
		t.Errorf("merged view should see 4 lanes:\n%s", s)
	}
	if !strings.Contains(s, "n1/l") {
		t.Errorf("missing node-1 lanes:\n%s", s)
	}
	if err := run([]string{"-critpath", "-format", "csv", p1}, &out); err == nil {
		t.Error("-critpath -format csv should fail")
	}
}
