package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tempest/internal/trace"
	"tempest/internal/vclock"
)

// writeSampleTrace creates a small TPST file on disk.
func writeSampleTrace(t *testing.T, nodeID uint32) string {
	t.Helper()
	clk := vclock.NewVirtualClock()
	tr, err := trace.NewTracer(trace.Config{Clock: clk, NodeID: nodeID})
	if err != nil {
		t.Fatal(err)
	}
	tr.MarkerAt("sensor:0:CPU 0 Core", 0)
	lane := tr.NewLane()
	fid := tr.RegisterFunc("hot")
	lane.EnterAt(fid, 0)
	for i := 0; i <= 40; i++ {
		tr.SampleAt(0, 35+float64(i)*0.2, time.Duration(i)*250*time.Millisecond)
	}
	_ = lane.ExitAt(fid, 10*time.Second)
	path := filepath.Join(t.TempDir(), "trace.tpst")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Finish().Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseReport(t *testing.T) {
	path := writeSampleTrace(t, 3)
	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Function: hot") || !strings.Contains(s, "node 3") {
		t.Errorf("output:\n%s", s)
	}
	if !strings.Contains(s, "CPU 0 Core") {
		t.Error("labels missing")
	}
}

func TestParseFormats(t *testing.T) {
	path := writeSampleTrace(t, 0)
	for _, format := range []string{"csv", "json", "plot"} {
		var out bytes.Buffer
		if err := run([]string{"-format", format, path}, &out); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if out.Len() == 0 {
			t.Errorf("%s produced no output", format)
		}
	}
}

func TestParseMultipleNodes(t *testing.T) {
	p1 := writeSampleTrace(t, 0)
	p2 := writeSampleTrace(t, 1)
	var out bytes.Buffer
	if err := run([]string{p1, p2}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "node 0") || !strings.Contains(out.String(), "node 1") {
		t.Error("multi-node output incomplete")
	}
}

func TestParseErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("no files should fail")
	}
	if err := run([]string{"-unit", "K", "x"}, &out); err == nil {
		t.Error("bad unit should fail")
	}
	if err := run([]string{"/nonexistent/trace.tpst"}, &out); err == nil {
		t.Error("missing file should fail")
	}
	garbage := filepath.Join(t.TempDir(), "garbage")
	if err := os.WriteFile(garbage, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{garbage}, &out); err == nil {
		t.Error("garbage file should fail")
	}
	path := writeSampleTrace(t, 0)
	if err := run([]string{"-format", "pdf", path}, &out); err == nil {
		t.Error("bad format should fail")
	}
}
