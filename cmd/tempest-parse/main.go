// Command tempest-parse is the offline trace parser: it reads one or more
// TPST trace files (one per node), merges each node's function timeline
// with its temperature samples and prints the per-function statistical
// profile — the post-processing step of the paper's Figure 1.
//
// Usage:
//
//	tempest-parse node0.tpst node1.tpst
//	tempest-parse -format plot -sensor 0 node0.tpst
//	tempest-parse -stream -format csv node*.tpst
//	tempd -o - | tempest-parse -
//
// By default traces are loaded whole and parsed in parallel (one worker
// per core). With -stream each file flows through the segment scanner
// and online profile builder instead, and each node's output is emitted
// as soon as that node finishes — memory stays bounded by one segment
// plus one node's profile, independent of trace length, so arbitrarily
// long recordings parse in constant space.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tempest/internal/critpath"
	"tempest/internal/parser"
	"tempest/internal/report"
	"tempest/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tempest-parse:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tempest-parse", flag.ContinueOnError)
	unit := fs.String("unit", "F", "temperature unit: F|C")
	format := fs.String("format", "report", "output: report|csv|json|plot|gnuplot")
	sensor := fs.Int("sensor", 0, "sensor index for plot output")
	top := fs.Int("top", 0, "limit report to the N longest functions (0 = all)")
	labels := fs.Bool("labels", true, "print sensor labels")
	stream := fs.Bool("stream", false, "stream traces through the online builder with bounded memory (report|csv|json)")
	crit := fs.Bool("critpath", false, "print the critical-path (serialization) analysis instead of the heat profile; batch mode merges all traces into one cluster-wide view, -stream analyzes per node")
	timeline := fs.Bool("timeline", false, "print the per-lane busy/wait timeline gantt instead of the heat profile")
	width := fs.Int("timeline-width", 0, "timeline gantt columns (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if len(files) == 0 {
		return fmt.Errorf("no trace files given (use - for stdin)")
	}

	u := parser.Fahrenheit
	switch strings.ToUpper(*unit) {
	case "F":
	case "C":
		u = parser.Celsius
	default:
		return fmt.Errorf("unknown unit %q", *unit)
	}

	if *crit || *timeline {
		if *stream {
			if *format != "report" {
				return fmt.Errorf("-critpath/-timeline with -stream supports only -format report")
			}
			return runCritPathStream(files, *crit, *timeline, *width, report.Options{TopN: *top}, out)
		}
		traces, err := loadTraces(files)
		if err != nil {
			return err
		}
		return runCritPathBatch(traces, *crit, *timeline, *width, report.Options{TopN: *top}, *format, out)
	}

	if *stream {
		return runStream(files, u, *format, report.Options{
			OnlySignificant: true, Labels: *labels, TopN: *top,
		}, out)
	}

	traces, err := loadTraces(files)
	if err != nil {
		return err
	}

	p, err := parser.ParseAll(traces, parser.Options{Unit: u})
	if err != nil {
		return err
	}
	switch *format {
	case "report":
		return report.WriteProfile(out, p, report.Options{
			OnlySignificant: true, Labels: *labels, TopN: *top,
		})
	case "csv":
		return report.WriteSeriesCSV(out, p)
	case "json":
		return report.WriteJSON(out, p)
	case "plot":
		return report.PlotCluster(out, p, report.PlotOptions{Sensor: *sensor, FunctionBand: true})
	case "gnuplot":
		return report.WriteGnuplot(out, p, *sensor)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}

// loadTraces reads every trace file whole ("-" = stdin).
func loadTraces(files []string) ([]*trace.Trace, error) {
	var traces []*trace.Trace
	for _, path := range files {
		var tr *trace.Trace
		var err error
		if path == "-" {
			tr, err = trace.ReadTrace(os.Stdin)
		} else {
			f, ferr := os.Open(path)
			if ferr != nil {
				return nil, ferr
			}
			tr, err = trace.ReadTrace(f)
			f.Close()
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		traces = append(traces, tr)
	}
	return traces, nil
}

// runCritPathBatch merges every trace into one cluster-wide critical-path
// analysis — a straggler on one node is charged for the barrier wait it
// inflicts on the others.
func runCritPathBatch(traces []*trace.Trace, crit, timeline bool, width int, ropts report.Options, format string, out io.Writer) error {
	a, err := critpath.AnalyzeTraces(traces, critpath.Options{Timeline: timeline})
	if err != nil {
		return err
	}
	switch format {
	case "report":
		if crit {
			if err := report.WriteCritPath(out, a.Summary(), ropts); err != nil {
				return err
			}
			if timeline {
				if _, err := fmt.Fprintln(out); err != nil {
					return err
				}
			}
		}
		if timeline {
			return report.WriteTimeline(out, a.Tracks(), a.Duration(), width)
		}
		return nil
	case "json":
		switch {
		case crit && timeline:
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			return enc.Encode(map[string]any{
				"critpath": a.Summary(),
				"timeline": report.BuildTimelineJSON(a.Tracks(), a.Duration()),
			})
		case crit:
			return report.WriteCritPathJSON(out, a.Summary())
		default:
			return report.WriteTimelineJSON(out, a.Tracks(), a.Duration())
		}
	default:
		return fmt.Errorf("-critpath/-timeline supports -format report|json, not %q", format)
	}
}

// runCritPathStream analyzes each file independently through the scanner
// in O(segment + lanes) memory, emitting per-node output as each scan
// completes — the critical-path twin of runStream.
func runCritPathStream(files []string, crit, timeline bool, width int, ropts report.Options, out io.Writer) error {
	cs := report.NewCritPathStream(out, ropts)
	var sc *trace.Scanner
	for _, path := range files {
		a, err := streamCritFile(&sc, path, critpath.Options{Timeline: timeline})
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if crit {
			if err := cs.Summary(a.Summary()); err != nil {
				return err
			}
			if timeline {
				if _, err := fmt.Fprintln(out); err != nil {
					return err
				}
			}
		}
		if timeline {
			if err := report.WriteTimeline(out, a.Tracks(), a.Duration(), width); err != nil {
				return err
			}
		}
	}
	return nil
}

// streamCritFile scans one trace into a critical-path analyzer, reusing
// (or creating) the caller's scanner.
func streamCritFile(scp **trace.Scanner, path string, opts critpath.Options) (*critpath.Analyzer, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var sc *trace.Scanner
	if *scp != nil {
		sc = *scp
		if err := sc.Reset(r); err != nil {
			return nil, err
		}
	} else {
		var err error
		sc, err = trace.NewScanner(r)
		if err != nil {
			return nil, err
		}
		*scp = sc
	}
	a := critpath.New(opts)
	for {
		batch, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := a.Add(sc.NodeID(), sc.Sym(), batch); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// runStream parses each file through a trace.Scanner feeding an online
// parser.Builder and emits per-node output the moment that node's scan
// completes. Peak memory is one segment's batch plus one node's profile
// — never the event history — regardless of trace size.
func runStream(files []string, u parser.Unit, format string, ropts report.Options, out io.Writer) error {
	var emit func(*parser.NodeProfile) error
	var finish func() error
	switch format {
	case "report":
		ps := report.NewProfileStream(out, ropts)
		emit = ps.Node
	case "csv":
		cs, err := report.NewSeriesCSVStream(out)
		if err != nil {
			return err
		}
		emit = cs.Node
	case "json":
		js, err := report.NewJSONStream(out, u)
		if err != nil {
			return err
		}
		emit = js.Node
		finish = js.Close
	default:
		return fmt.Errorf("format %q does not support -stream (use report|csv|json)", format)
	}
	// One scanner serves every file: Reset swaps the stream but keeps the
	// batch and payload buffers, so a many-file parse allocates its decode
	// buffers once instead of once per file.
	var sc *trace.Scanner
	for _, path := range files {
		np, err := streamFile(&sc, path, u)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if err := emit(np); err != nil {
			return err
		}
	}
	if finish != nil {
		return finish()
	}
	return nil
}

// streamFile scans one trace into a profile in O(segment) memory,
// reusing (or creating) the caller's scanner.
func streamFile(scp **trace.Scanner, path string, u parser.Unit) (*parser.NodeProfile, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var sc *trace.Scanner
	if *scp != nil {
		sc = *scp
		if err := sc.Reset(r); err != nil {
			return nil, err
		}
	} else {
		var err error
		sc, err = trace.NewScanner(r)
		if err != nil {
			return nil, err
		}
		*scp = sc
	}
	b := parser.NewBuilder(sc.NodeID(), sc.Sym(), parser.Options{Unit: u})
	for {
		batch, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := b.Add(batch); err != nil {
			return nil, err
		}
	}
	b.SetTruncated(sc.Truncated())
	return b.Finish()
}
