// Command tempest-parse is the offline trace parser: it reads one or more
// TPST trace files (one per node), merges each node's function timeline
// with its temperature samples and prints the per-function statistical
// profile — the post-processing step of the paper's Figure 1.
//
// Usage:
//
//	tempest-parse node0.tpst node1.tpst
//	tempest-parse -format plot -sensor 0 node0.tpst
//	tempd -o - | tempest-parse -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tempest/internal/parser"
	"tempest/internal/report"
	"tempest/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tempest-parse:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tempest-parse", flag.ContinueOnError)
	unit := fs.String("unit", "F", "temperature unit: F|C")
	format := fs.String("format", "report", "output: report|csv|json|plot|gnuplot")
	sensor := fs.Int("sensor", 0, "sensor index for plot output")
	top := fs.Int("top", 0, "limit report to the N longest functions (0 = all)")
	labels := fs.Bool("labels", true, "print sensor labels")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if len(files) == 0 {
		return fmt.Errorf("no trace files given (use - for stdin)")
	}

	u := parser.Fahrenheit
	switch strings.ToUpper(*unit) {
	case "F":
	case "C":
		u = parser.Celsius
	default:
		return fmt.Errorf("unknown unit %q", *unit)
	}

	var traces []*trace.Trace
	for _, path := range files {
		var tr *trace.Trace
		var err error
		if path == "-" {
			tr, err = trace.ReadTrace(os.Stdin)
		} else {
			f, ferr := os.Open(path)
			if ferr != nil {
				return ferr
			}
			tr, err = trace.ReadTrace(f)
			f.Close()
		}
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		traces = append(traces, tr)
	}

	p, err := parser.ParseAll(traces, parser.Options{Unit: u})
	if err != nil {
		return err
	}
	switch *format {
	case "report":
		return report.WriteProfile(out, p, report.Options{
			OnlySignificant: true, Labels: *labels, TopN: *top,
		})
	case "csv":
		return report.WriteSeriesCSV(out, p)
	case "json":
		return report.WriteJSON(out, p)
	case "plot":
		return report.PlotCluster(out, p, report.PlotOptions{Sensor: *sensor, FunctionBand: true})
	case "gnuplot":
		return report.WriteGnuplot(out, p, *sensor)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}
