package main

import (
	"bytes"
	"net"
	"path/filepath"
	"strings"
	"testing"

	"tempest/internal/collect"
)

func TestLiveRunSimulated(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-hwmon", filepath.Join(t.TempDir(), "none"),
		"-rate", "50",
		"-burn", "150ms",
		"-idle", "100ms",
		"-cycles", "2",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"burn_phase", "idle_phase", "Min"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q:\n%s", want, s)
		}
	}
}

func TestLiveRunStatusReport(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-hwmon", filepath.Join(t.TempDir(), "none"),
		"-rate", "50",
		"-burn", "50ms",
		"-idle", "0",
		"-status",
		"-log-level", "debug",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-log-level", "loud"}, &out); err == nil {
		t.Error("bad -log-level accepted")
	}
}

func TestLiveRunFormats(t *testing.T) {
	for _, format := range []string{"csv", "json", "plot"} {
		var out bytes.Buffer
		err := run([]string{
			"-hwmon", filepath.Join(t.TempDir(), "none"),
			"-rate", "50",
			"-burn", "60ms",
			"-idle", "30ms",
			"-format", format,
			"-unit", "C",
		}, &out)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if out.Len() == 0 {
			t.Errorf("%s empty", format)
		}
	}
}

func TestLiveRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-cycles", "0"}, &out); err == nil {
		t.Error("zero cycles should fail")
	}
	if err := run([]string{"-format", "pdf", "-burn", "10ms", "-idle", "0", "-rate", "50", "-hwmon", filepath.Join(t.TempDir(), "x")}, &out); err == nil {
		t.Error("bad format should fail")
	}
}

// TestLiveRunShipsToCollector drives the full fleet-mode loop: a live
// session on simulated sensors whose drained batches stream to an
// in-process collector, which must end up with this node's profile.
func TestLiveRunShipsToCollector(t *testing.T) {
	c := collect.New(collect.Options{})
	defer c.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go c.Serve(ln)

	var out bytes.Buffer
	err = run([]string{
		"-hwmon", filepath.Join(t.TempDir(), "none"),
		"-rate", "50",
		"-burn", "100ms",
		"-idle", "50ms",
		"-ship", ln.Addr().String(),
		"-node", "7",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	np, err := c.NodeProfile(7)
	if err != nil {
		t.Fatalf("collector never saw node 7: %v", err)
	}
	var names []string
	for _, f := range np.Functions {
		names = append(names, f.Name)
	}
	for _, want := range []string{"burn_phase", "idle_phase"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("collector profile missing %q (has %v)", want, names)
		}
	}
	if np.Duration <= 0 || c.Metrics().Events() == 0 {
		t.Errorf("collector profile empty: duration=%v events=%d", np.Duration, c.Metrics().Events())
	}
}

func TestLiveRunCritPath(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-hwmon", filepath.Join(t.TempDir(), "none"),
		"-rate", "50",
		"-burn", "80ms",
		"-idle", "40ms",
		"-watch", "25ms",
		"-critpath",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "burn_phase") {
		t.Errorf("profile output missing:\n%s", out.String())
	}
}
