package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestLiveRunSimulated(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-hwmon", filepath.Join(t.TempDir(), "none"),
		"-rate", "50",
		"-burn", "150ms",
		"-idle", "100ms",
		"-cycles", "2",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"burn_phase", "idle_phase", "Min"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q:\n%s", want, s)
		}
	}
}

func TestLiveRunFormats(t *testing.T) {
	for _, format := range []string{"csv", "json", "plot"} {
		var out bytes.Buffer
		err := run([]string{
			"-hwmon", filepath.Join(t.TempDir(), "none"),
			"-rate", "50",
			"-burn", "60ms",
			"-idle", "30ms",
			"-format", format,
			"-unit", "C",
		}, &out)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if out.Len() == 0 {
			t.Errorf("%s empty", format)
		}
	}
}

func TestLiveRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-cycles", "0"}, &out); err == nil {
		t.Error("zero cycles should fail")
	}
	if err := run([]string{"-format", "pdf", "-burn", "10ms", "-idle", "0", "-rate", "50", "-hwmon", filepath.Join(t.TempDir(), "x")}, &out); err == nil {
		t.Error("bad format should fail")
	}
}
