// Command tempest-live profiles real execution on the current machine:
// it starts tempd against the host's hwmon sensors (or the simulated set
// on sensorless machines), runs an instrumented CPU-burn/idle workload in
// real time, and prints the thermal profile — the paper's actual usage
// pattern ("compile with instrumentation enabled, link to a Tempest
// library, run, invoke the parser").
//
// Usage:
//
//	tempest-live -burn 3s -idle 2s -cycles 2
//	tempest-live -hwmon /sys/class/hwmon -rate 16 -format plot
//	tempest-live -burn 5s -cycles 3 -watch 1s
//	tempest-live -ship collector:7077 -node 3
//
// With -watch, an in-progress hot-spot snapshot (top functions, their
// temperatures, what is running right now) is printed to stderr at the
// given interval while the workload executes — the live view enabled by
// the streaming profile builder.
//
// With -ship, every drained event batch is also streamed to a
// tempest-collectd at the given address (fleet mode): the link
// self-heals across disconnects and delivery accounting is printed on
// exit. Shipping never blocks the workload — if the collector cannot
// keep up, batches are dropped and counted rather than queued
// unboundedly.
//
// With -adaptive (requires -ship), the session starts every registered
// function in the cheap coarse sampling mode — gprof-style call/time
// buckets, no per-event cost — ships the buckets alongside the event
// stream, and applies the per-function detail/coarse directives a
// -policy collector piggybacks on its acks. Only the functions the
// fleet-wide ranking nominates pay for full event instrumentation.
//
// With -status, a one-page self-report — sampling health, drain
// behaviour, lane buffer high water, measured instrumentation overhead
// (§3.4 bounds it below 7 %), and every introspection metric — is
// printed to stderr after the workload finishes.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"time"

	"tempest"
	"tempest/instrument"
	"tempest/internal/collect"
	"tempest/internal/introspect"
	"tempest/internal/report"
	"tempest/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tempest-live:", err)
		os.Exit(1)
	}
}

var liveSink float64

// burnCPU spins real floating-point work for d.
func burnCPU(d time.Duration) {
	deadline := time.Now().Add(d)
	s := 1.0
	for time.Now().Before(deadline) {
		for i := 0; i < 10000; i++ {
			s += math.Sqrt(float64(i)) * 1.0000001
		}
	}
	liveSink = s
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tempest-live", flag.ContinueOnError)
	hwmon := fs.String("hwmon", "", "hwmon sysfs root (default /sys/class/hwmon)")
	rate := fs.Float64("rate", 4, "tempd samples per second")
	burn := fs.Duration("burn", 2*time.Second, "burn phase length")
	idle := fs.Duration("idle", time.Second, "idle phase length")
	cycles := fs.Int("cycles", 1, "burn/idle cycles")
	format := fs.String("format", "report", "output: report|csv|json|plot")
	unit := fs.String("unit", "F", "temperature unit: F|C")
	watch := fs.Duration("watch", 0, "print a live hot-spot snapshot to stderr at this interval (0 = off)")
	ship := fs.String("ship", "", "also stream the trace to a tempest-collectd at this host:port (fleet mode)")
	adaptive := fs.Bool("adaptive", false, "adaptive sampling: start every function in cheap coarse mode, ship bucket reports, and apply the collector's detail/coarse directives (requires -ship against a -policy collector)")
	node := fs.Uint("node", 0, "node id reported to the collector")
	laneCap := fs.Int("lane-cap", tempest.DefaultLaneBufferCap, "per-lane event buffer capacity between drains (must be positive)")
	status := fs.Bool("status", false, "print a one-page self-observability report to stderr after the run")
	critF := fs.Bool("critpath", false, "run the streaming critical-path analyzer beside the profile: -watch snapshots gain live straggler/serialization lines and a final summary is printed to stderr")
	logLevel := fs.String("log-level", "", "log verbosity: debug|info|warn|error (default info)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	lvl, err := introspect.ParseLogLevel(*logLevel)
	if err != nil {
		return err
	}
	logger := introspect.NewLogger(os.Stderr, lvl)
	if *cycles < 1 || *burn < 0 || *idle < 0 {
		return fmt.Errorf("invalid workload shape")
	}
	u := tempest.Fahrenheit
	if *unit == "C" || *unit == "c" {
		u = tempest.Celsius
	}

	cfg := tempest.LiveConfig{
		HwmonRoot:             *hwmon,
		AllowSimulatedSensors: true,
		SampleRateHz:          *rate,
		Unit:                  u,
		NodeID:                uint32(*node),
		LaneBufferCap:         *laneCap,
		CritPath:              *critF,
	}
	if *adaptive && *ship == "" {
		return fmt.Errorf("-adaptive requires -ship (the collector's policy engine drives it)")
	}
	var shipper *collect.Shipper
	// The shipper's downstream reader can deliver a directive before the
	// session exists (the reconnect handshake re-issues policy); park it
	// and apply once the session is up.
	var ctlMu sync.Mutex
	var ctlSession *tempest.LiveSession
	var ctlPending *instrument.Directive
	if *ship != "" {
		opts := collect.ShipperOptions{}
		if *adaptive {
			opts.OnControl = func(d instrument.Directive) {
				ctlMu.Lock()
				defer ctlMu.Unlock()
				if ctlSession != nil {
					ctlSession.ApplyControl(d)
					return
				}
				ctlPending = &d
			}
		}
		shipper = collect.NewShipper(*ship, uint32(*node), 0, opts)
		cfg.DrainSink = func(ev []trace.Event, sym *trace.SymTab) {
			_ = shipper.Ship(ev, sym) // drops are accounted and reported on exit
		}
		if *adaptive {
			cfg.CoarseSink = func(stats []instrument.CoarseStat) {
				_ = shipper.ShipCoarse(stats) // same drop accounting as events
			}
		}
	}
	if *adaptive {
		// Everything starts cheap; the collector's directives promote the
		// functions worth full event streams.
		instrument.SetDefaultMode(instrument.ModeCoarse)
		defer instrument.SetDefaultMode(instrument.ModeDetail)
	}
	s, err := tempest.NewLiveSession(cfg)
	if err != nil {
		return err
	}
	if *adaptive {
		ctlMu.Lock()
		ctlSession = s
		if ctlPending != nil {
			s.ApplyControl(*ctlPending)
			ctlPending = nil
		}
		ctlMu.Unlock()
	}
	var watchStop, watchDone chan struct{}
	if *watch > 0 {
		watchStop = make(chan struct{})
		watchDone = make(chan struct{})
		go func() {
			defer close(watchDone)
			tick := time.NewTicker(*watch)
			defer tick.Stop()
			for {
				select {
				case <-watchStop:
					return
				case <-tick.C:
					np, err := s.Snapshot()
					if err != nil {
						continue
					}
					_ = report.WriteLiveNode(os.Stderr, np, s.OpenFunctions(),
						report.Options{Labels: true, TopN: 5})
					if cs := s.CritPathSummary(); cs != nil {
						_ = report.WriteLiveCritPath(os.Stderr, cs, 3)
					}
				}
			}
		}()
	}

	lane := s.Lane()
	for c := 0; c < *cycles; c++ {
		_ = s.SetSimUtilization(0, 1) // no-op with real sensors
		if err := lane.Instrument("burn_phase", func() { burnCPU(*burn) }); err != nil {
			return err
		}
		_ = s.SetSimUtilization(0, 0)
		if err := lane.Instrument("idle_phase", func() { time.Sleep(*idle) }); err != nil {
			return err
		}
	}
	if watchStop != nil {
		close(watchStop)
		<-watchDone
	}
	if *status {
		if err := s.WriteSelfReport(os.Stderr); err != nil {
			return err
		}
	}
	if *critF {
		if cs := s.CritPathSummary(); cs != nil {
			if err := report.WriteCritPath(os.Stderr, cs, report.Options{TopN: 10}); err != nil {
				return err
			}
		}
	}
	logger.Debug("closing live session", "tempd_busy_fraction", s.TempdBusyFraction())
	fmt.Fprintf(os.Stderr, "tempest-live: tempd busy fraction %.5f\n", s.TempdBusyFraction())
	p, err := s.Close()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tempest-live: instrumentation overhead %.4f%% of wall clock\n", p.OverheadFraction*100)
	if shipper != nil {
		shipErr := shipper.Close() // flushes the queue with a deadline
		st := shipper.Stats()
		logger.Info("ship accounting", "acked", st.AckedSegments, "enqueued", st.EnqueuedSegments,
			"dropped", st.DroppedSegments, "reconnects", st.Reconnects, "resends", st.Resends)
		fmt.Fprintf(os.Stderr, "tempest-live: shipped %d/%d segments to %s (%d events, %d dropped, %d reconnects)\n",
			st.AckedSegments, st.EnqueuedSegments+st.DroppedSegments, *ship, st.EnqueuedEvents, st.DroppedEvents, st.Reconnects)
		if shipErr != nil {
			fmt.Fprintln(os.Stderr, "tempest-live: ship:", shipErr)
		}
	}
	switch *format {
	case "report":
		return p.WriteReport(out)
	case "csv":
		return p.WriteCSV(out)
	case "json":
		return p.WriteJSON(out)
	case "plot":
		return p.Plot(out, 0)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}
