// Command tempest-instrument rewrites a Go package so every function
// records entry/exit through tempest's trace runtime — the source-level
// reproduction of building with `gcc -finstrument-functions` (paper
// §3.1), with the registration table standing in for the symbol lookup
// the original does against the ELF symbol table.
//
// Usage:
//
//	tempest-instrument -o DIR ./pkg     # copy mode: rewritten package in DIR
//	tempest-instrument -w ./pkg         # in-place: build-tagged twins next to originals
//	tempest-instrument -n ./pkg         # dry run: list what would be instrumented
//
// In-place mode leaves a plain `go build` byte-identical to the
// uninstrumented package; `go build -tags tempest_instr` selects the
// instrumented twins. Filter with -match / -exclude (regexps over
// symbols like "pkg.(*T).M").
//
// With -budget the static cost model (internal/analysis/costmodel)
// plans the instrumentation instead of hooking everything: functions
// whose predicted hook cost would blow the overhead budget are demoted
// to coarse counting or skipped entirely, cheapest-per-unit-of-hotness
// first. -plan writes the decision set as reviewable JSON:
//
//	tempest-instrument -n -budget 0.05 -plan - ./pkg
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"

	"tempest/internal/analysis"
	"tempest/internal/analysis/callgraph"
	"tempest/internal/analysis/costmodel"
	"tempest/internal/instrumenter"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	fs := flag.NewFlagSet("tempest-instrument", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		outDir  = fs.String("o", "", "copy mode: write the rewritten package to this `dir`")
		inPlace = fs.Bool("w", false, "in-place mode: add build-tagged instrumented twins beside the originals")
		dryRun  = fs.Bool("n", false, "dry run: report what would be instrumented, write nothing")
		match   = fs.String("match", "", "only instrument symbols matching this `regexp`")
		exclude = fs.String("exclude", "", "skip symbols matching this `regexp`")
		tag     = fs.String("tag", instrumenter.DefaultBuildTag, "build `tag` for in-place twins")
		quiet   = fs.Bool("q", false, "suppress the per-function listing")
		budget  = fs.Float64("budget", 0, "overhead budget as a `fraction` of predicted runtime (e.g. 0.05); the static cost model demotes cheap-but-chatty functions to coarse or skip until the estimate fits")
		planOut = fs.String("plan", "", "write the reviewable instrumentation-plan JSON to this `file` (\"-\" for stdout); with -n, plan without rewriting")
		bench   = fs.String("hookbench", "", "BENCH_instrument.json `file` with measured per-call hook costs (default: module root's copy, else built-in numbers)")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tempest-instrument [-o dir | -w | -n] [-match re] [-exclude re] package-dir")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	modes := 0
	for _, on := range []bool{*outDir != "", *inPlace, *dryRun} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "tempest-instrument: exactly one of -o, -w, -n is required")
		return 2
	}

	opts := instrumenter.Options{OutDir: *outDir, BuildTag: *tag}
	var err error
	if *match != "" {
		if opts.Match, err = regexp.Compile(*match); err != nil {
			fmt.Fprintf(os.Stderr, "tempest-instrument: -match: %v\n", err)
			return 2
		}
	}
	if *exclude != "" {
		if opts.Exclude, err = regexp.Compile(*exclude); err != nil {
			fmt.Fprintf(os.Stderr, "tempest-instrument: -exclude: %v\n", err)
			return 2
		}
	}
	if *dryRun {
		// A dry run plans as copy mode into a throwaway path so in-place
		// constraints are not required to be absent.
		opts.OutDir = os.TempDir()
	}

	if *budget > 0 || *planOut != "" {
		plan, err := buildPlan(fs.Arg(0), *budget, *bench)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tempest-instrument: %v\n", err)
			return 1
		}
		opts.Plan = plan
		fmt.Fprintf(os.Stderr, "tempest-instrument: plan: predicted overhead %.1f%% -> %.1f%% (budget %.1f%%), %d functions planned\n",
			100*plan.BaselineOverhead, 100*plan.EstimatedOverhead, 100*plan.Budget, len(plan.Entries))
		if *planOut != "" {
			if err := writePlan(plan, *planOut); err != nil {
				fmt.Fprintf(os.Stderr, "tempest-instrument: %v\n", err)
				return 1
			}
		}
	}

	res, err := instrumenter.Instrument(fs.Arg(0), opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tempest-instrument: %v\n", err)
		return 1
	}
	if !*quiet {
		// Keep stdout clean for the plan when it goes there too.
		names := os.Stdout
		if *planOut == "-" {
			names = os.Stderr
		}
		for _, fn := range res.Funcs {
			fmt.Fprintln(names, fn)
		}
	}
	if len(res.Skipped) > 0 || len(res.Coarse) > 0 {
		fmt.Fprintf(os.Stderr, "tempest-instrument: plan keeps %d functions in detail, demotes %d to coarse, skips %d\n",
			len(res.Funcs)-len(res.Coarse), len(res.Coarse), len(res.Skipped))
	}
	if *dryRun {
		fmt.Fprintf(os.Stderr, "tempest-instrument: would instrument %d functions in %s\n", len(res.Funcs), res.PkgPath)
		return 0
	}
	if len(res.Files) == 0 {
		fmt.Fprintf(os.Stderr, "tempest-instrument: %s already instrumented; nothing to do\n", res.PkgPath)
		return 0
	}
	if err := instrumenter.Apply(res); err != nil {
		fmt.Fprintf(os.Stderr, "tempest-instrument: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "tempest-instrument: instrumented %d functions in %s (%d files)\n",
		len(res.Funcs), res.PkgPath, len(res.Files))
	return 0
}

// buildPlan loads the target package (and its module-internal
// dependencies) through the offline loader, builds the interprocedural
// call graph, prices every function with the measured hook costs and
// returns the budgeted instrumentation plan.
func buildPlan(dir string, budget float64, benchPath string) (*costmodel.Plan, error) {
	// Loader patterns are module-relative: turn the target directory
	// into one so the plan covers the package being instrumented (plus
	// its module-internal dependencies), not the module root.
	pattern := "."
	if abs, err := filepath.Abs(dir); err == nil {
		if modDir, _, err := analysis.FindModule(abs); err == nil {
			if rel, err := filepath.Rel(modDir, abs); err == nil {
				pattern = "./" + filepath.ToSlash(rel)
			}
		}
	}
	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: dir}, pattern)
	if err != nil {
		return nil, err
	}
	g, err := callgraph.Build(pkgs, callgraph.Options{})
	if err != nil {
		return nil, err
	}
	m := costmodel.Analyze(g, costmodel.Options{})
	hooks := DefaultHooks(dir, benchPath)
	return m.BuildPlan(costmodel.PlanOptions{Budget: budget, Hooks: hooks}), nil
}

// DefaultHooks resolves hook costs: an explicit -hookbench file, else
// the module root's committed BENCH_instrument.json, else the built-in
// defaults.
func DefaultHooks(dir, benchPath string) costmodel.HookCosts {
	if benchPath == "" {
		if abs, err := filepath.Abs(dir); err == nil {
			if modDir, _, err := analysis.FindModule(abs); err == nil {
				benchPath = filepath.Join(modDir, "BENCH_instrument.json")
			}
		}
	}
	if benchPath != "" {
		if hc, err := costmodel.LoadHookCosts(benchPath); err == nil {
			return hc
		}
	}
	return costmodel.DefaultHookCosts
}

// writePlan renders the plan to path, stdout for "-".
func writePlan(p *costmodel.Plan, path string) error {
	if path != "-" {
		return p.WriteJSON(path)
	}
	raw, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(append(raw, '\n'))
	return err
}
