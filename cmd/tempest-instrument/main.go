// Command tempest-instrument rewrites a Go package so every function
// records entry/exit through tempest's trace runtime — the source-level
// reproduction of building with `gcc -finstrument-functions` (paper
// §3.1), with the registration table standing in for the symbol lookup
// the original does against the ELF symbol table.
//
// Usage:
//
//	tempest-instrument -o DIR ./pkg     # copy mode: rewritten package in DIR
//	tempest-instrument -w ./pkg         # in-place: build-tagged twins next to originals
//	tempest-instrument -n ./pkg         # dry run: list what would be instrumented
//
// In-place mode leaves a plain `go build` byte-identical to the
// uninstrumented package; `go build -tags tempest_instr` selects the
// instrumented twins. Filter with -match / -exclude (regexps over
// symbols like "pkg.(*T).M").
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"tempest/internal/instrumenter"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	fs := flag.NewFlagSet("tempest-instrument", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		outDir  = fs.String("o", "", "copy mode: write the rewritten package to this `dir`")
		inPlace = fs.Bool("w", false, "in-place mode: add build-tagged instrumented twins beside the originals")
		dryRun  = fs.Bool("n", false, "dry run: report what would be instrumented, write nothing")
		match   = fs.String("match", "", "only instrument symbols matching this `regexp`")
		exclude = fs.String("exclude", "", "skip symbols matching this `regexp`")
		tag     = fs.String("tag", instrumenter.DefaultBuildTag, "build `tag` for in-place twins")
		quiet   = fs.Bool("q", false, "suppress the per-function listing")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tempest-instrument [-o dir | -w | -n] [-match re] [-exclude re] package-dir")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	modes := 0
	for _, on := range []bool{*outDir != "", *inPlace, *dryRun} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "tempest-instrument: exactly one of -o, -w, -n is required")
		return 2
	}

	opts := instrumenter.Options{OutDir: *outDir, BuildTag: *tag}
	var err error
	if *match != "" {
		if opts.Match, err = regexp.Compile(*match); err != nil {
			fmt.Fprintf(os.Stderr, "tempest-instrument: -match: %v\n", err)
			return 2
		}
	}
	if *exclude != "" {
		if opts.Exclude, err = regexp.Compile(*exclude); err != nil {
			fmt.Fprintf(os.Stderr, "tempest-instrument: -exclude: %v\n", err)
			return 2
		}
	}
	if *dryRun {
		// A dry run plans as copy mode into a throwaway path so in-place
		// constraints are not required to be absent.
		opts.OutDir = os.TempDir()
	}

	res, err := instrumenter.Instrument(fs.Arg(0), opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tempest-instrument: %v\n", err)
		return 1
	}
	if !*quiet {
		for _, fn := range res.Funcs {
			fmt.Println(fn)
		}
	}
	if *dryRun {
		fmt.Fprintf(os.Stderr, "tempest-instrument: would instrument %d functions in %s\n", len(res.Funcs), res.PkgPath)
		return 0
	}
	if len(res.Files) == 0 {
		fmt.Fprintf(os.Stderr, "tempest-instrument: %s already instrumented; nothing to do\n", res.PkgPath)
		return 0
	}
	if err := instrumenter.Apply(res); err != nil {
		fmt.Fprintf(os.Stderr, "tempest-instrument: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "tempest-instrument: instrumented %d functions in %s (%d files)\n",
		len(res.Funcs), res.PkgPath, len(res.Files))
	return 0
}
