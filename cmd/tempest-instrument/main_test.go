package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func fixture(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	src := "package fx\n\nfunc A() {}\n\nfunc B() {}\n"
	if err := os.WriteFile(filepath.Join(dir, "fx.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestCopyMode(t *testing.T) {
	dir := fixture(t)
	out := filepath.Join(t.TempDir(), "out")
	if code := run([]string{"-q", "-o", out, dir}); code != 0 {
		t.Fatalf("copy mode exited %d", code)
	}
	b, err := os.ReadFile(filepath.Join(out, "fx.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "instrument.Trace") {
		t.Fatal("output not instrumented")
	}
}

func TestDryRunWritesNothing(t *testing.T) {
	dir := fixture(t)
	before, _ := os.ReadDir(dir)
	if code := run([]string{"-q", "-n", dir}); code != 0 {
		t.Fatalf("dry run exited %d", code)
	}
	after, _ := os.ReadDir(dir)
	if len(after) != len(before) {
		t.Fatal("dry run changed the package directory")
	}
}

func TestModeFlagsAreExclusive(t *testing.T) {
	if code := run([]string{"-n", "-w", "someplace"}); code != 2 {
		t.Fatalf("conflicting modes exited %d, want 2", code)
	}
	if code := run([]string{"someplace"}); code != 2 {
		t.Fatalf("no mode exited %d, want 2", code)
	}
}

func TestBadRegexpIsUsageError(t *testing.T) {
	if code := run([]string{"-n", "-match", "(", "x"}); code != 2 {
		t.Fatalf("bad regexp exited %d, want 2", code)
	}
}

func TestInPlaceRoundTrip(t *testing.T) {
	dir := fixture(t)
	if code := run([]string{"-q", "-w", dir}); code != 0 {
		t.Fatalf("in-place exited %d", code)
	}
	if _, err := os.Stat(filepath.Join(dir, "fx_tempest_instr.go")); err != nil {
		t.Fatal("twin missing:", err)
	}
	// Second run is a no-op, not a failure.
	if code := run([]string{"-q", "-w", dir}); code != 0 {
		t.Fatalf("in-place re-run exited %d", code)
	}
}
