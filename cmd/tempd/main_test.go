package main

import (
	"os"
	"path/filepath"
	"testing"

	"tempest/internal/trace"
)

func fakeHwmon(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "hwmon0"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "hwmon0", "temp1_input"), []byte("39000\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return root
}

func TestTempdWritesTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.tpst")
	err := run([]string{
		"-hwmon", fakeHwmon(t),
		"-duration", "300ms",
		"-rate", "20",
		"-o", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	samples := 0
	for _, e := range tr.Events {
		if e.Kind == trace.KindSample {
			samples++
			if e.ValueC != 39 {
				t.Errorf("sample value %v, want 39", e.ValueC)
			}
		}
	}
	if samples < 2 {
		t.Errorf("samples = %d, want ≥2 over 300 ms at 20 Hz", samples)
	}
}

func TestTempdSimulatedFallback(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sim.tpst")
	err := run([]string{
		"-hwmon", filepath.Join(t.TempDir(), "missing"),
		"-duration", "250ms",
		"-rate", "20",
		"-burn",
		"-o", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	// Six simulated sensors announce themselves.
	markers := 0
	for _, e := range tr.Events {
		if e.Kind == trace.KindMarker {
			markers++
		}
	}
	if markers != 6 {
		t.Errorf("sensor announcements = %d, want 6", markers)
	}
}

func TestTempdNoSensorsNoFallback(t *testing.T) {
	err := run([]string{
		"-hwmon", filepath.Join(t.TempDir(), "missing"),
		"-simulate=false",
		"-duration", "50ms",
		"-o", filepath.Join(t.TempDir(), "x.tpst"),
	})
	if err == nil {
		t.Error("no sensors without fallback should fail")
	}
}
