// Command tempd is the stand-alone temperature sampling daemon: it reads
// every discovered sensor at the configured rate for the configured
// duration and writes the samples as a TPST trace — the component the
// paper launches before a profiled application's main (§3.2).
//
// Usage:
//
//	tempd -duration 10s -rate 4 -o temps.tpst
//	tempd -hwmon /sys/class/hwmon -duration 1m -o - | tempest-parse -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"time"

	"tempest/internal/introspect"
	"tempest/internal/sensors"
	"tempest/internal/tempd"
	"tempest/internal/thermal"
	"tempest/internal/trace"
	"tempest/internal/vclock"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tempd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tempd", flag.ContinueOnError)
	hwmon := fs.String("hwmon", "", "hwmon sysfs root (default /sys/class/hwmon)")
	rate := fs.Float64("rate", 4, "samples per second")
	duration := fs.Duration("duration", 10*time.Second, "sampling duration (0 = until SIGINT)")
	out := fs.String("o", "tempd.tpst", "output trace file (- for stdout)")
	simulate := fs.Bool("simulate", true, "fall back to simulated sensors when no hwmon chips exist")
	burn := fs.Bool("burn", false, "with simulated sensors: drive core 0 at full utilisation")
	flushEvery := fs.Duration("flush", time.Second, "crash-safe flush interval (0 = write once at exit)")
	logLevel := fs.String("log-level", "", "log verbosity: debug|info|warn|error (default info)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	lvl, err := introspect.ParseLogLevel(*logLevel)
	if err != nil {
		return err
	}
	logger := introspect.NewLogger(os.Stderr, lvl)

	reg := sensors.NewRegistry(sensors.NewHwmonProvider(*hwmon))
	err = reg.Discover()
	var cpu *thermal.CPU
	var mu sync.Mutex
	if err == sensors.ErrNoSensors && *simulate {
		cpu, err = thermal.NewCPU(thermal.DefaultOpteronParams())
		if err != nil {
			return err
		}
		reg = sensors.NewRegistry(sensors.NewSimProvider(cpu, &mu, "sim"))
		err = reg.Discover()
		fmt.Fprintln(os.Stderr, "tempd: no hwmon sensors; using simulated sensor set")
	}
	if err != nil {
		return err
	}
	// A misbehaving chip must not take the run down: retry transient
	// errors, quarantine repeat offenders, keep re-probing them.
	reg.WrapResilient(sensors.ResilientConfig{})
	fmt.Fprintf(os.Stderr, "tempd: %d sensors, %.1f Hz\n", reg.Len(), *rate)

	tracer, err := trace.NewTracer(trace.Config{Clock: vclock.NewRealClock()})
	if err != nil {
		return err
	}

	// Open the output before sampling starts and stream segments to it as
	// we go: if the process is killed mid-run, the file holds a salvageable
	// prefix instead of nothing (ReadTrace's recovery mode).
	var w io.Writer = os.Stdout
	var f *os.File
	if *out != "-" {
		f, err = os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	tw, err := trace.NewWriter(w, tracer.NodeID(), tracer.Rank())
	if err != nil {
		return err
	}
	ir := introspect.Default()
	flushSeconds := ir.Distribution("tempest_tempd_flush_seconds", "Drain-and-write latency per crash-safe checkpoint.")
	fsyncSeconds := ir.Distribution("tempest_tempd_fsync_seconds", "fsync latency per crash-safe checkpoint (file output only).")
	ir.FuncCounter("tempest_tempd_trace_bytes_total", "Trace bytes written, header included.", func() float64 { return float64(tw.Bytes()) })
	ir.FuncCounter("tempest_tempd_trace_segments_total", "Trace segments written.", func() float64 { return float64(tw.Segments()) })
	ir.FuncCounter("tempest_tempd_trace_events_total", "Trace events flushed.", func() float64 { return float64(tw.Events()) })
	flush := func() error {
		start := time.Now()
		ev, sym := tracer.Drain()
		if err := tw.Flush(ev, sym); err != nil {
			return err
		}
		flushSeconds.ObserveSince(start)
		if f != nil {
			// A checkpoint is only crash-safe once it is on the platter,
			// not in the page cache.
			syncStart := time.Now()
			if err := f.Sync(); err != nil {
				return err
			}
			fsyncSeconds.ObserveSince(syncStart)
		}
		logger.Debug("flushed checkpoint", "events", len(ev), "trace_bytes", tw.Bytes(), "segments", tw.Segments())
		return nil
	}

	d, err := tempd.New(tempd.Config{Registry: reg, Tracer: tracer, RateHz: *rate})
	if err != nil {
		return err
	}
	if cpu != nil && *burn {
		mu.Lock()
		_ = cpu.SetCoreUtilization(0, 1)
		mu.Unlock()
	}
	if err := d.Start(); err != nil {
		return err
	}

	// Advance the simulated model in real time, if present.
	stopSim := make(chan struct{})
	var simWG sync.WaitGroup
	if cpu != nil {
		simWG.Add(1)
		go func() {
			defer simWG.Done()
			tick := time.NewTicker(100 * time.Millisecond)
			defer tick.Stop()
			last := time.Now()
			for {
				select {
				case <-stopSim:
					return
				case now := <-tick.C:
					mu.Lock()
					_ = cpu.Step(now.Sub(last))
					mu.Unlock()
					last = now
				}
			}
		}()
	}

	// Run until the duration elapses or SIGINT arrives (the paper's
	// destructor sends tempd a termination signal), flushing accumulated
	// events to the output at each crash-safe checkpoint.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	var deadline <-chan time.Time
	if *duration > 0 {
		deadline = time.After(*duration)
	}
	var flushC <-chan time.Time
	if *flushEvery > 0 {
		ft := time.NewTicker(*flushEvery)
		defer ft.Stop()
		flushC = ft.C
	}
loop:
	for {
		select {
		case <-deadline:
			break loop
		case <-sig:
			break loop
		case <-flushC:
			if err := flush(); err != nil {
				return fmt.Errorf("flush: %w", err)
			}
		}
	}
	if err := d.Stop(); err != nil {
		return err
	}
	close(stopSim)
	simWG.Wait()
	fmt.Fprintf(os.Stderr, "tempd: %d samples, busy fraction %.4f\n", d.Samples(), d.BusyFraction())
	reportDegraded(d)
	return flush()
}

// reportDegraded summarises per-sensor failures and non-healthy sensors on
// stderr so a degraded run is visible without parsing the trace.
func reportDegraded(d *tempd.Daemon) {
	per := d.FailuresBySensor()
	health := d.Health()
	for i, n := range per {
		if n == 0 {
			continue
		}
		state := "healthy"
		if i < len(health) {
			state = health[i].State.String()
		}
		fmt.Fprintf(os.Stderr, "tempd: sensor %d (%s): %d failed reads, now %s\n",
			i, health[i].Name, n, state)
	}
}
