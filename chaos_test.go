package tempest

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"tempest/internal/faultinject"
	"tempest/internal/mpi"
	"tempest/internal/parser"
	"tempest/internal/sensors"
	"tempest/internal/tempd"
	"tempest/internal/trace"
	"tempest/internal/vclock"
)

// chaosProvider serves a fixed sensor slice.
type chaosProvider struct{ ss []sensors.Sensor }

func (p *chaosProvider) Sensors() ([]sensors.Sensor, error) { return p.ss, nil }

// chaosOutcome is everything observable from one seeded chaos run, for the
// same-seed reproducibility check.
type chaosOutcome struct {
	events    []trace.Event
	truncated bool
	health    []string
	samples   []int // salvaged sample count per sensor
	allreduce float64
}

// runChaosScenario executes the full degraded pipeline under one seed:
// three sensors with one suffering a dropout, resilient wrappers
// quarantining and recovering it, tempd driven on a virtual clock writing
// segmented trace data through a writer that dies mid-flush (the torn
// tail), salvage via ReadTrace's recovery mode, and parsing into a
// health-annotated profile. Finally a two-rank TCP exchange over a flaky
// link proves the transport side completes too.
func runChaosScenario(t *testing.T, seed int64) chaosOutcome {
	t.Helper()
	plan := faultinject.NewPlan(seed)

	noSleep := func(time.Duration) {}
	mkSensor := func(i int) sensors.Sensor {
		calls := 0
		return &sensors.FuncSensor{
			SensorName:  "sim/t" + string(rune('0'+i)),
			SensorLabel: "die " + string(rune('0'+i)),
			Read: func() (float64, error) {
				calls++
				return 40 + float64(i) + 0.25*float64(calls), nil
			},
		}
	}
	// Sensor 1 drops out for 12 hardware reads after its 8th.
	flaky := faultinject.NewFaultySensor(mkSensor(1), plan, faultinject.SensorFaults{
		DropoutAfter: 8,
		DropoutLen:   12,
		Sleep:        noSleep,
	})
	reg := sensors.NewRegistry(&chaosProvider{ss: []sensors.Sensor{mkSensor(0), flaky, mkSensor(2)}})
	if err := reg.Discover(); err != nil {
		t.Fatal(err)
	}
	reg.WrapResilient(sensors.ResilientConfig{
		MaxRetries:      0,
		QuarantineAfter: 3,
		ProbeEvery:      4,
		Sleep:           noSleep,
	})

	clk := vclock.NewVirtualClock()
	tr, err := trace.NewTracer(trace.Config{Clock: clk, NodeID: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := tempd.New(tempd.Config{Registry: reg, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}

	// The "disk" dies after 600 bytes mid-flush: the buffer keeps exactly
	// the prefix that made it out — a SIGKILLed tempd's trace file.
	var disk bytes.Buffer
	fw := faultinject.NewFaultyWriter(&disk, plan, faultinject.WriterFaults{FailAfterBytes: 600})
	tw, err := trace.NewWriter(fw, tr.NodeID(), tr.Rank())
	if err != nil {
		t.Fatal(err)
	}
	diskDead := false
	for round := 1; round <= 40; round++ {
		clk.Advance(d.Interval())
		_ = d.SampleOnce() // failures expected mid-dropout
		if round%8 == 0 && !diskDead {
			ev, sym := tr.Drain()
			if err := tw.Flush(ev, sym); err != nil {
				diskDead = true
			}
		}
	}
	if !diskDead {
		t.Fatalf("fault plan never tore the trace (wrote %d bytes)", fw.Written())
	}

	// Salvage the torn file.
	salvaged, err := trace.ReadTrace(bytes.NewReader(disk.Bytes()))
	if err != nil {
		t.Fatalf("recovery mode failed on torn tail: %v", err)
	}
	np, err := parser.Parse(salvaged, parser.Options{Unit: parser.Celsius})
	if err != nil {
		t.Fatalf("parsing salvaged trace: %v", err)
	}

	out := chaosOutcome{
		events:    salvaged.Events,
		truncated: salvaged.Truncated,
		samples:   make([]int, len(np.Samples)),
	}
	for i, s := range np.Samples {
		out.samples[i] = len(s)
	}
	for _, h := range np.HealthEvents {
		out.health = append(out.health, h.State)
	}
	if !np.Truncated {
		t.Error("profile should carry the torn-tail truncation flag")
	}

	// Degraded but alive: the daemon kept counting what the disk lost.
	per := d.FailuresBySensor()
	if per[0] != 0 || per[2] != 0 || per[1] == 0 {
		t.Errorf("per-sensor failures = %v, want only sensor 1 failing", per)
	}
	if hs := d.Health(); hs[1].State != sensors.StateHealthy {
		t.Errorf("dropout sensor should have recovered, state = %v", hs[1].State)
	}

	// Two ranks exchange their salvage totals over one flaky TCP link.
	out.allreduce = chaosAllreduce(t, plan, float64(len(out.events)))
	return out
}

// chaosAllreduce runs a 2-rank allreduce where rank 0 dials through the
// fault plan (refused then dying connections) and returns rank 0's result.
func chaosAllreduce(t *testing.T, plan *faultinject.Plan, contribution float64) float64 {
	t.Helper()
	noSleep := func(time.Duration) {}
	dial := faultinject.FaultyDialer(plan, faultinject.ConnFaults{
		RefuseFirst:      1,
		CloseAfterWrites: 4,
		Sleep:            noSleep,
	}, nil)
	placeholder := []string{"127.0.0.1:0", "127.0.0.1:0"}
	nodes := make([]*mpi.TCPTransport, 2)
	for r := 0; r < 2; r++ {
		opts := mpi.TCPOptions{
			DialBackoffBase: time.Millisecond,
			DialBackoffMax:  4 * time.Millisecond,
			ResendAttempts:  4,
			Sleep:           noSleep,
		}
		if r == 0 {
			opts.Dial = dial
		}
		node, err := mpi.NewTCPNodeOpts(r, placeholder, opts)
		if err != nil {
			t.Fatal(err)
		}
		nodes[r] = node
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()
	for _, n := range nodes {
		for p, peer := range nodes {
			if err := n.SetPeerAddr(p, peer.Addr()); err != nil {
				t.Fatal(err)
			}
		}
	}
	results := make(chan float64, 2)
	errs := make(chan error, 2)
	for r := 0; r < 2; r++ {
		go func(r int) {
			w, err := mpi.NewWorldOver(nodes[r])
			if err != nil {
				errs <- err
				return
			}
			c, err := w.Comm(r)
			if err != nil {
				errs <- err
				return
			}
			out := make([]float64, 1)
			if err := c.Allreduce(mpi.OpSum, []float64{contribution}, out); err != nil {
				errs <- err
				return
			}
			results <- out[0]
		}(r)
	}
	var got float64
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			t.Fatalf("allreduce over flaky link: %v", err)
		case v := <-results:
			got = v
		case <-time.After(30 * time.Second):
			t.Fatal("allreduce over flaky link hung")
		}
	}
	return got
}

// TestChaosScenarioEndToEnd is the acceptance scenario: sensor dropout +
// torn trace tail + one flaky TCP link, under a seeded fault plan. The run
// must complete with a salvaged prefix, a quarantine-annotated profile and
// a correct collective result.
func TestChaosScenarioEndToEnd(t *testing.T) {
	out := runChaosScenario(t, 1234)

	if !out.truncated {
		t.Error("torn tail must flag the salvaged trace truncated")
	}
	if len(out.events) == 0 {
		t.Fatal("salvage recovered nothing")
	}
	// The healthy sensors have more salvaged samples than the dropout one.
	if !(out.samples[0] > 0 && out.samples[0] == out.samples[2]) {
		t.Errorf("healthy sensor samples = %v", out.samples)
	}
	if out.samples[1] >= out.samples[0] {
		t.Errorf("dropout sensor has %d samples, healthy %d: no gap?", out.samples[1], out.samples[0])
	}
	// The profile is annotated with the quarantine episode.
	joined := strings.Join(out.health, ",")
	if !strings.Contains(joined, "quarantined") {
		t.Errorf("health annotations %v lack a quarantine", out.health)
	}
	if out.allreduce != 2*float64(len(out.events)) {
		t.Errorf("allreduce over flaky link = %v, want %v", out.allreduce, 2*float64(len(out.events)))
	}
}

// TestChaosScenarioSameSeedReproduces runs the scenario twice with one
// seed and once with another: same seed → byte-for-byte identical salvage
// and annotations; different seed may differ (and at minimum must also
// complete).
func TestChaosScenarioSameSeedReproduces(t *testing.T) {
	a := runChaosScenario(t, 99)
	b := runChaosScenario(t, 99)
	if len(a.events) != len(b.events) {
		t.Fatalf("same seed salvaged %d vs %d events", len(a.events), len(b.events))
	}
	for i := range a.events {
		if a.events[i] != b.events[i] {
			t.Fatalf("same seed, event %d differs: %+v vs %+v", i, a.events[i], b.events[i])
		}
	}
	if strings.Join(a.health, ",") != strings.Join(b.health, ",") {
		t.Fatalf("same seed, health annotations differ: %v vs %v", a.health, b.health)
	}
	if a.truncated != b.truncated || a.allreduce != b.allreduce {
		t.Fatalf("same seed, outcomes differ: %+v vs %+v", a, b)
	}
	// A different seed still completes end-to-end.
	_ = runChaosScenario(t, 7)
}
