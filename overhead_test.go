package tempest

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tempest/internal/introspect"
)

var overheadTestSink float64

// e4Work is the same shape of real computation bench_test.go's E4
// reproduction uses: enough floating-point work per instrumented call
// that per-call overhead lands in the low single digits of percent.
func e4Work() float64 {
	s := 0.0
	for i := 0; i < 2000; i++ {
		s += math.Sqrt(float64(i))
	}
	return s
}

// runOverheadSession runs one E4-style workload under a live session and
// returns the session's frozen profile plus its registry.
func runOverheadSession(t *testing.T) (*Profile, *introspect.Registry, string) {
	t.Helper()
	ir := introspect.New()
	s, err := NewLiveSession(LiveConfig{
		HwmonRoot:             filepath.Join(t.TempDir(), "none"),
		AllowSimulatedSensors: true,
		SampleRateHz:          4,                     // the paper's sampling rate
		DrainInterval:         50 * time.Millisecond, // exercise many drain passes
		LaneBufferCap:         DefaultLaneBufferCap,
		Introspect:            ir,
	})
	if err != nil {
		t.Fatal(err)
	}
	lane := s.Lane()
	deadline := time.Now().Add(400 * time.Millisecond)
	for time.Now().Before(deadline) {
		if err := lane.Instrument("e4_work", func() { overheadTestSink = e4Work() }); err != nil {
			t.Fatal(err)
		}
	}
	var report bytes.Buffer
	if err := s.WriteSelfReport(&report); err != nil {
		t.Fatal(err)
	}
	p, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	return p, ir, report.String()
}

// TestLiveOverheadUnderPaperBound runs an E4-style workload under a live
// session and checks the overhead accountant — the number the
// tempest_live_overhead_fraction gauge and Profile.OverheadFraction
// report — stays below the paper's §3.4 bound of 7 %. The accountant
// measures what the profiling machinery (drain passes plus tempd's
// sampling) costs the workload. Like bench_test.go's E4 reproduction,
// the measurement is repeated and the least-disturbed run kept: on a
// shared 1-vCPU box a single descheduling inside a drain pass books
// scheduler noise as self-time, which would otherwise dominate a
// few-percent effect.
func TestLiveOverheadUnderPaperBound(t *testing.T) {
	const attempts = 5
	var p *Profile
	var ir *introspect.Registry
	var report string
	for i := 0; i < attempts; i++ {
		p, ir, report = runOverheadSession(t)
		if p.OverheadFraction < 0.07 {
			break
		}
		t.Logf("attempt %d: overhead fraction %.4f (noise), retrying", i+1, p.OverheadFraction)
	}
	if p.OverheadFraction < 0 || p.OverheadFraction >= 0.07 {
		t.Errorf("Profile.OverheadFraction = %.4f on every attempt, paper bound <0.07", p.OverheadFraction)
	}

	for _, want := range []string{"overhead fraction", "tempest_live_drain_seconds", "tempest_live_overhead_fraction"} {
		if !strings.Contains(report, want) {
			t.Errorf("self-report missing %q:\n%s", want, report)
		}
	}

	// The same number must surface on the registry's gauge so fleet
	// monitoring sees it without holding the Profile.
	found := false
	for _, m := range ir.Snapshot() {
		if m.Name == "tempest_live_overhead_fraction" {
			found = true
		}
	}
	if !found {
		t.Error("tempest_live_overhead_fraction not registered")
	}

	// The profile's report footer mentions the measured overhead for live
	// profiles (offline parses omit the line to keep goldens stable).
	if p.OverheadFraction > 0 {
		var out bytes.Buffer
		if err := p.WriteReport(&out); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out.String(), "instrumentation overhead") {
			t.Errorf("report missing overhead footer:\n%s", out.String())
		}
	}
}
