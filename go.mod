module tempest

go 1.22
