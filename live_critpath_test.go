package tempest

import (
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestLiveSessionCritPath drives the streaming critical-path analyzer
// beside a real session: one lane "computes" while another sits in an
// MPI-named wait, so the snapshot must attribute wait to the op and see
// both lanes.
func TestLiveSessionCritPath(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "none")
	s, err := NewLiveSession(LiveConfig{
		HwmonRoot:             missing,
		AllowSimulatedSensors: true,
		SampleRateHz:          50,
		LaneBufferCap:         DefaultLaneBufferCap,
		DrainInterval:         20 * time.Millisecond,
		CritPath:              true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_ = s.Instrument("crunch", func() { time.Sleep(120 * time.Millisecond) })
	}()
	go func() {
		defer wg.Done()
		_ = s.Instrument("MPI_Barrier", func() { time.Sleep(120 * time.Millisecond) })
	}()
	wg.Wait()

	sum := s.CritPathSummary()
	if sum == nil {
		t.Fatal("CritPathSummary nil with CritPath enabled")
	}
	if len(sum.Lanes) < 2 {
		t.Fatalf("lanes = %d, want >= 2", len(sum.Lanes))
	}
	op, ok := sum.Op("MPI_Barrier")
	if !ok || op.TotalWaitS <= 0 {
		t.Errorf("MPI_Barrier op = %+v ok=%v, want positive wait", op, ok)
	}
	if sum.StackAnomalies != 0 {
		t.Errorf("stack anomalies on a live-session stream: %d", sum.StackAnomalies)
	}
	// Non-destructive: a second snapshot still works and moves forward.
	again := s.CritPathSummary()
	if again == nil || again.DurationS < sum.DurationS {
		t.Errorf("second snapshot regressed: %v -> %v", sum.DurationS, again.DurationS)
	}
	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLiveSessionCritPathDisabled(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "none")
	s, err := NewLiveSession(LiveConfig{
		HwmonRoot:             missing,
		AllowSimulatedSensors: true,
		SampleRateHz:          50,
		LaneBufferCap:         DefaultLaneBufferCap,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum := s.CritPathSummary(); sum != nil {
		t.Errorf("CritPathSummary = %+v without CritPath, want nil", sum)
	}
	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
